// Trace exporters: Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file) and JSONL (one record per
// line, for ad-hoc tooling). Both render a merged record list with
// deterministic formatting, so exporting a logical-clock trace yields
// byte-identical files for byte-identical traces.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace dolbie::obs {

/// Chrome trace-event format: spans become "X" (complete) events, instants
/// "i"; the lane is the tid, the round is replicated into args.
void export_chrome_trace(std::ostream& os,
                         const std::vector<trace_record>& records);

/// One JSON object per line with every trace_record field.
void export_jsonl(std::ostream& os, const std::vector<trace_record>& records);

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Deterministic JSON number rendering: integral values print without a
/// fraction ("17"), others with %.17g round-trip precision.
std::string json_number(double v);

}  // namespace dolbie::obs
