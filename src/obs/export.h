// Trace exporters: Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file) and JSONL (one record per
// line, for ad-hoc tooling). Both render a merged record list with
// deterministic formatting, so exporting a logical-clock trace yields
// byte-identical files for byte-identical traces.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace dolbie::obs {

class metrics_registry;

/// Chrome trace-event format: spans become "X" (complete) events, instants
/// "i"; the lane is the tid, the round is replicated into args.
void export_chrome_trace(std::ostream& os,
                         const std::vector<trace_record>& records);

/// One JSON object per line with every trace_record field.
void export_jsonl(std::ostream& os, const std::vector<trace_record>& records);

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Deterministic JSON number rendering: integral values print without a
/// fraction ("17"), others with %.17g round-trip precision.
std::string json_number(double v);

/// Prometheus text exposition (version 0.0.4) of every instrument in the
/// registry, sorted by name. Metric names are sanitized to the Prometheus
/// grammar ('.' and other illegal characters become '_'); histograms render
/// as cumulative `_bucket{le="..."}` series plus `_sum` / `_count`, with a
/// closing `+Inf` bucket. Deterministic: byte-identical output for
/// identical registry contents.
void export_prometheus(std::ostream& os, const metrics_registry& registry);

/// A complete HTTP/1.0 response (status line, headers, body) carrying the
/// export_prometheus exposition — what the dolbied scrape endpoint writes
/// back per connection. Pure function of the registry, so the endpoint is
/// testable without sockets.
std::string prometheus_http_response(const metrics_registry& registry);

}  // namespace dolbie::obs
