// Metrics registry: named counters, gauges and fixed-bucket histograms
// shared by every instrumented layer (net traffic, protocol state, trainer
// progress). Registration (find-or-create by name) takes a mutex and is the
// cold path; instruments hand out stable references so the hot path is a
// single relaxed atomic op. Snapshots render into exp::table / CSV through
// exp::metrics_table and the --metrics bench flag (exp/observe.h).
//
// Determinism note: metric *registration order* and *values* are pure
// functions of the computation (relaxed atomics only relax ordering between
// distinct metrics, never the per-metric totals), so snapshots of a
// deterministic run are identical at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dolbie::obs {

/// Monotone event count (messages sent, rounds played, renormalizations).
class counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar (current step size, straggler id, train loss).
class gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with upper-inclusive bounds: observe(v) lands in
/// the first bucket whose bound is >= v, or the implicit overflow bucket.
/// Bounds are fixed at registration so recording is lock-free.
class histogram {
 public:
  /// `upper_bounds` must be strictly increasing (may be empty: everything
  /// lands in the overflow bucket but count/sum still accumulate).
  explicit histogram(std::vector<double> upper_bounds);

  histogram(const histogram&) = delete;
  histogram& operator=(const histogram&) = delete;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count of bucket `i` in [0, bounds().size()]; the last is the overflow.
  std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One formatted row of a registry snapshot.
struct metric_row {
  std::string name;
  std::string type;   ///< "counter" | "gauge" | "histogram"
  std::string value;  ///< formatted value (histograms: count/sum/buckets)
};

enum class metric_kind { counter, gauge, histogram };

/// One typed instrument sample — the machine-readable counterpart of
/// metric_row, consumed by exporters (obs/export.h Prometheus exposition)
/// that need values, not formatted strings.
struct metric_sample {
  std::string name;
  metric_kind kind = metric_kind::counter;
  std::uint64_t count = 0;            ///< counter value / histogram count
  double value = 0.0;                 ///< gauge value / histogram sum
  std::vector<double> bounds;         ///< histogram upper bounds
  std::vector<std::uint64_t> buckets; ///< per-bucket counts + overflow slot
};

/// Thread-safe find-or-create registry of named instruments. References
/// returned by the *_named getters are stable for the registry's lifetime
/// (deque storage, entries are never erased) — cache them at setup time and
/// record through the cached reference on the hot path.
class metrics_registry {
 public:
  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  counter& counter_named(std::string_view name);
  gauge& gauge_named(std::string_view name);
  /// `upper_bounds` is consulted only when the histogram is first created.
  histogram& histogram_named(std::string_view name,
                             std::vector<double> upper_bounds = {});

  /// All instruments, sorted by name (deterministic render order).
  std::vector<metric_row> snapshot() const;

  /// Typed samples of every instrument, sorted by name. Exporters render
  /// from this; snapshot() formats the same data for tables.
  std::vector<metric_sample> samples() const;

  /// Zero every instrument, keeping the registrations (and thus the cached
  /// references) intact.
  void reset();

  bool empty() const;

 private:
  struct named_counter {
    std::string name;
    counter value;
    explicit named_counter(std::string n) : name(std::move(n)) {}
  };
  struct named_gauge {
    std::string name;
    gauge value;
    explicit named_gauge(std::string n) : name(std::move(n)) {}
  };
  struct named_histogram {
    std::string name;
    histogram value;
    named_histogram(std::string n, std::vector<double> bounds)
        : name(std::move(n)), value(std::move(bounds)) {}
  };

  mutable std::mutex mu_;
  std::deque<named_counter> counters_;
  std::deque<named_gauge> gauges_;
  std::deque<named_histogram> histograms_;
};

/// Default bucket bounds for round-latency histograms (seconds, the range
/// the simulated clusters produce).
std::vector<double> latency_buckets();

}  // namespace dolbie::obs
