#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace dolbie::obs {
namespace {

std::string format_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

trace_arg arg_num(std::string_view key, double v) {
  return {std::string(key), format_exact(v), /*numeric=*/true};
}

trace_arg arg_int(std::string_view key, std::uint64_t v) {
  return {std::string(key), std::to_string(v), /*numeric=*/true};
}

trace_arg arg_str(std::string_view key, std::string_view v) {
  return {std::string(key), std::string(v), /*numeric=*/false};
}

tracer::tracer(tracer_options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

tracer::lane_state& tracer::lane(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  while (lanes_.size() <= id) lanes_.emplace_back();
  return lanes_[id];
}

double tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void tracer::commit(lane_state& lane, trace_record record) {
  if (options_.max_records_per_lane > 0 &&
      lane.records.size() >= options_.max_records_per_lane) {
    ++lane.dropped;
    return;
  }
  lane.records.push_back(std::move(record));
}

void tracer::instant(std::uint32_t lane_id, std::uint64_t round,
                     std::string_view name, std::string_view category,
                     std::vector<trace_arg> args) {
  lane_state& l = lane(lane_id);
  const std::uint64_t tick = l.ticks++;
  trace_record r;
  r.round = round;
  r.lane = lane_id;
  r.seq = tick;
  r.ts = options_.clock == clock_kind::logical ? static_cast<double>(tick)
                                               : now_us();
  r.kind = record_kind::instant;
  r.name = std::string(name);
  r.category = std::string(category);
  r.args = std::move(args);
  commit(l, std::move(r));
}

std::vector<trace_record> tracer::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<trace_record> all;
  std::size_t total = 0;
  for (const lane_state& l : lanes_) total += l.records.size();
  all.reserve(total);
  for (const lane_state& l : lanes_) {
    all.insert(all.end(), l.records.begin(), l.records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const trace_record& a, const trace_record& b) {
              if (a.round != b.round) return a.round < b.round;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.seq < b.seq;
            });
  return all;
}

std::size_t tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const lane_state& l : lanes_) total += l.dropped;
  return total;
}

std::size_t tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const lane_state& l : lanes_) total += l.records.size();
  return total;
}

void tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (lane_state& l : lanes_) {
    l.ticks = 0;
    l.dropped = 0;
    l.records.clear();
  }
}

span::span(tracer* t, std::uint32_t lane, std::uint64_t round,
           std::string_view name, std::string_view category)
    : tracer_(t) {
  if (tracer_ == nullptr) return;
  lane_ = &tracer_->lane(lane);
  const std::uint64_t tick = lane_->ticks++;
  record_.round = round;
  record_.lane = lane;
  record_.seq = tick;
  record_.ts = tracer_->options_.clock == clock_kind::logical
                   ? static_cast<double>(tick)
                   : tracer_->now_us();
  record_.kind = record_kind::span;
  record_.name = std::string(name);
  record_.category = std::string(category);
}

span::~span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_tick = lane_->ticks++;
  record_.dur = tracer_->options_.clock == clock_kind::logical
                    ? static_cast<double>(end_tick) - record_.ts
                    : tracer_->now_us() - record_.ts;
  tracer_->commit(*lane_, std::move(record_));
}

void span::arg(std::string_view key, double v) {
  if (tracer_ == nullptr) return;
  record_.args.push_back(arg_num(key, v));
}

void span::arg(std::string_view key, std::uint64_t v) {
  if (tracer_ == nullptr) return;
  record_.args.push_back(arg_int(key, v));
}

void span::arg(std::string_view key, std::string_view v) {
  if (tracer_ == nullptr) return;
  record_.args.push_back(arg_str(key, v));
}

}  // namespace dolbie::obs
