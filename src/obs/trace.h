// Structured round tracing: `span` (scoped RAII timer with category and
// args) and instant events ("straggler elected", "alpha re-capped",
// "message dropped"), recorded into per-lane buffers and merged
// deterministically by (round, lane, seq).
//
// Determinism contract (extends PR 1's): a *lane* is the unit of ordering —
// one logical track (a protocol instance, a parallel-sweep slot, a chrome
// tid) driven by at most one thread at a time. Each lane carries its own
// monotone tick counter; with the default `logical` clock every timestamp
// is a tick, so the merged, exported trace is a pure function of the
// computation — byte-identical at any DOLBIE_THREADS
// (tests/determinism_test.cpp asserts this at 1, 2 and 8). The `wall`
// clock swaps ticks for steady_clock microseconds when a human timeline is
// wanted (chrome://tracing); merge order stays deterministic because it
// never consults timestamps.
//
// Disabled path: every entry point takes `tracer*` and is a no-op on
// nullptr — a single inlinable branch, no clock read, no allocation
// (bench/micro_overhead: BM_SpanDisabled). Instrumented layers default
// their tracer pointer to null, so untraced runs pay (nearly) nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dolbie::obs {

/// Timestamp source: `logical` = per-lane tick counter (deterministic,
/// the default), `wall` = steady_clock microseconds since tracer creation.
enum class clock_kind : std::uint8_t { logical, wall };

enum class record_kind : std::uint8_t { span, instant };

/// One key/value pair attached to a span or event. `numeric` values are
/// exported unquoted (chrome args render them as numbers).
struct trace_arg {
  std::string key;
  std::string value;
  bool numeric = false;
};

trace_arg arg_num(std::string_view key, double v);
trace_arg arg_int(std::string_view key, std::uint64_t v);
trace_arg arg_str(std::string_view key, std::string_view v);

/// One merged trace entry. `seq` is the lane-local tick at which the
/// record began; (lane, seq) is unique and (round, lane, seq) is the merge
/// order.
struct trace_record {
  std::uint64_t round = 0;
  std::uint32_t lane = 0;
  std::uint64_t seq = 0;
  double ts = 0.0;   ///< ticks (logical) or microseconds (wall)
  double dur = 0.0;  ///< spans only
  record_kind kind = record_kind::instant;
  std::string name;
  std::string category;
  std::vector<trace_arg> args;
};

struct tracer_options {
  clock_kind clock = clock_kind::logical;
  /// Per-lane record cap; 0 = unbounded. Records beyond the cap are
  /// counted in dropped() and discarded (ticks still advance, so capped
  /// traces stay deterministic).
  std::size_t max_records_per_lane = 0;
};

class span;

/// Collector of trace records. Lane creation locks a mutex (cold path);
/// recording appends to the lane's buffer without synchronization, which is
/// safe because a lane has a single owning thread at a time. merged() /
/// clear() require all producing threads to have joined.
class tracer {
 public:
  explicit tracer(tracer_options options = {});
  tracer(const tracer&) = delete;
  tracer& operator=(const tracer&) = delete;

  const tracer_options& options() const { return options_; }

  /// Record an instant event on `lane` at the current lane tick.
  void instant(std::uint32_t lane, std::uint64_t round, std::string_view name,
               std::string_view category, std::vector<trace_arg> args = {});

  /// All records, sorted by (round, lane, seq). Call after producers join.
  std::vector<trace_record> merged() const;

  /// Records discarded by the per-lane cap.
  std::size_t dropped() const;

  /// Total records currently buffered.
  std::size_t size() const;

  /// Drop all records and reset every lane clock to tick 0.
  void clear();

 private:
  friend class span;

  struct lane_state {
    std::uint64_t ticks = 0;
    std::uint64_t dropped = 0;
    std::vector<trace_record> records;
  };

  lane_state& lane(std::uint32_t id);
  double now_us() const;
  void commit(lane_state& lane, trace_record record);

  tracer_options options_;
  mutable std::mutex mu_;
  std::deque<lane_state> lanes_;  // indexed by lane id; grown under mu_
  std::chrono::steady_clock::time_point epoch_;
};

/// Scoped span: stamps its begin tick/time at construction and records one
/// `record_kind::span` entry at destruction. A default-constructed or
/// null-tracer span is inert. Attach args any time before destruction.
class span {
 public:
  span() = default;
  span(tracer* t, std::uint32_t lane, std::uint64_t round,
       std::string_view name, std::string_view category);
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span();

  /// True when the span is actually recording.
  explicit operator bool() const { return tracer_ != nullptr; }

  void arg(std::string_view key, double v);
  void arg(std::string_view key, std::uint64_t v);
  void arg(std::string_view key, std::string_view v);

 private:
  tracer* tracer_ = nullptr;
  tracer::lane_state* lane_ = nullptr;
  trace_record record_;
};

}  // namespace dolbie::obs
