#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace dolbie::obs {
namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

histogram::histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DOLBIE_REQUIRE(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly increasing: bound "
                       << i << " (" << bounds_[i] << ") <= bound " << i - 1
                       << " (" << bounds_[i - 1] << ")");
  }
}

void histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t histogram::bucket_count(std::size_t i) const {
  DOLBIE_REQUIRE(i < buckets_.size(),
                 "bucket " << i << " out of range for " << buckets_.size()
                           << " buckets");
  return buckets_[i].load(std::memory_order_relaxed);
}

void histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

counter& metrics_registry::counter_named(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (named_counter& c : counters_) {
    if (c.name == name) return c.value;
  }
  counters_.emplace_back(std::string(name));
  return counters_.back().value;
}

gauge& metrics_registry::gauge_named(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (named_gauge& g : gauges_) {
    if (g.name == name) return g.value;
  }
  gauges_.emplace_back(std::string(name));
  return gauges_.back().value;
}

histogram& metrics_registry::histogram_named(std::string_view name,
                                             std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (named_histogram& h : histograms_) {
    if (h.name == name) return h.value;
  }
  histograms_.emplace_back(std::string(name), std::move(upper_bounds));
  return histograms_.back().value;
}

std::vector<metric_row> metrics_registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<metric_row> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const named_counter& c : counters_) {
    rows.push_back({c.name, "counter", std::to_string(c.value.value())});
  }
  for (const named_gauge& g : gauges_) {
    rows.push_back({g.name, "gauge", format_value(g.value.value())});
  }
  for (const named_histogram& h : histograms_) {
    std::string v = "count=" + std::to_string(h.value.count()) +
                    " sum=" + format_value(h.value.sum());
    for (std::size_t i = 0; i < h.value.bounds().size(); ++i) {
      v += " le" + format_value(h.value.bounds()[i]) + "=" +
           std::to_string(h.value.bucket_count(i));
    }
    v += " inf=" +
         std::to_string(h.value.bucket_count(h.value.bounds().size()));
    rows.push_back({h.name, "histogram", std::move(v)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const metric_row& a, const metric_row& b) {
              return a.name < b.name;
            });
  return rows;
}

std::vector<metric_sample> metrics_registry::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<metric_sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const named_counter& c : counters_) {
    metric_sample s;
    s.name = c.name;
    s.kind = metric_kind::counter;
    s.count = c.value.value();
    out.push_back(std::move(s));
  }
  for (const named_gauge& g : gauges_) {
    metric_sample s;
    s.name = g.name;
    s.kind = metric_kind::gauge;
    s.value = g.value.value();
    out.push_back(std::move(s));
  }
  for (const named_histogram& h : histograms_) {
    metric_sample s;
    s.name = h.name;
    s.kind = metric_kind::histogram;
    s.count = h.value.count();
    s.value = h.value.sum();
    s.bounds = h.value.bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(h.value.bucket_count(i));
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const metric_sample& a, const metric_sample& b) {
              return a.name < b.name;
            });
  return out;
}

void metrics_registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (named_counter& c : counters_) c.value.reset();
  for (named_gauge& g : gauges_) g.value.reset();
  for (named_histogram& h : histograms_) h.value.reset();
}

bool metrics_registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::vector<double> latency_buckets() {
  return {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

}  // namespace dolbie::obs
