#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace dolbie::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(v) ? v : 0.0);
  return buf;
}

namespace {

void write_args(std::ostream& os, const trace_record& r) {
  os << "\"args\":{\"round\":" << r.round;
  for (const trace_arg& a : r.args) {
    os << ",\"" << json_escape(a.key) << "\":";
    if (a.numeric) {
      os << a.value;
    } else {
      os << '"' << json_escape(a.value) << '"';
    }
  }
  os << '}';
}

}  // namespace

void export_chrome_trace(std::ostream& os,
                         const std::vector<trace_record>& records) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const trace_record& r : records) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\""
       << json_escape(r.category) << "\",\"ph\":\""
       << (r.kind == record_kind::span ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
       << r.lane << ",\"ts\":" << json_number(r.ts);
    if (r.kind == record_kind::span) {
      os << ",\"dur\":" << json_number(r.dur);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ',';
    write_args(os, r);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {

// Prometheus metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
// dotted names ("net.messages_sent") map by replacing every illegal
// character with '_'; a leading digit gets a '_' prefix.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

void export_prometheus(std::ostream& os, const metrics_registry& registry) {
  for (const metric_sample& s : registry.samples()) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case metric_kind::counter:
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << s.count << '\n';
        break;
      case metric_kind::gauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << json_number(s.value) << '\n';
        break;
      case metric_kind::histogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          os << name << "_bucket{le=\"" << json_number(s.bounds[i]) << "\"} "
             << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.count << '\n';
        os << name << "_sum " << json_number(s.value) << '\n';
        os << name << "_count " << s.count << '\n';
        break;
      }
    }
  }
}

std::string prometheus_http_response(const metrics_registry& registry) {
  std::ostringstream body;
  export_prometheus(body, registry);
  const std::string text = body.str();
  std::ostringstream out;
  out << "HTTP/1.0 200 OK\r\n"
      << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      << "Content-Length: " << text.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << text;
  return out.str();
}

void export_jsonl(std::ostream& os, const std::vector<trace_record>& records) {
  for (const trace_record& r : records) {
    os << "{\"round\":" << r.round << ",\"lane\":" << r.lane
       << ",\"seq\":" << r.seq << ",\"ts\":" << json_number(r.ts)
       << ",\"dur\":" << json_number(r.dur) << ",\"kind\":\""
       << (r.kind == record_kind::span ? "span" : "instant")
       << "\",\"cat\":\"" << json_escape(r.category) << "\",\"name\":\""
       << json_escape(r.name) << "\",";
    write_args(os, r);
    os << "}\n";
  }
}

}  // namespace dolbie::obs
