#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace dolbie::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(v) ? v : 0.0);
  return buf;
}

namespace {

void write_args(std::ostream& os, const trace_record& r) {
  os << "\"args\":{\"round\":" << r.round;
  for (const trace_arg& a : r.args) {
    os << ",\"" << json_escape(a.key) << "\":";
    if (a.numeric) {
      os << a.value;
    } else {
      os << '"' << json_escape(a.value) << '"';
    }
  }
  os << '}';
}

}  // namespace

void export_chrome_trace(std::ostream& os,
                         const std::vector<trace_record>& records) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const trace_record& r : records) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\""
       << json_escape(r.category) << "\",\"ph\":\""
       << (r.kind == record_kind::span ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
       << r.lane << ",\"ts\":" << json_number(r.ts);
    if (r.kind == record_kind::span) {
      os << ",\"dur\":" << json_number(r.dur);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ',';
    write_args(os, r);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void export_jsonl(std::ostream& os, const std::vector<trace_record>& records) {
  for (const trace_record& r : records) {
    os << "{\"round\":" << r.round << ",\"lane\":" << r.lane
       << ",\"seq\":" << r.seq << ",\"ts\":" << json_number(r.ts)
       << ",\"dur\":" << json_number(r.dur) << ",\"kind\":\""
       << (r.kind == record_kind::span ? "span" : "instant")
       << "\",\"cat\":\"" << json_escape(r.category) << "\",\"name\":\""
       << json_escape(r.name) << "\",";
    write_args(os, r);
    os << "}\n";
  }
}

}  // namespace dolbie::obs
