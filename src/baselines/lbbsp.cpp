#include "baselines/lbbsp.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::baselines {

lbbsp_policy::lbbsp_policy(std::size_t n_workers, lbbsp_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "LB-BSP needs at least one worker");
  DOLBIE_REQUIRE(options_.delta_fraction > 0.0 &&
                     options_.delta_fraction <= 1.0,
                 "delta fraction must be in (0,1], got "
                     << options_.delta_fraction);
  DOLBIE_REQUIRE(options_.patience >= 1,
                 "patience must be >= 1, got " << options_.patience);
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  reset();
}

void lbbsp_policy::reset() {
  x_ = options_.initial_partition;
  consecutive_ = 0;
}

void lbbsp_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback size mismatch");
  if (x_.size() == 1) return;
  const std::size_t fastest = argmin(feedback.local_costs);
  const std::size_t straggler = argmax(feedback.local_costs);
  if (fastest == straggler ||
      feedback.local_costs[fastest] >= feedback.local_costs[straggler]) {
    consecutive_ = 0;  // no persistent speed gap
    return;
  }
  if (++consecutive_ < options_.patience) return;
  consecutive_ = 0;
  // Shift the prescribed fixed increment from the straggler to the fastest
  // worker, never driving the straggler negative.
  const double shift = std::min(options_.delta_fraction, x_[straggler]);
  x_[straggler] -= shift;
  x_[fastest] += shift;
}

}  // namespace dolbie::baselines
