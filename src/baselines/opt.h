// OPT — the dynamic optimum: the instantaneous minimizer of
// max_i f_{i,t}(x_i) over the simplex, computed with full a-priori knowledge
// of the round's cost functions. This is the comparator x_t^* in the
// dynamic-regret definition; it "cannot be implemented in reality due to the
// lack of future information" but anchors every figure.
//
// Solver: water-filling on the cost level. g(l) = sum_i inverse_max_i(l) is
// non-decreasing in l; the optimal level l* is the smallest l with
// g(l) >= 1. We bisect for l*, take x_i = inverse_max_i(l*) and rescale to
// sum exactly 1 (rescaling only ever shrinks coordinates, so no cost rises
// above l*).
#pragma once

#include "core/policy.h"

namespace dolbie::baselines {

/// Result of solving one instantaneous min-max problem.
struct instantaneous_solution {
  core::allocation x;   ///< a minimizer on the simplex
  double level = 0.0;   ///< the water level l* (upper bound on the value)
  double value = 0.0;   ///< realized max_i f_i(x_i) at x
};

/// Solve min_x max_i f_i(x_i) s.t. x on the simplex. `tolerance` bounds the
/// absolute bisection error on the level; `relative_tolerance` bounds it
/// relative to the bracket magnitude. The relative term is what makes large
/// aggregate loads converge: with costs of magnitude 1e12 an absolute stop
/// of 1e-10 sits below the bracket's ulp, so the bisection would spin all
/// 200 iterations with the midpoint rounding onto an endpoint.
instantaneous_solution solve_instantaneous(const cost::cost_view& costs,
                                           double tolerance = 1e-10,
                                           double relative_tolerance = 1e-12);

/// The clairvoyant OPT policy: previews the round's costs and plays the
/// instantaneous minimizer.
class opt_policy final : public core::online_policy {
 public:
  explicit opt_policy(std::size_t n_workers);

  std::string_view name() const override { return "OPT"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void observe(const core::round_feedback& feedback) override;
  bool clairvoyant() const override { return true; }
  void preview(const cost::cost_view& costs) override;
  void reset() override;

 private:
  core::allocation x_;
};

}  // namespace dolbie::baselines
