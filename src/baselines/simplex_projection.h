// Exact Euclidean projection onto the probability simplex in O(N log N)
// (sort-based algorithm of Held/Wolfe/Crowder, as used by Duchi et al. 2008
// and Blondel et al. 2014 — the paper's reference [39]). This is the
// projection step pi_F(.) that OGD needs every round and DOLBIE avoids by
// construction; the micro-overhead bench measures exactly this gap.
#pragma once

#include <span>
#include <vector>

namespace dolbie::baselines {

/// Euclidean projection of v onto { x : sum x_i = 1, x >= 0 }.
std::vector<double> project_to_simplex(std::span<const double> v);

}  // namespace dolbie::baselines
