#include "baselines/abs.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::baselines {

abs_policy::abs_policy(std::size_t n_workers, abs_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "ABS needs at least one worker");
  DOLBIE_REQUIRE(options_.window >= 1,
                 "ABS window must be >= 1, got " << options_.window);
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  reset();
}

void abs_policy::reset() {
  x_ = options_.initial_partition;
  history_.clear();
}

void abs_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback size mismatch");
  if (x_.size() == 1) return;
  history_.emplace_back(feedback.local_costs.begin(),
                        feedback.local_costs.end());
  if (history_.size() < options_.window) return;

  // Re-partition inversely proportional to the mean local cost over the
  // window ([3]'s rule as described in Sec. II-B / VI-B of the paper).
  std::vector<double> weight(x_.size(), 0.0);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double mean_cost = 0.0;
    for (const auto& locals : history_) mean_cost += locals[i];
    mean_cost /= static_cast<double>(history_.size());
    // Epsilon floor guards against a zero-cost (fully idle) round.
    weight[i] = 1.0 / std::max(mean_cost, 1e-12);
  }
  const double total = sum(weight);
  for (std::size_t i = 0; i < x_.size(); ++i) x_[i] = weight[i] / total;
  history_.clear();
}

}  // namespace dolbie::baselines
