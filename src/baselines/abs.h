// ABS — Adaptive Batch Size (the paper's benchmark [3], Su et al., adaptive
// load balancing for parallel GNN training): every P rounds the allocation
// is re-partitioned *inversely proportional to the historical local cost*
// (the per-round training time), exactly as the paper describes it:
//
//     weight_i = 1 / mean over the window of l_{i,tau},
//     x_{i,t+1} = weight_i / sum_j weight_j.
//
// This is the rule the paper critiques: its fixed point equalizes
// x_i * l_i(x_i) rather than the costs l_i themselves, so it is not robust
// to non-linear costs or workload-independent components (communication),
// and the window-lagged inversion overshoots under fluctuating speeds —
// the "radical fluctuation" of Figs. 3-10.
#pragma once

#include <deque>

#include "core/policy.h"

namespace dolbie::baselines {

struct abs_options {
  std::size_t window = 5;  ///< tuning period P (paper's experiments: 5)
  core::allocation initial_partition;  ///< empty -> uniform
};

class abs_policy final : public core::online_policy {
 public:
  abs_policy(std::size_t n_workers, abs_options options = {});

  std::string_view name() const override { return "ABS"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

 private:
  core::allocation x_;
  abs_options options_;
  // Local costs observed since the last re-partition.
  std::deque<std::vector<double>> history_;
};

}  // namespace dolbie::baselines
