// OGD — projected online (sub)gradient descent on f_t(x) = max_i f_{i,t}(x_i)
// (Zinkevich 2003, applied to the min-max objective as in the paper's
// benchmark [38]):
//
//     x_{t+1} = pi_F( x_t - beta * g_t ),
//
// where g_t is a subgradient of the max: the straggler's local slope on its
// own coordinate, zero elsewhere. The slope is taken by central finite
// difference so the baseline works on the same black-box costs DOLBIE sees.
#pragma once

#include "core/policy.h"

namespace dolbie::baselines {

struct ogd_options {
  double learning_rate = 0.001;      ///< beta (paper's experiments: 0.001)
  double derivative_step = 1e-4;     ///< finite-difference half-width
  core::allocation initial_partition;  ///< empty -> uniform
};

class ogd_policy final : public core::online_policy {
 public:
  ogd_policy(std::size_t n_workers, ogd_options options = {});

  std::string_view name() const override { return "OGD"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

 private:
  core::allocation x_;
  ogd_options options_;
};

/// Subgradient of max_i f_i(x_i) at x: straggler coordinate carries the
/// local finite-difference slope, all others zero. Exposed for tests.
std::vector<double> max_subgradient(const cost::cost_view& costs,
                                    const core::allocation& x,
                                    double derivative_step);

}  // namespace dolbie::baselines
