#include "baselines/simplex_projection.h"

#include <algorithm>

#include "common/error.h"

namespace dolbie::baselines {

std::vector<double> project_to_simplex(std::span<const double> v) {
  DOLBIE_REQUIRE(!v.empty(), "cannot project an empty vector");
  // Sort descending, then find the pivot rho = max{ k : u_k - tau_k > 0 }
  // with tau_k = (sum_{j<=k} u_j - 1) / k; the projection is
  // x_i = max(v_i - tau_rho, 0).
  std::vector<double> u(v.begin(), v.end());
  std::sort(u.begin(), u.end(), std::greater<>());
  double running = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t k = 0; k < u.size(); ++k) {
    running += u[k];
    const double candidate =
        (running - 1.0) / static_cast<double>(k + 1);
    if (u[k] - candidate > 0.0) {
      tau = candidate;
      rho = k + 1;
    }
  }
  DOLBIE_REQUIRE(rho > 0, "projection pivot not found (non-finite input?)");
  std::vector<double> x(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    x[i] = std::max(v[i] - tau, 0.0);
  }
  return x;
}

}  // namespace dolbie::baselines
