#include "baselines/equal.h"

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::baselines {

equal_policy::equal_policy(std::size_t n_workers)
    : x_(uniform_point(n_workers)) {}

void equal_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback size mismatch");
  // Static policy: nothing to learn.
}

}  // namespace dolbie::baselines
