// LB-BSP — Load-Balanced Bulk Synchronous Parallel (the paper's benchmark
// [6], Chen et al.): when the fastest worker has preceded the straggler for
// D consecutive rounds, a *prescribed fixed* workload increment Delta is
// shifted from the straggler to the fastest worker. The fixed increment
// ignores system heterogeneity and only two workers update per shift —
// the two shortcomings DOLBIE's risk-averse all-worker update removes.
#pragma once

#include "core/policy.h"

namespace dolbie::baselines {

struct lbbsp_options {
  /// Workload fraction shifted per adjustment. The paper uses Delta = 5
  /// data samples with B = 256, i.e. 5.0 / 256.
  double delta_fraction = 5.0 / 256.0;
  std::size_t patience = 5;  ///< D consecutive rounds before each shift
  core::allocation initial_partition;  ///< empty -> uniform
};

class lbbsp_policy final : public core::online_policy {
 public:
  lbbsp_policy(std::size_t n_workers, lbbsp_options options = {});

  std::string_view name() const override { return "LB-BSP"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

 private:
  core::allocation x_;
  lbbsp_options options_;
  std::size_t consecutive_ = 0;  ///< rounds the ordering has persisted
};

}  // namespace dolbie::baselines
