// EQU — equal assignment: every worker carries 1/N every round, the
// allocation frequently assumed in analyses of synchronous distributed
// training. The weakest baseline in all the paper's figures.
#pragma once

#include "core/policy.h"

namespace dolbie::baselines {

class equal_policy final : public core::online_policy {
 public:
  explicit equal_policy(std::size_t n_workers);

  std::string_view name() const override { return "EQU"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override {}

 private:
  core::allocation x_;
};

}  // namespace dolbie::baselines
