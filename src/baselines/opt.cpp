#include "baselines/opt.h"

#include <algorithm>

#include "common/bisect.h"
#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::baselines {

instantaneous_solution solve_instantaneous(const cost::cost_view& costs,
                                           double tolerance,
                                           double relative_tolerance) {
  DOLBIE_REQUIRE(!costs.empty(), "no cost functions to optimize");
  const std::size_t n = costs.size();
  const auto coverage = [&](double l) {
    double total = 0.0;
    for (const cost::cost_function* f : costs) total += f->inverse_max(l);
    return total;
  };

  // Bracket the optimal level: at l_hi = max_i f_i(1) every worker can carry
  // the whole load, so coverage = n >= 1; l_lo = min_i f_i(0) has coverage
  // possibly zero.
  double lo = costs[0]->value(0.0);
  double hi = costs[0]->value(1.0);
  for (const cost::cost_function* f : costs) {
    lo = std::min(lo, f->value(0.0));
    hi = std::max(hi, f->value(1.0));
  }
  instantaneous_solution out;
  if (coverage(lo) >= 1.0) {
    out.level = lo;
  } else {
    // Invariant: coverage(lo) < 1 <= coverage(hi); return hi at tolerance so
    // the produced level is always achievable. The stop width combines the
    // absolute and relative tolerances (bisect_stop_width) so wide brackets
    // still terminate at full relative precision instead of burning the
    // iteration budget once the absolute target drops below the ulp.
    bisect_options level_opts;
    level_opts.tolerance = tolerance;
    level_opts.relative_tolerance = relative_tolerance;
    for (int it = 0;
         it < 200 && hi - lo > bisect_stop_width(lo, hi, level_opts); ++it) {
      const double mid = lo + (hi - lo) / 2.0;
      if (coverage(mid) >= 1.0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    out.level = hi;
  }

  // Allocate each worker its affordable maximum, then shrink proportionally
  // to hit the simplex exactly (shrinking never raises a cost above l*).
  out.x.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.x[i] = costs[i]->inverse_max(out.level);
    total += out.x[i];
  }
  DOLBIE_REQUIRE(total > 0.0, "water-level solver produced empty coverage");
  for (double& v : out.x) v /= total;
  const std::vector<double> locals = cost::evaluate(costs, out.x);
  out.value = locals[argmax(locals)];
  // A priced-out worker (f_i(0) above the water level) pays its intercept
  // even at zero allocation; lift the reported level so value <= level.
  out.level = std::max(out.level, out.value);
  return out;
}

opt_policy::opt_policy(std::size_t n_workers)
    : x_(uniform_point(n_workers)) {}

void opt_policy::reset() { x_ = uniform_point(x_.size()); }

void opt_policy::preview(const cost::cost_view& costs) {
  DOLBIE_REQUIRE(costs.size() == x_.size(), "preview size mismatch");
  x_ = solve_instantaneous(costs).x;
}

void opt_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback size mismatch");
  // Clairvoyant: everything happened in preview().
}

}  // namespace dolbie::baselines
