#include "baselines/ogd.h"

#include <algorithm>

#include "baselines/simplex_projection.h"
#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::baselines {

std::vector<double> max_subgradient(const cost::cost_view& costs,
                                    const core::allocation& x,
                                    double derivative_step) {
  DOLBIE_REQUIRE(costs.size() == x.size(), "size mismatch");
  const std::vector<double> locals = cost::evaluate(costs, x);
  const std::size_t s = argmax(locals);
  std::vector<double> g(x.size(), 0.0);
  // Central difference, one-sided at the box boundary.
  const double h = derivative_step;
  const double lo = std::max(0.0, x[s] - h);
  const double hi = std::min(1.0, x[s] + h);
  if (hi > lo) {
    g[s] = (costs[s]->value(hi) - costs[s]->value(lo)) / (hi - lo);
  }
  return g;
}

ogd_policy::ogd_policy(std::size_t n_workers, ogd_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "OGD needs at least one worker");
  DOLBIE_REQUIRE(options_.learning_rate > 0.0,
                 "learning rate must be > 0, got " << options_.learning_rate);
  DOLBIE_REQUIRE(options_.derivative_step > 0.0,
                 "derivative step must be > 0, got "
                     << options_.derivative_step);
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  reset();
}

void ogd_policy::reset() { x_ = options_.initial_partition; }

void ogd_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback size mismatch");
  if (x_.size() == 1) return;
  const std::vector<double> g =
      max_subgradient(*feedback.costs, x_, options_.derivative_step);
  std::vector<double> y(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    y[i] = x_[i] - options_.learning_rate * g[i];
  }
  x_ = project_to_simplex(y);
}

}  // namespace dolbie::baselines
