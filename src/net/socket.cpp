#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.h"

namespace dolbie::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw transport_error(what + ": " + std::strerror(errno));
}

// poll() one descriptor for `events`; true = ready, false = timed out.
// Throws transport_error on poll failure (EINTR restarts the wait).
bool wait_ready(int fd, short events, std::chrono::milliseconds timeout) {
  const bool forever = timeout == std::chrono::milliseconds::max();
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int ms =
        forever ? -1 : static_cast<int>(std::min<std::int64_t>(
                           timeout.count(), std::numeric_limits<int>::max()));
    const int rc = ::poll(&p, 1, ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

tcp_socket::~tcp_socket() { close(); }

tcp_socket::tcp_socket(tcp_socket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

tcp_socket& tcp_socket::operator=(tcp_socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void tcp_socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

tcp_socket tcp_socket::connect_to(const std::string& host,
                                  std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw transport_error("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd);
  return tcp_socket(fd);
}

void tcp_socket::write_all(const std::uint8_t* data, std::size_t size) {
  DOLBIE_REQUIRE(valid(), "write on an invalid socket");
  std::size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLOUT, std::chrono::milliseconds::max());
        continue;
      }
      throw_errno("send");
    }
    done += static_cast<std::size_t>(n);
  }
}

read_result tcp_socket::read_some(std::uint8_t* buf, std::size_t cap,
                                  std::chrono::milliseconds timeout) {
  DOLBIE_REQUIRE(valid(), "read on an invalid socket");
  read_result out;
  if (!wait_ready(fd_, POLLIN, timeout)) {
    out.timed_out = true;
    return out;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n > 0) {
      out.bytes = static_cast<std::size_t>(n);
      return out;
    }
    if (n == 0) {
      out.eof = true;
      return out;
    }
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

tcp_listener::tcp_listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind/listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

tcp_listener::~tcp_listener() {
  if (fd_ >= 0) ::close(fd_);
}

tcp_socket tcp_listener::accept(std::chrono::milliseconds timeout) {
  DOLBIE_REQUIRE(fd_ >= 0, "accept on an invalid listener");
  if (!wait_ready(fd_, POLLIN, timeout)) return tcp_socket();
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return tcp_socket(fd);
    }
    if (errno == EINTR) continue;
    // The queued connection died between poll and accept — report a
    // timeout-shaped miss and let the caller's loop come back around.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) {
      return tcp_socket();
    }
    throw_errno("accept");
  }
}

tcp_socket connect_with_retry(const std::string& host, std::uint16_t port,
                              std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    try {
      return tcp_socket::connect_to(host, port);
    } catch (const transport_error&) {
      if (std::chrono::steady_clock::now() >= until) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
}

}  // namespace dolbie::net
