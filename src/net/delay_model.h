// Link timing model: how long a protocol message takes on a real network,
// as a function of per-message latency and link bandwidth. Used by
// dist/round_timing to estimate the wall-clock cost of one DOLBIE round
// under each protocol realization — the dimension Section IV-C's message
// counts alone do not capture (the master-worker protocol has four
// sequential communication phases, the fully-distributed one two).
#pragma once

#include <cstddef>

namespace dolbie::net {

/// Per-link delay parameters.
struct link_delay_model {
  double base_latency = 50e-6;       ///< propagation + stack latency [s]
  double bytes_per_second = 1.25e9;  ///< ~10 Gbit/s

  /// Wire time of one message of `bytes` bytes: latency + serialization.
  double message_time(std::size_t bytes) const;

  /// Time for one NIC to serially push/pull `count` messages of `bytes`
  /// each (the incast/outcast bottleneck at a hub node): one latency plus
  /// back-to-back transfers.
  double serialized_time(std::size_t count, std::size_t bytes) const;
};

}  // namespace dolbie::net
