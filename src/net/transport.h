// Delivery-policy seam of the unified protocol core (dist/mw_round.h,
// dist/fd_round.h).
//
// The round state machines are written against a minimal delivery concept:
//
//   void begin_round(std::uint64_t round);
//   void send(message m);
//   std::optional<message> receive(node_id to, node_id from);
//   std::size_t last_receive_attempts() const;
//   void retire_node(node_id id);   // reclaim a retired node's link state
//
// Two policies implement it:
//
//   * `direct_delivery` — best-effort sends straight through the network;
//     every message is required to arrive (the clean, zero-fault path).
//     begin_round is a no-op and every delivery "takes" one attempt.
//   * `reliable_delivery` — net/reliable.h underneath: per-link sequence
//     numbers, bounded retransmit under virtual-time timeouts, duplicate
//     and reorder absorption. last_receive_attempts() reports how many
//     transmissions the released message took (0 when the retry budget
//     expired), which is what the asynchronous timing models consume.
//
// Both are thin aggregates over references — constructing one per round is
// free and allocation-less, so the shared round flows stay on the PR 3
// zero-allocation hot path.
#pragma once

#include <cstdint>
#include <optional>

#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::net {

/// Best-effort delivery: the clean path's policy. Loss is a protocol bug,
/// not an expected outcome, so there is no epoch state to purge and every
/// released message took exactly one transmission.
struct direct_delivery {
  network& net;

  void begin_round(std::uint64_t /*round*/) {}
  void send(message m) { net.send(std::move(m)); }
  std::optional<message> receive(node_id to, node_id from) {
    return net.receive(to, from);
  }
  std::size_t last_receive_attempts() const { return 1; }
  void retire_node(node_id id) { net.retire_node(id); }
};

/// Reliable delivery: the degraded-mode policy (net/reliable.h semantics).
struct reliable_delivery {
  reliable_link& link;

  void begin_round(std::uint64_t round) { link.begin_round(round); }
  void send(message m) { link.send(std::move(m)); }
  std::optional<message> receive(node_id to, node_id from) {
    return link.receive(to, from);
  }
  std::size_t last_receive_attempts() const {
    return link.last_receive_attempts();
  }
  void retire_node(node_id id) { link.retire_node(id); }
};

}  // namespace dolbie::net
