// Socket-backed implementation of the delivery seam (net/transport.h): the
// third policy next to `direct_delivery` (clean simulation) and
// `reliable_delivery` (faulty simulation), carrying the same protocol
// messages over TCP so the unchanged mw_round/fd_round state machines
// drive a real cluster.
//
// Topology: the driving process (the master daemon, or a test) runs the
// protocol state machine for *every* node; remote worker daemons host the
// message channels. Each link (from -> to) is homed on exactly one
// process by the ownership rule
//
//     owner(to) if remote, else owner(from) if remote, else local,
//
// so in the master-driver deployment every protocol message crosses TCP —
// a send pushes the message to the channel host, a receive pulls it back.
// One TCP connection per peer plus strictly synchronous request/response
// framing preserves the simulation's pull-model ordering: a pull issued
// after a send on the same link always observes that send, which is what
// makes a loopback cluster bit-identical to the in-memory engines.
//
// Sequencing reuses reliable_link's semantics rather than its mechanism:
// TCP supplies retransmission and ordering, so the per-link sequence
// numbers exist to discard duplicates after a reconnect and to keep wire
// transcripts comparable, and `begin_round` is a delivery epoch that
// purges stale channels on the host — exactly reliable_link::begin_round.
//
// Timer modes: the default `receive_timeout == 0` is the virtual-time
// pull model (one deterministic pull per receive; a miss is the timeout —
// no wall clock consulted). A nonzero timeout is the real-timer mode: the
// receive re-pulls every `pull_interval` until a dist::wall_deadline
// expires, which is what a wide-area deployment with genuinely in-flight
// messages needs. Peer death (connection refused/reset/EOF/slow) is an
// environmental failure: the receive returns nullopt and the degraded
// round machinery — built for lossy simulation — handles it unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/message.h"
#include "net/socket.h"

namespace dolbie::obs {
class metrics_registry;
class counter;
}  // namespace dolbie::obs

namespace dolbie::net {

// Stream frame opcodes (first body byte; the rest is opcode-specific,
// little-endian, validated hostile-input-loud on both ends).
enum class frame_op : std::uint8_t {
  hello = 1,        ///< client -> server: [u8 protocol version]
  msg = 2,          ///< client -> server: [codec::encode bytes]
  pull = 3,         ///< client -> server: [u32 to][u32 from]
  reply = 4,        ///< server -> client: [u8 has][encode bytes if has=1]
  begin_round = 5,  ///< client -> server: [u64 round]
  retire = 6,       ///< client -> server: [u32 node]
  reset = 7,        ///< client -> server: []
};

/// Protocol version in the hello frame; bumped on wire-format changes.
constexpr std::uint8_t kSocketProtocolVersion = 1;

/// Channel-host accounting (read from another thread than run()).
struct socket_server_stats {
  std::size_t connections_accepted = 0;
  std::size_t frames_received = 0;
  std::size_t messages_stored = 0;
  std::size_t pulls_served = 0;
  std::size_t empty_pulls = 0;
  std::size_t duplicates_discarded = 0;  ///< by per-link sequence check
  std::size_t stale_purged = 0;          ///< swept by begin_round epochs
  std::size_t hostile_frames = 0;        ///< malformed input; conn closed
};

/// The channel host: owns the message queues for the links homed on this
/// process and serves sends/pulls over TCP. This is what a worker daemon
/// runs; tests run it on a thread behind a loopback listener. Single
/// poll-loop threaded design — all connection and queue state is confined
/// to the run() thread; stats() and stop() are the only cross-thread
/// surfaces.
class socket_server {
 public:
  /// Binds 127.0.0.1:`port` immediately (0 = ephemeral; read port()).
  /// Throws transport_error when the bind fails.
  explicit socket_server(std::uint16_t port,
                         obs::metrics_registry* metrics = nullptr);
  ~socket_server();

  socket_server(const socket_server&) = delete;
  socket_server& operator=(const socket_server&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Serve until stop(). Hostile frames close their connection and count
  /// in stats().hostile_frames; they never terminate the server.
  void run();

  /// One bounded poll iteration (accept + read + serve); run() is this in
  /// a loop. Exposed so a daemon can interleave serving with housekeeping.
  void poll_once(std::chrono::milliseconds timeout);

  /// Ask run() to return; safe from any thread or a signal handler.
  void stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  socket_server_stats stats() const;

 private:
  struct connection {
    tcp_socket sock;
    frame_parser parser;
  };
  struct link_channel {
    std::deque<message> q;
    std::uint32_t next_expected = 1;
  };

  // Returns false when the connection must close (EOF, hostile frame,
  // write failure).
  bool service(connection& conn);
  bool handle_frame(connection& conn, const std::vector<std::uint8_t>& body);

  tcp_listener listener_;
  std::vector<connection> conns_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, link_channel> channels_;
  std::atomic<bool> stop_{false};
  mutable std::mutex mu_;  // guards stats_ only
  socket_server_stats stats_;
  obs::counter* frames_counter_ = nullptr;
  obs::counter* hostile_counter_ = nullptr;
  obs::counter* pulls_counter_ = nullptr;
};

/// One remote channel host a socket_link connects to.
struct peer_address {
  std::string host;
  std::uint16_t port = 0;
};

struct socket_link_options {
  /// Real-timer receive deadline. Zero (default) is the deterministic
  /// virtual-time mode: exactly one pull per receive, a miss is the
  /// timeout. Nonzero re-pulls every `pull_interval` until the deadline.
  std::chrono::milliseconds receive_timeout{0};
  /// Re-pull cadence of the real-timer mode.
  std::chrono::milliseconds pull_interval{2};
  /// How long to keep retrying the initial connection to each peer —
  /// daemons race each other's startup.
  std::chrono::milliseconds connect_deadline{5000};
  /// Longest wait for one reply frame before declaring the peer dead.
  std::chrono::milliseconds reply_timeout{2000};
};

/// Client-side accounting.
struct socket_link_stats {
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  std::size_t frames_sent = 0;
  std::size_t pulls = 0;
  std::size_t empty_pulls = 0;
  std::size_t dropped_sends = 0;   ///< sends to a peer already marked dead
  std::size_t peer_failures = 0;   ///< connections declared dead
  std::size_t stale_purged = 0;    ///< local-queue sweeps by begin_round
};

/// The driver-side transport: routes each link's traffic to its channel
/// host (a remote socket_server, or a process-local queue when both
/// endpoints are local) and implements the delivery-seam semantics over
/// it. Single-threaded like every delivery policy — one protocol state
/// machine drives it.
class socket_link {
 public:
  /// `owner[node]` is the index into `peers` hosting that node's channels,
  /// or -1 for this process. Connects to every referenced peer up front
  /// (connect_with_retry) and fails loudly — a cluster with an absent
  /// member at startup is a deployment error, not a degraded round.
  socket_link(std::size_t n_nodes, std::vector<int> owner,
              const std::vector<peer_address>& peers,
              socket_link_options options = {},
              obs::metrics_registry* metrics = nullptr);

  // Delivery-seam surface (net/transport.h semantics).
  void begin_round(std::uint64_t round);
  void send(message m);
  std::optional<message> receive(node_id to, node_id from);
  std::size_t last_receive_attempts() const { return last_receive_attempts_; }
  void retire_node(node_id id);

  /// Purge everything on both ends (sequence numbers included), like
  /// reliable_link::reset. Accounting is kept.
  void reset();

  const socket_link_stats& stats() const { return stats_; }
  std::size_t nodes() const { return n_; }
  /// Peers still connected (a dead peer degrades rounds; it never revives
  /// within a link's lifetime).
  std::size_t live_peers() const;

 private:
  std::size_t link_index(node_id from, node_id to) const {
    return from * n_ + to;
  }
  /// The peer hosting this link's channel, or -1 for the local queue.
  int channel_host(node_id from, node_id to) const {
    return owner_[to] >= 0 ? owner_[to] : owner_[from];
  }
  bool post(int peer, const std::vector<std::uint8_t>& body);
  void mark_dead(std::size_t peer);
  std::optional<std::vector<std::uint8_t>> read_reply(std::size_t peer);
  void broadcast(const std::vector<std::uint8_t>& body);

  std::size_t n_;
  std::vector<int> owner_;
  socket_link_options options_;
  std::vector<tcp_socket> conns_;
  std::vector<frame_parser> parsers_;
  std::vector<std::uint8_t> dead_;
  std::vector<std::uint32_t> next_seq_;        // n*n, client-side stamping
  std::vector<std::deque<message>> local_q_;   // n*n, both-local links
  socket_link_stats stats_;
  std::size_t last_receive_attempts_ = 0;
  obs::counter* frames_counter_ = nullptr;
  obs::counter* pulls_counter_ = nullptr;
  obs::counter* failures_counter_ = nullptr;
};

/// Delivery policy over a socket_link — the aggregate the round state
/// machines instantiate, shaped exactly like direct/reliable_delivery.
struct socket_delivery {
  socket_link& link;

  void begin_round(std::uint64_t round) { link.begin_round(round); }
  void send(message m) { link.send(std::move(m)); }
  std::optional<message> receive(node_id to, node_id from) {
    return link.receive(to, from);
  }
  std::size_t last_receive_attempts() const {
    return link.last_receive_attempts();
  }
  void retire_node(node_id id) { link.retire_node(id); }
};

}  // namespace dolbie::net
