#include "net/codec.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace dolbie::net {
namespace {

constexpr std::size_t kHeaderBytes = 1 + 1 + 2 + 4 + 4 + 4 + 4;

constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(message_kind::shard_broadcast);

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_f64(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::size_t encoded_size(const message& m) {
  return kHeaderBytes + 8 * m.payload.size();
}

std::vector<std::uint8_t> encode(const message& m) {
  DOLBIE_REQUIRE(m.payload.size() <= kMaxPayloadScalars,
                 "payload too large for wire format: " << m.payload.size());
  DOLBIE_REQUIRE(m.from <= std::numeric_limits<std::uint32_t>::max() &&
                     m.to <= std::numeric_limits<std::uint32_t>::max(),
                 "node id exceeds 32-bit wire format");
  DOLBIE_REQUIRE((m.flags & ~message::kKnownFlags) == 0,
                 "unknown flag bits set: " << static_cast<int>(m.flags));
  for (double v : m.payload) {
    DOLBIE_REQUIRE(std::isfinite(v),
                   "non-finite scalar in outgoing payload: " << v);
  }
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(m));
  out.push_back(static_cast<std::uint8_t>(m.kind));
  out.push_back(m.flags);
  put_u16(out, static_cast<std::uint16_t>(m.payload.size()));
  put_u32(out, static_cast<std::uint32_t>(m.from));
  put_u32(out, static_cast<std::uint32_t>(m.to));
  put_u32(out, m.seq);
  put_u32(out, m.ack);
  for (double v : m.payload) put_f64(out, v);
  return out;
}

message decode(const std::vector<std::uint8_t>& bytes) {
  DOLBIE_REQUIRE(bytes.size() >= kHeaderBytes,
                 "truncated message: " << bytes.size() << " bytes, header is "
                                       << kHeaderBytes);
  const std::uint8_t kind = bytes[0];
  DOLBIE_REQUIRE(kind <= kMaxKind,
                 "unknown message kind " << static_cast<int>(kind));
  const std::uint8_t flags = bytes[1];
  DOLBIE_REQUIRE((flags & ~message::kKnownFlags) == 0,
                 "unknown flag bits set: " << static_cast<int>(flags));
  const std::uint16_t count = get_u16(&bytes[2]);
  DOLBIE_REQUIRE(count <= kMaxPayloadScalars,
                 "oversized payload count " << count << " (cap "
                                            << kMaxPayloadScalars << ")");
  DOLBIE_REQUIRE(
      bytes.size() == kHeaderBytes + 8 * static_cast<std::size_t>(count),
      "payload length mismatch: " << bytes.size() << " bytes for count "
                                  << count);
  message m;
  m.kind = static_cast<message_kind>(kind);
  m.flags = flags;
  m.from = get_u32(&bytes[4]);
  m.to = get_u32(&bytes[8]);
  m.seq = get_u32(&bytes[12]);
  m.ack = get_u32(&bytes[16]);
  m.payload.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const double v = get_f64(&bytes[kHeaderBytes + 8 * i]);
    DOLBIE_REQUIRE(std::isfinite(v),
                   "non-finite scalar at payload index " << i);
    m.payload.push_back(v);
  }
  return m;
}

void encode_into(const message& m, snapshot_writer& w) {
  const std::vector<std::uint8_t> bytes = encode(m);
  w.u32(static_cast<std::uint32_t>(bytes.size()));
  w.raw(bytes.data(), bytes.size());
}

message decode_from(snapshot_reader& r) {
  const std::uint32_t size = r.u32();
  DOLBIE_REQUIRE(size >= kHeaderBytes &&
                     size <= kHeaderBytes + 8 * kMaxPayloadScalars,
                 "embedded message size " << size << " outside wire bounds");
  const std::uint8_t* p = r.raw(size);
  return decode(std::vector<std::uint8_t>(p, p + size));
}

void append_frame(std::vector<std::uint8_t>& out, const std::uint8_t* body,
                  std::size_t size) {
  DOLBIE_REQUIRE(size > 0, "empty frame body: every frame carries an opcode");
  DOLBIE_REQUIRE(size <= kMaxFrameBytes,
                 "frame body of " << size << " bytes exceeds cap "
                                  << kMaxFrameBytes);
  put_u32(out, static_cast<std::uint32_t>(size));
  out.insert(out.end(), body, body + size);
}

void frame_parser::feed(const std::uint8_t* data, std::size_t size) {
  const bool prefix_was_complete = buffer_.size() >= 4;
  buffer_.insert(buffer_.end(), data, data + size);
  // Validate a length prefix the moment it completes, before the body
  // streams in — a hostile length must never drive buffering decisions.
  if (!prefix_was_complete && buffer_.size() >= 4) {
    const std::uint32_t body = get_u32(buffer_.data());
    DOLBIE_REQUIRE(body > 0, "zero-length frame on stream");
    DOLBIE_REQUIRE(body <= kMaxFrameBytes,
                   "frame length prefix " << body << " exceeds cap "
                                          << kMaxFrameBytes);
  }
}

std::optional<std::vector<std::uint8_t>> frame_parser::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t body = get_u32(buffer_.data());
  // feed() validated the prefix; re-check so a parser fed through raw
  // buffer surgery still fails closed.
  DOLBIE_REQUIRE(body > 0 && body <= kMaxFrameBytes,
                 "frame length prefix " << body << " outside (0, "
                                        << kMaxFrameBytes << "]");
  if (buffer_.size() < 4 + static_cast<std::size_t>(body)) return std::nullopt;
  std::vector<std::uint8_t> out(buffer_.begin() + 4,
                                buffer_.begin() + 4 + body);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + body);
  // The erase may have exposed the next frame's prefix; validate it now so
  // a garbage second header is as loud as a garbage first one.
  if (buffer_.size() >= 4) {
    const std::uint32_t next_body = get_u32(buffer_.data());
    DOLBIE_REQUIRE(next_body > 0, "zero-length frame on stream");
    DOLBIE_REQUIRE(next_body <= kMaxFrameBytes,
                   "frame length prefix " << next_body << " exceeds cap "
                                          << kMaxFrameBytes);
  }
  return out;
}

void frame_parser::finish() const {
  DOLBIE_REQUIRE(buffer_.empty(),
                 "stream truncated mid-frame: " << buffer_.size()
                                                << " dangling bytes");
}

}  // namespace dolbie::net
