#include "net/codec.h"

#include <cstring>
#include <limits>

#include "common/error.h"

namespace dolbie::net {
namespace {

constexpr std::size_t kHeaderBytes = 1 + 1 + 2 + 4 + 4;

constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(message_kind::cost_and_step);

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_f64(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::size_t encoded_size(const message& m) {
  return kHeaderBytes + 8 * m.payload.size();
}

std::vector<std::uint8_t> encode(const message& m) {
  DOLBIE_REQUIRE(m.payload.size() <= std::numeric_limits<std::uint16_t>::max(),
                 "payload too large for wire format: " << m.payload.size());
  DOLBIE_REQUIRE(m.from <= std::numeric_limits<std::uint32_t>::max() &&
                     m.to <= std::numeric_limits<std::uint32_t>::max(),
                 "node id exceeds 32-bit wire format");
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(m));
  out.push_back(static_cast<std::uint8_t>(m.kind));
  out.push_back(0);  // reserved
  put_u16(out, static_cast<std::uint16_t>(m.payload.size()));
  put_u32(out, static_cast<std::uint32_t>(m.from));
  put_u32(out, static_cast<std::uint32_t>(m.to));
  for (double v : m.payload) put_f64(out, v);
  return out;
}

std::optional<message> decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  const std::uint8_t kind = bytes[0];
  if (kind > kMaxKind) return std::nullopt;
  if (bytes[1] != 0) return std::nullopt;  // reserved must be zero
  const std::uint16_t count = get_u16(&bytes[2]);
  if (bytes.size() != kHeaderBytes + 8 * static_cast<std::size_t>(count)) {
    return std::nullopt;
  }
  message m;
  m.kind = static_cast<message_kind>(kind);
  m.from = get_u32(&bytes[4]);
  m.to = get_u32(&bytes[8]);
  m.payload.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    m.payload.push_back(get_f64(&bytes[kHeaderBytes + 8 * i]));
  }
  return m;
}

}  // namespace dolbie::net
