#include "net/network.h"

#include "common/error.h"

namespace dolbie::net {

network::network(std::size_t n_nodes)
    : n_(n_nodes),
      links_(n_nodes * n_nodes),
      pending_drops_(n_nodes * n_nodes, 0) {
  DOLBIE_REQUIRE(n_nodes >= 1, "network needs at least one node");
}

channel& network::link(node_id from, node_id to) {
  return links_[from * n_ + to];
}

const channel& network::link(node_id from, node_id to) const {
  return links_[from * n_ + to];
}

void network::send(message m) {
  DOLBIE_REQUIRE(m.from < n_ && m.to < n_,
                 "message endpoints (" << m.from << " -> " << m.to
                                       << ") out of range for " << n_
                                       << " nodes");
  DOLBIE_REQUIRE(m.from != m.to, "node " << m.from << " sent to itself");
  std::size_t& drops = pending_drops_[m.from * n_ + m.to];
  if (drops > 0) {
    // The sender still paid for the message; it just never arrives.
    --drops;
    ++dropped_;
    link(m.from, m.to).account_dropped(m);
    return;
  }
  link(m.from, m.to).push(std::move(m));
}

void network::inject_drop(node_id from, node_id to, std::size_t count) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "drop endpoints out of range");
  pending_drops_[from * n_ + to] += count;
}

std::optional<message> network::receive(node_id to, node_id from) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "receive endpoints out of range");
  return link(from, to).pop();
}

std::optional<message> network::receive_any(node_id to) {
  DOLBIE_REQUIRE(to < n_, "receive endpoint out of range");
  for (node_id from = 0; from < n_; ++from) {
    if (auto m = link(from, to).pop()) return m;
  }
  return std::nullopt;
}

std::size_t network::pending_for(node_id to) const {
  std::size_t total = 0;
  for (node_id from = 0; from < n_; ++from) {
    total += link(from, to).pending();
  }
  return total;
}

traffic_metrics network::total_traffic() const {
  traffic_metrics total;
  for (const channel& c : links_) {
    total.messages_sent += c.metrics().messages_sent;
    total.bytes_sent += c.metrics().bytes_sent;
  }
  return total;
}

void network::reset_traffic() {
  for (channel& c : links_) c.reset_metrics();
}

}  // namespace dolbie::net
