#include "net/network.h"

#include "common/error.h"
#include "obs/trace.h"

namespace dolbie::net {

network::network(std::size_t n_nodes)
    : n_(n_nodes),
      links_(n_nodes * n_nodes),
      pending_drops_(n_nodes * n_nodes, 0) {
  DOLBIE_REQUIRE(n_nodes >= 1, "network needs at least one node");
  total_messages_ = &metrics_.counter_named("net.messages_sent");
  total_bytes_ = &metrics_.counter_named("net.bytes_sent");
  peer_messages_.reserve(n_);
  peer_bytes_.reserve(n_);
  for (node_id i = 0; i < n_; ++i) {
    const std::string peer = "net.peer" + std::to_string(i);
    peer_messages_.push_back(&metrics_.counter_named(peer + ".messages_sent"));
    peer_bytes_.push_back(&metrics_.counter_named(peer + ".bytes_sent"));
  }
}

channel& network::link(node_id from, node_id to) {
  return links_[from * n_ + to];
}

const channel& network::link(node_id from, node_id to) const {
  return links_[from * n_ + to];
}

void network::account_sent(const message& m) {
  total_messages_->add(1);
  total_bytes_->add(m.wire_size_bytes());
  peer_messages_[m.from]->add(1);
  peer_bytes_[m.from]->add(m.wire_size_bytes());
}

void network::send(message m) {
  DOLBIE_REQUIRE(m.from < n_ && m.to < n_,
                 "message endpoints (" << m.from << " -> " << m.to
                                       << ") out of range for " << n_
                                       << " nodes");
  DOLBIE_REQUIRE(m.from != m.to, "node " << m.from << " sent to itself");
  account_sent(m);
  const std::size_t idx = m.from * n_ + m.to;
  std::size_t& drops = pending_drops_[idx];
  if (drops > 0) {
    // The sender still paid for the message; it just never arrives.
    --drops;
    ++dropped_;
    trace_drop(m);
    return;
  }
  if (faults_.enabled()) {
    // One roll set per delivery attempt; the counter advances exactly once
    // per send so the fault transcript is a pure function of the plan and
    // the protocol's (deterministic) send sequence.
    const std::uint64_t attempt = fault_attempts_[idx]++;
    if (faults_.roll_drop(m.from, m.to, attempt)) {
      ++dropped_;
      trace_drop(m);
      return;
    }
    const bool duplicate = faults_.roll_duplicate(m.from, m.to, attempt);
    const bool reorder = faults_.roll_reorder(m.from, m.to, attempt);
    if (duplicate) {
      ++duplicated_;
      link(m.from, m.to).push(m);  // the copy travels first
    }
    if (reorder) {
      link(m.from, m.to).push_before_tail(std::move(m));
    } else {
      link(m.from, m.to).push(std::move(m));
    }
    return;
  }
  link(m.from, m.to).push(std::move(m));
}

void network::trace_drop(const message& m) {
  if (tracer_ != nullptr) {
    tracer_->instant(trace_lane_, trace_round_, "message_dropped", "net",
                     {obs::arg_int("from", m.from), obs::arg_int("to", m.to),
                      obs::arg_int("bytes", m.wire_size_bytes())});
  }
}

void network::attach_faults(fault_plan plan) {
  faults_ = std::move(plan);
  fault_attempts_.assign(n_ * n_, 0);
}

void network::attach_tracer(obs::tracer* tracer, std::uint32_t lane) {
  tracer_ = tracer;
  trace_lane_ = lane;
}

void network::inject_drop(node_id from, node_id to, std::size_t count) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "drop endpoints out of range");
  pending_drops_[from * n_ + to] += count;
}

std::optional<message> network::receive(node_id to, node_id from) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "receive endpoints out of range");
  return link(from, to).pop();
}

std::optional<message> network::receive_any(node_id to) {
  DOLBIE_REQUIRE(to < n_, "receive endpoint out of range");
  for (node_id from = 0; from < n_; ++from) {
    if (auto m = link(from, to).pop()) return m;
  }
  return std::nullopt;
}

std::size_t network::pending_for(node_id to) const {
  std::size_t total = 0;
  for (node_id from = 0; from < n_; ++from) {
    total += link(from, to).pending();
  }
  return total;
}

traffic_totals network::total_traffic() const {
  return {static_cast<std::size_t>(total_messages_->value()),
          static_cast<std::size_t>(total_bytes_->value())};
}

void network::reset_traffic() {
  metrics_.reset();
  // Keep the fault counters in lockstep with the totals they qualify: a
  // stale `dropped_` against freshly zeroed send counters would claim more
  // drops than messages. (Scheduled pending_drops_ and the fault plan are
  // forward-looking configuration and deliberately survive the reset.)
  dropped_ = 0;
  duplicated_ = 0;
}

}  // namespace dolbie::net
