#include "net/network.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/snapshot.h"
#include "net/codec.h"
#include "obs/trace.h"

namespace dolbie::net {

network::network(std::size_t n_nodes)
    : n_(n_nodes),
      dense_(true),
      links_(n_nodes * n_nodes),
      pending_drops_(n_nodes * n_nodes, 0) {
  DOLBIE_REQUIRE(n_nodes >= 1, "network needs at least one node");
  init_metrics();
}

network::network(std::size_t n_nodes, node_id hub) : n_(n_nodes) {
  DOLBIE_REQUIRE(n_nodes >= 1, "network needs at least one node");
  DOLBIE_REQUIRE(hub < n_nodes, "star hub " << hub << " out of range for "
                                            << n_nodes << " nodes");
  dense_ = false;
  edges_.reserve(n_nodes >= 1 ? 2 * (n_nodes - 1) : 0);
  for (node_id i = 0; i < n_; ++i) {
    if (i == hub) continue;
    edges_.emplace_back(i, hub);
    edges_.emplace_back(hub, i);
  }
  index_edges();
  init_metrics();
}

network::network(std::size_t n_nodes,
                 std::vector<std::pair<node_id, node_id>> edges)
    : n_(n_nodes), dense_(false), edges_(std::move(edges)) {
  DOLBIE_REQUIRE(n_nodes >= 1, "network needs at least one node");
  for (const auto& [from, to] : edges_) {
    DOLBIE_REQUIRE(from < n_ && to < n_, "edge (" << from << " -> " << to
                                                  << ") out of range for "
                                                  << n_ << " nodes");
    DOLBIE_REQUIRE(from != to, "self-edge at node " << from);
  }
  index_edges();
  init_metrics();
}

void network::index_edges() {
  std::sort(edges_.begin(), edges_.end());
  DOLBIE_REQUIRE(
      std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
      "duplicate edge in sparse topology");
  links_.resize(edges_.size());
  pending_drops_.assign(edges_.size(), 0);
  in_edges_.assign(n_, {});
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    in_edges_[edges_[i].second].emplace_back(edges_[i].first, i);
  }
  // edges_ is sorted by (from, to), so each receiver's incoming list is
  // already in ascending sender order — the scan order receive_any and
  // pending_for promise.
}

void network::init_metrics() {
  total_messages_ = &metrics_.counter_named("net.messages_sent");
  total_bytes_ = &metrics_.counter_named("net.bytes_sent");
  peer_messages_.reserve(n_);
  peer_bytes_.reserve(n_);
  for (node_id i = 0; i < n_; ++i) {
    const std::string peer = "net.peer" + std::to_string(i);
    peer_messages_.push_back(&metrics_.counter_named(peer + ".messages_sent"));
    peer_bytes_.push_back(&metrics_.counter_named(peer + ".bytes_sent"));
  }
}

std::size_t network::link_index(node_id from, node_id to) const {
  if (dense_) return from * n_ + to;
  const auto key = std::make_pair(from, to);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), key);
  DOLBIE_REQUIRE(it != edges_.end() && *it == key,
                 "link (" << from << " -> " << to
                          << ") does not exist in this topology");
  return static_cast<std::size_t>(it - edges_.begin());
}

std::pair<node_id, node_id> network::link_endpoints(std::size_t index) const {
  if (dense_) return {index / n_, index % n_};
  return edges_[index];
}

channel& network::link(node_id from, node_id to) {
  return links_[link_index(from, to)];
}

const channel& network::link(node_id from, node_id to) const {
  return links_[link_index(from, to)];
}

void network::account_sent(const message& m) {
  total_messages_->add(1);
  total_bytes_->add(m.wire_size_bytes());
  peer_messages_[m.from]->add(1);
  peer_bytes_[m.from]->add(m.wire_size_bytes());
}

void network::send(message m) {
  DOLBIE_REQUIRE(m.from < n_ && m.to < n_,
                 "message endpoints (" << m.from << " -> " << m.to
                                       << ") out of range for " << n_
                                       << " nodes");
  DOLBIE_REQUIRE(m.from != m.to, "node " << m.from << " sent to itself");
  const std::size_t idx = link_index(m.from, m.to);
  account_sent(m);
  std::size_t& drops = pending_drops_[idx];
  if (drops > 0) {
    // The sender still paid for the message; it just never arrives.
    --drops;
    ++dropped_;
    trace_drop(m);
    return;
  }
  if (faults_.enabled()) {
    // One roll set per delivery attempt; the counter advances exactly once
    // per send so the fault transcript is a pure function of the plan and
    // the protocol's (deterministic) send sequence.
    const std::uint64_t attempt = fault_attempts_[idx]++;
    if (faults_.roll_drop(m.from, m.to, attempt)) {
      ++dropped_;
      trace_drop(m);
      return;
    }
    const bool duplicate = faults_.roll_duplicate(m.from, m.to, attempt);
    const bool reorder = faults_.roll_reorder(m.from, m.to, attempt);
    if (duplicate) {
      ++duplicated_;
      links_[idx].push(m);  // the copy travels first
    }
    if (reorder) {
      links_[idx].push_before_tail(std::move(m));
    } else {
      links_[idx].push(std::move(m));
    }
    return;
  }
  links_[idx].push(std::move(m));
}

void network::trace_drop(const message& m) {
  if (tracer_ != nullptr) {
    tracer_->instant(trace_lane_, trace_round_, "message_dropped", "net",
                     {obs::arg_int("from", m.from), obs::arg_int("to", m.to),
                      obs::arg_int("bytes", m.wire_size_bytes())});
  }
}

void network::attach_faults(fault_plan plan) {
  faults_ = std::move(plan);
  fault_attempts_.assign(links_.size(), 0);
}

void network::attach_tracer(obs::tracer* tracer, std::uint32_t lane) {
  tracer_ = tracer;
  trace_lane_ = lane;
}

void network::inject_drop(node_id from, node_id to, std::size_t count) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "drop endpoints out of range");
  pending_drops_[link_index(from, to)] += count;
}

std::optional<message> network::receive(node_id to, node_id from) {
  DOLBIE_REQUIRE(from < n_ && to < n_, "receive endpoints out of range");
  return link(from, to).pop();
}

std::optional<message> network::receive_any(node_id to) {
  DOLBIE_REQUIRE(to < n_, "receive endpoint out of range");
  if (dense_) {
    for (node_id from = 0; from < n_; ++from) {
      if (auto m = links_[from * n_ + to].pop()) return m;
    }
    return std::nullopt;
  }
  for (const auto& in : in_edges_[to]) {
    if (auto m = links_[in.second].pop()) return m;
  }
  return std::nullopt;
}

std::size_t network::pending_for(node_id to) const {
  DOLBIE_REQUIRE(to < n_, "receive endpoint out of range");
  std::size_t total = 0;
  if (dense_) {
    for (node_id from = 0; from < n_; ++from) {
      total += links_[from * n_ + to].pending();
    }
    return total;
  }
  for (const auto& in : in_edges_[to]) {
    total += links_[in.second].pending();
  }
  return total;
}

std::uint64_t network::peer_messages_sent(node_id id) const {
  DOLBIE_REQUIRE(id < n_, "peer id out of range");
  return static_cast<std::uint64_t>(peer_messages_[id]->value());
}

std::uint64_t network::peer_bytes_sent(node_id id) const {
  DOLBIE_REQUIRE(id < n_, "peer id out of range");
  return static_cast<std::uint64_t>(peer_bytes_[id]->value());
}

void network::retire_node(node_id id) {
  DOLBIE_REQUIRE(id < n_, "retired node out of range");
  if (dense_) {
    for (node_id peer = 0; peer < n_; ++peer) {
      if (peer == id) continue;
      links_[id * n_ + peer].release();
      links_[peer * n_ + id].release();
    }
    return;
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].first == id || edges_[i].second == id) links_[i].release();
  }
}

traffic_totals network::total_traffic() const {
  return {static_cast<std::size_t>(total_messages_->value()),
          static_cast<std::size_t>(total_bytes_->value())};
}

void network::snapshot_to(snapshot_writer& w) const {
  w.u64(links_.size());
  for (const channel& ch : links_) {
    w.u64(ch.pending());
    for (std::size_t i = 0; i < ch.pending(); ++i) {
      encode_into(ch.peek(i), w);
    }
  }
  for (const std::size_t drops : pending_drops_) w.u64(drops);
  w.u64(dropped_);
  w.u64(duplicated_);
  // The fault-plan attempt cursors: the plan's rolls are pure functions of
  // (seed, link, attempt), so restoring the cursors resumes the exact
  // fault transcript mid-stream.
  w.u8(faults_.enabled() ? 1 : 0);
  if (faults_.enabled()) {
    for (const std::uint64_t attempt : fault_attempts_) w.u64(attempt);
  }
  w.u64(total_messages_->value());
  w.u64(total_bytes_->value());
  for (node_id i = 0; i < n_; ++i) {
    w.u64(peer_messages_[i]->value());
    w.u64(peer_bytes_[i]->value());
  }
}

void network::restore_from(snapshot_reader& r) {
  const std::uint64_t link_count = r.u64();
  DOLBIE_REQUIRE(link_count == links_.size(),
                 "network snapshot has " << link_count
                                         << " links, this topology has "
                                         << links_.size());
  for (channel& ch : links_) {
    ch.release();
    const std::uint64_t pending = r.u64();
    // Each embedded message costs at least its u32 length prefix plus the
    // 20-byte wire header, bounding what a corrupt count can allocate.
    r.require_count(pending, 24);
    for (std::uint64_t i = 0; i < pending; ++i) {
      // Restored directly into storage: these messages were already sent
      // (and fault-rolled) before the snapshot; re-sending would double
      // the accounting and burn fresh rolls.
      ch.push(decode_from(r));
    }
  }
  for (std::size_t& drops : pending_drops_) {
    drops = static_cast<std::size_t>(r.u64());
  }
  dropped_ = static_cast<std::size_t>(r.u64());
  duplicated_ = static_cast<std::size_t>(r.u64());
  const bool had_faults = r.u8() != 0;
  DOLBIE_REQUIRE(had_faults == faults_.enabled(),
                 "network snapshot fault attachment does not match this "
                 "network's configuration");
  if (had_faults) {
    DOLBIE_REQUIRE(fault_attempts_.size() == links_.size(),
                   "fault attempt cursors not sized for this topology");
    for (std::uint64_t& attempt : fault_attempts_) attempt = r.u64();
  }
  metrics_.reset();
  total_messages_->add(r.u64());
  total_bytes_->add(r.u64());
  for (node_id i = 0; i < n_; ++i) {
    peer_messages_[i]->add(r.u64());
    peer_bytes_[i]->add(r.u64());
  }
}

void network::reset_traffic() {
  metrics_.reset();
  // Keep the fault counters in lockstep with the totals they qualify: a
  // stale `dropped_` against freshly zeroed send counters would claim more
  // drops than messages. (Scheduled pending_drops_ and the fault plan are
  // forward-looking configuration and deliberately survive the reset.)
  dropped_ = 0;
  duplicated_ = 0;
}

}  // namespace dolbie::net
