#include "net/delay_model.h"

#include "common/error.h"

namespace dolbie::net {

double link_delay_model::message_time(std::size_t bytes) const {
  DOLBIE_REQUIRE(base_latency >= 0.0, "latency must be >= 0");
  DOLBIE_REQUIRE(bytes_per_second > 0.0, "bandwidth must be > 0");
  return base_latency + static_cast<double>(bytes) / bytes_per_second;
}

double link_delay_model::serialized_time(std::size_t count,
                                         std::size_t bytes) const {
  DOLBIE_REQUIRE(base_latency >= 0.0, "latency must be >= 0");
  DOLBIE_REQUIRE(bytes_per_second > 0.0, "bandwidth must be > 0");
  if (count == 0) return 0.0;
  return base_latency + static_cast<double>(count) *
                            (static_cast<double>(bytes) / bytes_per_second);
}

}  // namespace dolbie::net
