// The simulated network: a dense matrix of point-to-point channels with
// registry-backed traffic accounting. Deterministic and single-threaded by
// design — protocol progress is driven explicitly in phases by
// src/dist/runner, which makes every interleaving reproducible (and the
// tests meaningful).
//
// Observability: every send bumps total and per-sender ("per-peer")
// message/byte counters in an obs::metrics_registry owned by the network
// (names: net.messages_sent, net.bytes_sent, net.peer<i>.messages_sent,
// net.peer<i>.bytes_sent). An optionally attached obs::tracer receives a
// "message_dropped" instant event whenever fault injection swallows a
// message.
#pragma once

#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"

namespace dolbie::obs {
class tracer;
}  // namespace dolbie::obs

namespace dolbie::net {

/// Aggregate traffic totals, read from the network's metrics registry.
struct traffic_totals {
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
};

class network {
 public:
  explicit network(std::size_t n_nodes);

  std::size_t nodes() const { return n_; }

  /// Send a message; `m.from`/`m.to` must be valid node ids and distinct.
  void send(message m);

  /// Receive the oldest pending message from `from` to `to`.
  std::optional<message> receive(node_id to, node_id from);

  /// Receive the oldest pending message addressed to `to` from any sender
  /// (scanning senders in id order for determinism).
  std::optional<message> receive_any(node_id to);

  /// Count of messages currently pending for `to`.
  std::size_t pending_for(node_id to) const;

  /// Aggregate traffic since construction or the last reset.
  traffic_totals total_traffic() const;
  void reset_traffic();

  /// The backing registry (total + per-peer counters), for snapshots.
  const obs::metrics_registry& metrics() const { return metrics_; }

  /// Attach a tracer: drop events are recorded on `lane`, stamped with the
  /// round set by set_round(). Pass nullptr to detach.
  void attach_tracer(obs::tracer* tracer, std::uint32_t lane);

  /// Round stamp applied to subsequent trace events (protocol realizations
  /// call this at the start of each round).
  void set_round(std::uint64_t round) { trace_round_ = round; }

  /// Fault injection: silently drop the next `count` messages sent on the
  /// (from, to) link. Dropped messages still count as sent in the traffic
  /// metrics (the sender paid for them). Used by the fault-injection tests
  /// to verify that both protocol realizations *detect* message loss (they
  /// fail fast with a diagnostic) instead of computing with stale state.
  void inject_drop(node_id from, node_id to, std::size_t count = 1);

  /// Messages dropped so far by fault injection.
  std::size_t dropped() const { return dropped_; }

 private:
  channel& link(node_id from, node_id to);
  const channel& link(node_id from, node_id to) const;
  void account_sent(const message& m);

  std::size_t n_;
  std::vector<channel> links_;  // dense n*n matrix, row = from, col = to
  std::vector<std::size_t> pending_drops_;  // same indexing as links_
  std::size_t dropped_ = 0;

  obs::metrics_registry metrics_;
  obs::counter* total_messages_ = nullptr;
  obs::counter* total_bytes_ = nullptr;
  std::vector<obs::counter*> peer_messages_;  // indexed by sender id
  std::vector<obs::counter*> peer_bytes_;
  obs::tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
  std::uint64_t trace_round_ = 0;
};

}  // namespace dolbie::net
