// The simulated network: point-to-point channels with registry-backed
// traffic accounting. Deterministic and single-threaded by design —
// protocol progress is driven explicitly in phases by src/dist/runner,
// which makes every interleaving reproducible (and the tests meaningful).
//
// Three topologies share one implementation:
//   - dense: every ordered (from, to) pair has a channel (n^2 storage) —
//     the historical default, required by the fully distributed protocol's
//     all-pairs broadcast;
//   - star: only worker<->hub links exist (2(n-1) channels) — the
//     master/worker protocol's actual communication pattern, which is what
//     makes flat MW feasible at N = 10^5;
//   - sparse: an explicit directed edge list — the hierarchical layer's
//     aggregator trees.
// Fault rolls key on (seed, salt, from, to, attempt), never on storage
// layout, so a protocol that only ever uses the links a sparser topology
// keeps produces bit-identical transcripts on either topology.
//
// Observability: every send bumps total and per-sender ("per-peer")
// message/byte counters in an obs::metrics_registry owned by the network
// (names: net.messages_sent, net.bytes_sent, net.peer<i>.messages_sent,
// net.peer<i>.bytes_sent). An optionally attached obs::tracer receives a
// "message_dropped" instant event whenever fault injection swallows a
// message.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/fault_plan.h"
#include "obs/metrics.h"

namespace dolbie {
class snapshot_reader;
class snapshot_writer;
}  // namespace dolbie

namespace dolbie::obs {
class tracer;
}  // namespace dolbie::obs

namespace dolbie::net {

/// Aggregate traffic totals, read from the network's metrics registry.
struct traffic_totals {
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
};

class network {
 public:
  /// Dense topology: every ordered pair of distinct nodes is linked.
  explicit network(std::size_t n_nodes);

  /// Star topology: links exist only between `hub` and every other node
  /// (both directions). Sends on any other pair are protocol errors.
  network(std::size_t n_nodes, node_id hub);

  /// Sparse topology: exactly the given directed edges exist. Endpoints
  /// must be in range and distinct; duplicate edges are rejected.
  network(std::size_t n_nodes,
          std::vector<std::pair<node_id, node_id>> edges);

  std::size_t nodes() const { return n_; }

  /// Send a message; `m.from`/`m.to` must be valid node ids and distinct,
  /// and the (from, to) link must exist in the topology.
  void send(message m);

  /// Receive the oldest pending message from `from` to `to`.
  std::optional<message> receive(node_id to, node_id from);

  /// Receive the oldest pending message addressed to `to` from any sender
  /// (scanning senders in id order for determinism).
  std::optional<message> receive_any(node_id to);

  /// Count of messages currently pending for `to`.
  std::size_t pending_for(node_id to) const;

  /// Aggregate traffic since construction or the last reset.
  traffic_totals total_traffic() const;

  /// Cumulative messages / bytes sent by one node (per-peer counters).
  std::uint64_t peer_messages_sent(node_id id) const;
  std::uint64_t peer_bytes_sent(node_id id) const;

  /// Zero every traffic-derived figure together: the metrics registry
  /// (totals and per-peer counters) *and* the fault counters (`dropped_`,
  /// `duplicated_`) they are read against — resetting one but not the
  /// other leaves ratios like dropped/sent meaningless. Scheduled faults
  /// (inject_drop budgets, the attached fault plan and its per-link
  /// attempt counters) are configuration, not accounting, and survive.
  void reset_traffic();

  /// Release the channel storage of every link touching `id`, dropping any
  /// undelivered messages. For permanently retired nodes (churn): their
  /// links never carry traffic again, so long faulty runs at large N would
  /// otherwise hold dead buffers forever. Accounting is untouched; the
  /// links remain usable (empty) if addressed again.
  void retire_node(node_id id);

  /// Number of channels in this topology (dense counts self-slots too).
  std::size_t link_count() const { return links_.size(); }

  /// Storage index of the (from, to) link; requires the link to exist.
  /// Layered transports (net/reliable.h) index their per-link state with
  /// this so their storage matches the topology instead of assuming n^2.
  std::size_t link_index(node_id from, node_id to) const;

  /// Endpoints of the link at a storage index (inverse of link_index).
  /// Dense topologies enumerate self-pairs (from == to) as well; callers
  /// iterating link storage must skip those.
  std::pair<node_id, node_id> link_endpoints(std::size_t index) const;

  /// The backing registry (total + per-peer counters), for snapshots.
  const obs::metrics_registry& metrics() const { return metrics_; }

  /// Attach a tracer: drop events are recorded on `lane`, stamped with the
  /// round set by set_round(). Pass nullptr to detach.
  void attach_tracer(obs::tracer* tracer, std::uint32_t lane);

  /// Round stamp applied to subsequent trace events (protocol realizations
  /// call this at the start of each round).
  void set_round(std::uint64_t round) { trace_round_ = round; }

  /// Fault injection: silently drop the next `count` messages sent on the
  /// (from, to) link. Dropped messages still count as sent in the traffic
  /// metrics (the sender paid for them). Used by the fault-injection tests
  /// to verify that both protocol realizations *detect* message loss (they
  /// fail fast with a diagnostic) instead of computing with stale state.
  void inject_drop(node_id from, node_id to, std::size_t count = 1);

  /// Messages dropped so far by fault injection (inject_drop or plan).
  std::size_t dropped() const { return dropped_; }

  /// Messages duplicated so far by the attached fault plan.
  std::size_t duplicated() const { return duplicated_; }

  /// Attach a deterministic fault schedule: every subsequent send rolls
  /// the plan's drop/duplicate/reorder probabilities with a per-link
  /// attempt counter (reset here), generalizing inject_drop. Dropped
  /// messages still count as sent, exactly like injected drops.
  void attach_faults(fault_plan plan);
  const fault_plan& faults() const { return faults_; }

  /// Serialize the mutable delivery state — channel contents, scheduled
  /// drops, the fault counters (dropped/duplicated and the per-link
  /// attempt cursors the plan's rolls key on) and the traffic counters —
  /// for an engine snapshot. Topology and configuration are not written:
  /// the restoring network must be constructed identically first.
  void snapshot_to(snapshot_writer& w) const;
  /// Restore state written by snapshot_to into an identically constructed
  /// network (same topology, same fault attachment). Throws
  /// invariant_error on shape mismatch or corrupt bytes.
  void restore_from(snapshot_reader& r);

 private:
  void init_metrics();
  void index_edges();
  channel& link(node_id from, node_id to);
  const channel& link(node_id from, node_id to) const;
  void account_sent(const message& m);
  void trace_drop(const message& m);

  std::size_t n_;
  bool dense_ = true;
  /// Sparse/star: directed edges sorted by (from, to); the link at
  /// edges_[i] is stored in links_[i]. Empty in dense mode.
  std::vector<std::pair<node_id, node_id>> edges_;
  /// Sparse/star: per-receiver incoming links as (from, storage index),
  /// sorted by `from` so receive_any keeps its id-order determinism.
  std::vector<std::vector<std::pair<node_id, std::size_t>>> in_edges_;
  std::vector<channel> links_;  // dense: n*n matrix; sparse: one per edge
  std::vector<std::size_t> pending_drops_;  // same indexing as links_
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;

  fault_plan faults_;
  std::vector<std::uint64_t> fault_attempts_;  // same indexing as links_

  obs::metrics_registry metrics_;
  obs::counter* total_messages_ = nullptr;
  obs::counter* total_bytes_ = nullptr;
  std::vector<obs::counter*> peer_messages_;  // indexed by sender id
  std::vector<obs::counter*> peer_bytes_;
  obs::tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
  std::uint64_t trace_round_ = 0;
};

}  // namespace dolbie::net
