// The simulated network: a dense matrix of point-to-point channels with
// aggregate traffic metrics. Deterministic and single-threaded by design —
// protocol progress is driven explicitly in phases by src/dist/runner, which
// makes every interleaving reproducible (and the tests meaningful).
#pragma once

#include <vector>

#include "net/channel.h"

namespace dolbie::net {

class network {
 public:
  explicit network(std::size_t n_nodes);

  std::size_t nodes() const { return n_; }

  /// Send a message; `m.from`/`m.to` must be valid node ids and distinct.
  void send(message m);

  /// Receive the oldest pending message from `from` to `to`.
  std::optional<message> receive(node_id to, node_id from);

  /// Receive the oldest pending message addressed to `to` from any sender
  /// (scanning senders in id order for determinism).
  std::optional<message> receive_any(node_id to);

  /// Count of messages currently pending for `to`.
  std::size_t pending_for(node_id to) const;

  /// Aggregate traffic since construction or the last reset.
  traffic_metrics total_traffic() const;
  void reset_traffic();

  /// Fault injection: silently drop the next `count` messages sent on the
  /// (from, to) link. Dropped messages still count as sent in the traffic
  /// metrics (the sender paid for them). Used by the fault-injection tests
  /// to verify that both protocol realizations *detect* message loss (they
  /// fail fast with a diagnostic) instead of computing with stale state.
  void inject_drop(node_id from, node_id to, std::size_t count = 1);

  /// Messages dropped so far by fault injection.
  std::size_t dropped() const { return dropped_; }

 private:
  channel& link(node_id from, node_id to);
  const channel& link(node_id from, node_id to) const;

  std::size_t n_;
  std::vector<channel> links_;  // dense n*n matrix, row = from, col = to
  std::vector<std::size_t> pending_drops_;  // same indexing as links_
  std::size_t dropped_ = 0;
};

}  // namespace dolbie::net
