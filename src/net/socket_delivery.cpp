#include "net/socket_delivery.h"

#include <poll.h>

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "dist/round_timing.h"
#include "obs/metrics.h"

namespace dolbie::net {
namespace {

constexpr std::size_t kReadChunk = 4096;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> hello_body() {
  return {static_cast<std::uint8_t>(frame_op::hello), kSocketProtocolVersion};
}

std::vector<std::uint8_t> msg_body(const message& m) {
  std::vector<std::uint8_t> body;
  body.reserve(1 + encoded_size(m));
  body.push_back(static_cast<std::uint8_t>(frame_op::msg));
  const std::vector<std::uint8_t> wire = encode(m);
  body.insert(body.end(), wire.begin(), wire.end());
  return body;
}

std::vector<std::uint8_t> pull_body(node_id to, node_id from) {
  std::vector<std::uint8_t> body;
  body.reserve(9);
  body.push_back(static_cast<std::uint8_t>(frame_op::pull));
  put_u32(body, static_cast<std::uint32_t>(to));
  put_u32(body, static_cast<std::uint32_t>(from));
  return body;
}

std::vector<std::uint8_t> begin_round_body(std::uint64_t round) {
  std::vector<std::uint8_t> body;
  body.reserve(9);
  body.push_back(static_cast<std::uint8_t>(frame_op::begin_round));
  put_u32(body, static_cast<std::uint32_t>(round & 0xffffffffu));
  put_u32(body, static_cast<std::uint32_t>(round >> 32));
  return body;
}

std::vector<std::uint8_t> retire_body(node_id id) {
  std::vector<std::uint8_t> body;
  body.reserve(5);
  body.push_back(static_cast<std::uint8_t>(frame_op::retire));
  put_u32(body, static_cast<std::uint32_t>(id));
  return body;
}

std::vector<std::uint8_t> reply_body(const std::optional<message>& m) {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(frame_op::reply));
  body.push_back(m.has_value() ? 1 : 0);
  if (m.has_value()) {
    const std::vector<std::uint8_t> wire = encode(*m);
    body.insert(body.end(), wire.begin(), wire.end());
  }
  return body;
}

}  // namespace

// ---------------------------------------------------------------------------
// socket_server
// ---------------------------------------------------------------------------

socket_server::socket_server(std::uint16_t port,
                             obs::metrics_registry* metrics)
    : listener_(port) {
  if (metrics != nullptr) {
    frames_counter_ = &metrics->counter_named("daemon.frames_received");
    hostile_counter_ = &metrics->counter_named("daemon.hostile_frames");
    pulls_counter_ = &metrics->counter_named("daemon.pulls_served");
  }
}

socket_server::~socket_server() = default;

void socket_server::run() {
  while (!stopped()) poll_once(std::chrono::milliseconds(50));
}

void socket_server::poll_once(std::chrono::milliseconds timeout) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back({listener_.fd(), POLLIN, 0});
  for (const connection& c : conns_) fds.push_back({c.sock.fd(), POLLIN, 0});
  const int ms = static_cast<int>(
      std::min<std::int64_t>(timeout.count(), 1 << 30));
  const int rc = ::poll(fds.data(), fds.size(), ms);
  if (rc <= 0) return;  // timeout, or EINTR — the run loop comes back

  if ((fds[0].revents & POLLIN) != 0) {
    tcp_socket accepted = listener_.accept(std::chrono::milliseconds(0));
    if (accepted.valid()) {
      conns_.push_back(connection{std::move(accepted), frame_parser{}});
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_accepted;
    }
  }
  // Service readable connections; drop the ones that failed. Iterate over
  // the pollfd snapshot — conns_ appended above are picked up next cycle.
  std::vector<std::size_t> closing;
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (!service(conns_[i - 1])) closing.push_back(i - 1);
  }
  for (auto it = closing.rbegin(); it != closing.rend(); ++it) {
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

bool socket_server::service(connection& conn) {
  std::uint8_t buf[kReadChunk];
  read_result r;
  try {
    r = conn.sock.read_some(buf, sizeof(buf), std::chrono::milliseconds(0));
  } catch (const transport_error&) {
    return false;
  }
  if (r.eof) return false;
  if (r.timed_out || r.bytes == 0) return true;
  try {
    conn.parser.feed(buf, r.bytes);
    for (;;) {
      std::optional<std::vector<std::uint8_t>> frame = conn.parser.next();
      if (!frame.has_value()) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_received;
      }
      if (frames_counter_ != nullptr) frames_counter_->add(1);
      if (!handle_frame(conn, *frame)) return false;
    }
  } catch (const invariant_error&) {
    // Hostile bytes (bad length prefix, bad opcode body, corrupt message
    // encoding): count it and close this connection; the server and every
    // other connection keep serving.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hostile_frames;
    if (hostile_counter_ != nullptr) hostile_counter_->add(1);
    return false;
  } catch (const transport_error&) {
    return false;
  }
  return true;
}

bool socket_server::handle_frame(connection& conn,
                                 const std::vector<std::uint8_t>& body) {
  DOLBIE_REQUIRE(!body.empty(), "empty frame body");
  const auto op = static_cast<frame_op>(body[0]);
  switch (op) {
    case frame_op::hello: {
      DOLBIE_REQUIRE(body.size() == 2, "malformed hello frame");
      DOLBIE_REQUIRE(body[1] == kSocketProtocolVersion,
                     "socket protocol version mismatch: peer speaks "
                         << static_cast<int>(body[1]) << ", this host "
                         << static_cast<int>(kSocketProtocolVersion));
      return true;
    }
    case frame_op::msg: {
      const message m = decode(
          std::vector<std::uint8_t>(body.begin() + 1, body.end()));
      link_channel& ch = channels_[{static_cast<std::uint32_t>(m.from),
                                    static_cast<std::uint32_t>(m.to)}];
      std::lock_guard<std::mutex> lock(mu_);
      if (m.seq != 0 && m.seq < ch.next_expected) {
        ++stats_.duplicates_discarded;
        return true;
      }
      if (m.seq != 0) ch.next_expected = m.seq + 1;
      ch.q.push_back(m);
      ++stats_.messages_stored;
      return true;
    }
    case frame_op::pull: {
      DOLBIE_REQUIRE(body.size() == 9, "malformed pull frame");
      const std::uint32_t to = get_u32(&body[1]);
      const std::uint32_t from = get_u32(&body[5]);
      std::optional<message> m;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = channels_.find({from, to});
        if (it != channels_.end() && !it->second.q.empty()) {
          m = std::move(it->second.q.front());
          it->second.q.pop_front();
        }
        ++stats_.pulls_served;
        if (!m.has_value()) ++stats_.empty_pulls;
      }
      if (pulls_counter_ != nullptr) pulls_counter_->add(1);
      const std::vector<std::uint8_t> reply = reply_body(m);
      std::vector<std::uint8_t> out;
      append_frame(out, reply);
      try {
        conn.sock.write_all(out.data(), out.size());
      } catch (const transport_error&) {
        return false;
      }
      return true;
    }
    case frame_op::begin_round: {
      DOLBIE_REQUIRE(body.size() == 9, "malformed begin_round frame");
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [key, ch] : channels_) {
        stats_.stale_purged += ch.q.size();
        ch.q.clear();
      }
      return true;
    }
    case frame_op::retire: {
      DOLBIE_REQUIRE(body.size() == 5, "malformed retire frame");
      const std::uint32_t id = get_u32(&body[1]);
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = channels_.begin(); it != channels_.end();) {
        if (it->first.first == id || it->first.second == id) {
          it = channels_.erase(it);
        } else {
          ++it;
        }
      }
      return true;
    }
    case frame_op::reset: {
      DOLBIE_REQUIRE(body.size() == 1, "malformed reset frame");
      std::lock_guard<std::mutex> lock(mu_);
      channels_.clear();
      return true;
    }
    case frame_op::reply:
      break;  // server never receives replies — hostile
  }
  DOLBIE_REQUIRE(false,
                 "unknown frame opcode " << static_cast<int>(body[0]));
  return false;  // unreachable
}

socket_server_stats socket_server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// socket_link
// ---------------------------------------------------------------------------

socket_link::socket_link(std::size_t n_nodes, std::vector<int> owner,
                         const std::vector<peer_address>& peers,
                         socket_link_options options,
                         obs::metrics_registry* metrics)
    : n_(n_nodes),
      owner_(std::move(owner)),
      options_(options),
      parsers_(peers.size()),
      dead_(peers.size(), 0),
      next_seq_(n_nodes * n_nodes, 1),
      local_q_(n_nodes * n_nodes) {
  DOLBIE_REQUIRE(owner_.size() == n_, "owner map size " << owner_.size()
                                                        << " != node count "
                                                        << n_);
  for (int o : owner_) {
    DOLBIE_REQUIRE(o >= -1 && o < static_cast<int>(peers.size()),
                   "owner index " << o << " outside peer list of "
                                  << peers.size());
  }
  if (metrics != nullptr) {
    frames_counter_ = &metrics->counter_named("net.tcp.frames_sent");
    pulls_counter_ = &metrics->counter_named("net.tcp.pulls");
    failures_counter_ = &metrics->counter_named("net.tcp.peer_failures");
  }
  conns_.reserve(peers.size());
  for (const peer_address& p : peers) {
    conns_.push_back(
        connect_with_retry(p.host, p.port, options_.connect_deadline));
  }
  std::vector<std::uint8_t> out;
  append_frame(out, hello_body());
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    conns_[i].write_all(out.data(), out.size());
    ++stats_.frames_sent;
  }
}

void socket_link::mark_dead(std::size_t peer) {
  if (dead_[peer] != 0) return;
  dead_[peer] = 1;
  conns_[peer].close();
  ++stats_.peer_failures;
  if (failures_counter_ != nullptr) failures_counter_->add(1);
}

bool socket_link::post(int peer, const std::vector<std::uint8_t>& body) {
  const auto p = static_cast<std::size_t>(peer);
  if (dead_[p] != 0) return false;
  std::vector<std::uint8_t> out;
  append_frame(out, body);
  try {
    conns_[p].write_all(out.data(), out.size());
  } catch (const transport_error&) {
    mark_dead(p);
    return false;
  }
  ++stats_.frames_sent;
  if (frames_counter_ != nullptr) frames_counter_->add(1);
  return true;
}

void socket_link::broadcast(const std::vector<std::uint8_t>& body) {
  for (std::size_t p = 0; p < conns_.size(); ++p) {
    if (dead_[p] == 0) post(static_cast<int>(p), body);
  }
}

std::optional<std::vector<std::uint8_t>> socket_link::read_reply(
    std::size_t peer) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.reply_timeout;
  std::uint8_t buf[kReadChunk];
  for (;;) {
    if (auto frame = parsers_[peer].next(); frame.has_value()) return frame;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return std::nullopt;
    read_result r;
    try {
      r = conns_[peer].read_some(buf, sizeof(buf), left);
    } catch (const transport_error&) {
      return std::nullopt;
    }
    if (r.eof) return std::nullopt;
    if (r.timed_out) return std::nullopt;
    // Reply frames come from our own server; malformed ones mean the
    // stream is corrupt — treat the peer as failed rather than throwing
    // through a protocol round.
    try {
      parsers_[peer].feed(buf, r.bytes);
    } catch (const invariant_error&) {
      return std::nullopt;
    }
  }
}

void socket_link::begin_round(std::uint64_t round) {
  broadcast(begin_round_body(round));
  for (std::deque<message>& q : local_q_) {
    stats_.stale_purged += q.size();
    q.clear();
  }
}

void socket_link::send(message m) {
  DOLBIE_REQUIRE(m.from < n_ && m.to < n_,
                 "send endpoints (" << m.from << " -> " << m.to
                                    << ") outside node range " << n_);
  m.seq = next_seq_[link_index(m.from, m.to)]++;
  const int host = channel_host(m.from, m.to);
  if (host < 0) {
    local_q_[link_index(m.from, m.to)].push_back(std::move(m));
    ++stats_.messages_sent;
    return;
  }
  if (post(host, msg_body(m))) {
    ++stats_.messages_sent;
  } else {
    ++stats_.dropped_sends;
  }
}

std::optional<message> socket_link::receive(node_id to, node_id from) {
  DOLBIE_REQUIRE(to < n_ && from < n_,
                 "receive endpoints (" << from << " -> " << to
                                       << ") outside node range " << n_);
  last_receive_attempts_ = 0;
  const int host = channel_host(from, to);
  if (host < 0) {
    std::deque<message>& q = local_q_[link_index(from, to)];
    if (q.empty()) return std::nullopt;
    message m = std::move(q.front());
    q.pop_front();
    last_receive_attempts_ = 1;
    ++stats_.messages_received;
    return m;
  }
  const auto p = static_cast<std::size_t>(host);
  if (dead_[p] != 0) return std::nullopt;
  // Virtual-time mode (timeout 0): exactly one pull, a miss is the timer.
  // Real-timer mode: re-pull until the wall deadline expires.
  const bool single = options_.receive_timeout.count() == 0;
  const dist::wall_deadline deadline =
      single ? dist::wall_deadline::unbounded()
             : dist::wall_deadline::after(options_.receive_timeout);
  std::size_t attempts = 0;
  for (;;) {
    ++attempts;
    ++stats_.pulls;
    if (pulls_counter_ != nullptr) pulls_counter_->add(1);
    if (!post(host, pull_body(to, from))) return std::nullopt;
    const std::optional<std::vector<std::uint8_t>> frame = read_reply(p);
    if (!frame.has_value()) {
      mark_dead(p);
      return std::nullopt;
    }
    const std::vector<std::uint8_t>& body = *frame;
    if (body.size() < 2 ||
        body[0] != static_cast<std::uint8_t>(frame_op::reply)) {
      mark_dead(p);
      return std::nullopt;
    }
    if (body[1] != 0) {
      message m;
      try {
        m = decode(std::vector<std::uint8_t>(body.begin() + 2, body.end()));
      } catch (const invariant_error&) {
        mark_dead(p);
        return std::nullopt;
      }
      last_receive_attempts_ = attempts;
      ++stats_.messages_received;
      return m;
    }
    ++stats_.empty_pulls;
    if (single || deadline.expired()) return std::nullopt;
    std::this_thread::sleep_for(std::min<std::chrono::milliseconds>(
        options_.pull_interval, deadline.remaining()));
  }
}

void socket_link::retire_node(node_id id) {
  broadcast(retire_body(id));
  for (node_id other = 0; other < n_; ++other) {
    next_seq_[link_index(id, other)] = 1;
    next_seq_[link_index(other, id)] = 1;
    local_q_[link_index(id, other)].clear();
    local_q_[link_index(other, id)].clear();
  }
}

void socket_link::reset() {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(frame_op::reset));
  broadcast(body);
  std::fill(next_seq_.begin(), next_seq_.end(), 1);
  for (std::deque<message>& q : local_q_) q.clear();
  last_receive_attempts_ = 0;
}

std::size_t socket_link::live_peers() const {
  std::size_t live = 0;
  for (std::uint8_t d : dead_) {
    if (d == 0) ++live;
  }
  return live;
}

}  // namespace dolbie::net
