#include "net/channel.h"

namespace dolbie::net {

void channel::push(message m) {
  metrics_.messages_sent += 1;
  metrics_.bytes_sent += m.wire_size_bytes();
  queue_.push_back(std::move(m));
}

void channel::account_dropped(const message& m) {
  metrics_.messages_sent += 1;
  metrics_.bytes_sent += m.wire_size_bytes();
}

std::optional<message> channel::pop() {
  if (queue_.empty()) return std::nullopt;
  message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

}  // namespace dolbie::net
