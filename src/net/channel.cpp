#include "net/channel.h"

#include <utility>

namespace dolbie::net {

void channel::push(message m) { queue_.push_back(std::move(m)); }

void channel::push_before_tail(message m) {
  if (empty()) {
    queue_.push_back(std::move(m));
    return;
  }
  queue_.insert(queue_.end() - 1, std::move(m));
}

std::optional<message> channel::pop() {
  if (empty()) return std::nullopt;
  message m = std::move(queue_[head_++]);
  if (head_ == queue_.size()) {
    // Fully drained: rewind so the buffer is reused from the front.
    queue_.clear();
    head_ = 0;
  } else if (head_ >= 32 && head_ * 2 >= queue_.size()) {
    // Mixed push/pop traffic: compact once the consumed prefix dominates,
    // keeping the amortized cost O(1) per message and the footprint
    // proportional to the live backlog.
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return m;
}

void channel::release() {
  std::vector<message>().swap(queue_);
  head_ = 0;
}

}  // namespace dolbie::net
