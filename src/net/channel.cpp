#include "net/channel.h"

namespace dolbie::net {

void channel::push(message m) { queue_.push_back(std::move(m)); }

std::optional<message> channel::pop() {
  if (queue_.empty()) return std::nullopt;
  message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

}  // namespace dolbie::net
