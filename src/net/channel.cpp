#include "net/channel.h"

namespace dolbie::net {

void channel::push(message m) { queue_.push_back(std::move(m)); }

void channel::push_before_tail(message m) {
  if (queue_.empty()) {
    queue_.push_back(std::move(m));
    return;
  }
  queue_.insert(queue_.end() - 1, std::move(m));
}

std::optional<message> channel::pop() {
  if (queue_.empty()) return std::nullopt;
  message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

}  // namespace dolbie::net
