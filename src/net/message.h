// Wire-level message schema for the simulated network. Payloads are small
// vectors of scalars — exactly the quantities the paper's protocols
// exchange (local costs, step sizes, decisions, indicator flags) — so the
// byte accounting in `wire_size_bytes` reflects the claimed communication
// complexity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dolbie::net {

/// Identifier of a node in the simulated network.
using node_id = std::size_t;

/// Protocol message kinds (union of both DOLBIE protocol realizations).
enum class message_kind : std::uint8_t {
  local_cost,      ///< worker -> master: l_{i,t}                (Alg. 1 l.4)
  round_info,      ///< master -> worker: l_t, alpha_t, 1{i!=s}  (Alg. 1 l.12)
  decision,        ///< non-straggler -> master/straggler: x_{i,t+1}
  assignment,      ///< master -> straggler: x_{s,t+1}           (Alg. 1 l.15)
  cost_and_step,   ///< peer broadcast: l_{i,t}, alpha-bar_{i,t} (Alg. 2 l.4)
};

/// One in-flight message.
struct message {
  node_id from = 0;
  node_id to = 0;
  message_kind kind = message_kind::local_cost;
  std::vector<double> payload;

  /// Serialized size under the wire format of net/codec.h: a 12-byte
  /// header (kind, count, addressing) plus 8 bytes per scalar, matching
  /// the paper's "each of which is a scalar value".
  std::size_t wire_size_bytes() const {
    return 12 + 8 * payload.size();
  }
};

}  // namespace dolbie::net
