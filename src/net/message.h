// Wire-level message schema for the simulated network. Payloads are small
// vectors of scalars — exactly the quantities the paper's protocols
// exchange (local costs, step sizes, decisions, indicator flags) — so the
// byte accounting in `wire_size_bytes` reflects the claimed communication
// complexity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dolbie::net {

/// Identifier of a node in the simulated network.
using node_id = std::size_t;

/// Protocol message kinds (union of both DOLBIE protocol realizations).
enum class message_kind : std::uint8_t {
  local_cost,      ///< worker -> master: l_{i,t}                (Alg. 1 l.4)
  round_info,      ///< master -> worker: l_t, alpha_t, 1{i!=s}  (Alg. 1 l.12)
  decision,        ///< non-straggler -> master/straggler: x_{i,t+1}
  assignment,      ///< master -> straggler: x_{s,t+1}           (Alg. 1 l.15)
  cost_and_step,   ///< peer broadcast: l_{i,t}, alpha-bar_{i,t} (Alg. 2 l.4)
  shard_reduce,    ///< aggregator -> parent: shard summary {max, min, count}
  shard_broadcast, ///< aggregator -> child: round consensus {l_t, alpha_t}
};

/// One in-flight message.
struct message {
  /// Flag bit: this transmission is a retransmission by the reliable
  /// delivery layer (net/reliable.h). The receiver treats it exactly like
  /// the original; the bit exists so wire transcripts distinguish the two.
  static constexpr std::uint8_t kFlagRetransmit = 0x01;
  /// All flag bits the wire format knows; the codec rejects the rest.
  static constexpr std::uint8_t kKnownFlags = kFlagRetransmit;

  // `payload` stays the fourth member so aggregate initialization at the
  // protocol call sites ({from, to, kind, {scalars...}}) is unaffected by
  // the reliability fields below.
  node_id from = 0;
  node_id to = 0;
  message_kind kind = message_kind::local_cost;
  std::vector<double> payload;
  /// Per-link sequence number stamped by the reliable delivery layer
  /// (0 = unsequenced best-effort send, the zero-fault fast path).
  std::uint32_t seq = 0;
  /// Highest in-order sequence the sender has consumed from `to` on the
  /// reverse link — the piggybacked acknowledgement that lets a real
  /// deployment prune its retransmission buffer without dedicated ack
  /// frames (the simulation's pull-driven receive makes acks implicit).
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;

  /// Serialized size under the wire format of net/codec.h: a 20-byte
  /// header (kind, flags, count, addressing, seq, ack) plus 8 bytes per
  /// scalar, matching the paper's "each of which is a scalar value".
  std::size_t wire_size_bytes() const {
    return 20 + 8 * payload.size();
  }
};

}  // namespace dolbie::net
