#include "net/reliable.h"

#include <algorithm>

#include "common/error.h"
#include "common/snapshot.h"
#include "net/codec.h"
#include "obs/trace.h"

namespace dolbie::net {

reliable_link::reliable_link(network& net, reliable_options options)
    : net_(net), options_(options), links_(net.link_count()) {
  DOLBIE_REQUIRE(options_.retry_budget >= 1,
                 "retry budget must be at least 1");
}

void reliable_link::attach_tracer(obs::tracer* tracer, std::uint32_t lane) {
  tracer_ = tracer;
  trace_lane_ = lane;
}

void reliable_link::begin_round(std::uint64_t round) {
  round_ = round;
  for (std::size_t idx = 0; idx < links_.size(); ++idx) {
    const auto [from, to] = net_.link_endpoints(idx);
    if (from == to) continue;  // dense self-slot, never carries traffic
    link_state& link = links_[idx];
    // Sweep bytes still sitting in the channel: their round is over, so
    // releasing them now would feed a stale phase value into the new
    // round's state machine.
    while (net_.receive(to, from).has_value()) ++stats_.stale_purged;
    stats_.stale_purged += link.reorder.size();
    link.reorder.clear();
    link.outbox.clear();
    // The receiver gives up on anything unconsumed and resynchronizes
    // with the sender's counter.
    link.next_expected = link.next_seq;
  }
}

void reliable_link::send(message m) {
  link_state& link = state(m.from, m.to);
  m.seq = link.next_seq++;
  link.outbox.push_back({m, 0});
  net_.send(std::move(m));
}

void reliable_link::drain_transport(link_state& link, node_id to,
                                    node_id from) {
  while (auto m = net_.receive(to, from)) {
    if (m->seq < link.next_expected) {
      ++stats_.duplicates_discarded;
      continue;
    }
    const bool seen =
        std::any_of(link.reorder.begin(), link.reorder.end(),
                    [&](const message& r) { return r.seq == m->seq; });
    if (seen) {
      ++stats_.duplicates_discarded;
      continue;
    }
    link.reorder.push_back(std::move(*m));
  }
}

void reliable_link::prune_outbox(link_state& link) {
  // The outbox is FIFO by construction (seq stamped on push), so the
  // acknowledged messages form a prefix; one erase drops them all.
  auto it = link.outbox.begin();
  while (it != link.outbox.end() && it->msg.seq < link.next_expected) ++it;
  link.outbox.erase(link.outbox.begin(), it);
}

std::optional<message> reliable_link::receive(node_id to, node_id from) {
  link_state& link = state(from, to);
  last_receive_attempts_ = 0;
  for (;;) {
    drain_transport(link, to, from);
    // Release the next in-order message if it has arrived.
    for (auto it = link.reorder.begin(); it != link.reorder.end(); ++it) {
      if (it->seq == link.next_expected) {
        message out = std::move(*it);
        link.reorder.erase(it);
        last_receive_attempts_ = 1;
        for (const pending& p : link.outbox) {
          if (p.msg.seq == out.seq) {
            last_receive_attempts_ = p.attempts + 1;
            break;
          }
        }
        ++link.next_expected;
        prune_outbox(link);  // consumption is the implicit cumulative ack
        return out;
      }
    }
    // The expected sequence is missing. If the sender never produced it,
    // this is application-level absence (nothing was sent), not loss.
    pending* expected = nullptr;
    for (pending& p : link.outbox) {
      if (p.msg.seq == link.next_expected) {
        expected = &p;
        break;
      }
    }
    if (expected == nullptr) return std::nullopt;
    // Virtual timeout: the receiver polled and the message is not there.
    ++stats_.timeouts;
    if (expected->attempts >= options_.retry_budget) {
      ++stats_.deadlines_expired;
      if (tracer_ != nullptr) {
        tracer_->instant(
            trace_lane_, round_, "deadline_expired", "net",
            {obs::arg_int("from", from), obs::arg_int("to", to),
             obs::arg_int("seq", expected->msg.seq),
             obs::arg_int("attempts", expected->attempts + 1)});
      }
      // Abandon the message so later traffic on the link still flows.
      link.next_expected = expected->msg.seq + 1;
      prune_outbox(link);
      return std::nullopt;
    }
    ++expected->attempts;
    ++stats_.retransmits;
    if (tracer_ != nullptr) {
      tracer_->instant(trace_lane_, round_, "retransmit", "net",
                       {obs::arg_int("from", from), obs::arg_int("to", to),
                        obs::arg_int("seq", expected->msg.seq),
                        obs::arg_int("attempt", expected->attempts)});
    }
    message again = expected->msg;
    again.flags |= message::kFlagRetransmit;
    net_.send(std::move(again));
  }
}

void reliable_link::reset() {
  for (std::size_t idx = 0; idx < links_.size(); ++idx) {
    const auto [from, to] = net_.link_endpoints(idx);
    if (from == to) continue;
    while (net_.receive(to, from).has_value()) {
    }
  }
  links_.assign(links_.size(), {});
  stats_ = {};
  round_ = 0;
}

void reliable_link::snapshot_to(snapshot_writer& w) const {
  w.u64(links_.size());
  for (const link_state& link : links_) {
    w.u32(link.next_seq);
    w.u32(link.next_expected);
    w.u64(link.outbox.size());
    for (const pending& p : link.outbox) {
      encode_into(p.msg, w);
      w.u64(p.attempts);
    }
    w.u64(link.reorder.size());
    for (const message& m : link.reorder) encode_into(m, w);
  }
  w.u64(stats_.retransmits);
  w.u64(stats_.timeouts);
  w.u64(stats_.deadlines_expired);
  w.u64(stats_.duplicates_discarded);
  w.u64(stats_.stale_purged);
  w.u64(round_);
}

void reliable_link::restore_from(snapshot_reader& r) {
  const std::uint64_t link_count = r.u64();
  DOLBIE_REQUIRE(link_count == links_.size(),
                 "reliable snapshot has " << link_count
                                          << " links, this topology has "
                                          << links_.size());
  for (link_state& link : links_) {
    link = {};
    link.next_seq = r.u32();
    link.next_expected = r.u32();
    const std::uint64_t outbox = r.u64();
    r.require_count(outbox, 32);
    link.outbox.reserve(outbox);
    for (std::uint64_t i = 0; i < outbox; ++i) {
      pending p;
      p.msg = decode_from(r);
      p.attempts = static_cast<std::size_t>(r.u64());
      link.outbox.push_back(std::move(p));
    }
    const std::uint64_t reorder = r.u64();
    r.require_count(reorder, 24);
    link.reorder.reserve(reorder);
    for (std::uint64_t i = 0; i < reorder; ++i) {
      link.reorder.push_back(decode_from(r));
    }
  }
  stats_.retransmits = static_cast<std::size_t>(r.u64());
  stats_.timeouts = static_cast<std::size_t>(r.u64());
  stats_.deadlines_expired = static_cast<std::size_t>(r.u64());
  stats_.duplicates_discarded = static_cast<std::size_t>(r.u64());
  stats_.stale_purged = static_cast<std::size_t>(r.u64());
  round_ = r.u64();
}

void reliable_link::retire_node(node_id id) {
  for (std::size_t idx = 0; idx < links_.size(); ++idx) {
    const auto [from, to] = net_.link_endpoints(idx);
    if (from != id && to != id) continue;
    links_[idx] = {};
  }
  net_.retire_node(id);
}

}  // namespace dolbie::net
