// A point-to-point FIFO channel. Channels are the only way nodes exchange
// state in src/dist/, which keeps the protocol implementations honest about
// what information each node actually has. Traffic accounting lives in the
// owning network's obs::metrics_registry (per-peer counters), not here.
#pragma once

#include <deque>
#include <optional>

#include "net/message.h"

namespace dolbie::net {

/// FIFO message queue between one (sender, receiver) pair.
class channel {
 public:
  /// Enqueue a message.
  void push(message m);

  /// Enqueue a message *behind* the current tail (adjacent reorder): the
  /// fault plan's reorder toggle delivers a late message that overtakes
  /// nothing but is itself overtaken by the send right before it. Falls
  /// back to a plain push on an empty queue.
  void push_before_tail(message m);

  /// Pop the oldest message, or nullopt when empty.
  std::optional<message> pop();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  std::deque<message> queue_;
};

}  // namespace dolbie::net
