// A point-to-point FIFO channel. Channels are the only way nodes exchange
// state in src/dist/, which keeps the protocol implementations honest about
// what information each node actually has. Traffic accounting lives in the
// owning network's obs::metrics_registry (per-peer counters), not here.
//
// Storage is a vector with a consumed-prefix index rather than a deque: a
// libstdc++ deque preallocates a ~half-KiB block per instance, which at the
// hierarchical layer's scale (hundreds of thousands of channels across the
// shard networks) would dwarf the protocol state itself. An empty channel
// here owns no heap at all, and the steady-state push/pop cycle reuses one
// allocation.
#pragma once

#include <optional>
#include <vector>

#include "net/message.h"

namespace dolbie::net {

/// FIFO message queue between one (sender, receiver) pair.
class channel {
 public:
  /// Enqueue a message.
  void push(message m);

  /// Enqueue a message *behind* the current tail (adjacent reorder): the
  /// fault plan's reorder toggle delivers a late message that overtakes
  /// nothing but is itself overtaken by the send right before it. Falls
  /// back to a plain push on an empty queue.
  void push_before_tail(message m);

  /// Pop the oldest message, or nullopt when empty.
  std::optional<message> pop();

  /// Drop every pending message and release the backing storage. Used when
  /// a node is permanently retired: its links will never carry traffic
  /// again, so the capacity is reclaimed instead of cached.
  void release();

  bool empty() const { return head_ == queue_.size(); }
  std::size_t pending() const { return queue_.size() - head_; }

  /// The i-th pending message, oldest first (i < pending()). Read-only
  /// iteration for engine snapshots; delivery still goes through pop().
  const message& peek(std::size_t i) const { return queue_[head_ + i]; }

 private:
  std::vector<message> queue_;  // live region is [head_, queue_.size())
  std::size_t head_ = 0;        // messages consumed from the front
};

}  // namespace dolbie::net
