// A point-to-point FIFO channel with traffic accounting. Channels are the
// only way nodes exchange state in src/dist/, which keeps the protocol
// implementations honest about what information each node actually has.
#pragma once

#include <deque>
#include <optional>

#include "net/message.h"
#include "net/metrics.h"

namespace dolbie::net {

/// FIFO message queue between one (sender, receiver) pair.
class channel {
 public:
  /// Enqueue a message; counts towards the owning network's metrics.
  void push(message m);

  /// Account a message in the traffic metrics without delivering it (the
  /// network's fault-injection path: the sender paid, the receiver never
  /// sees it).
  void account_dropped(const message& m);

  /// Pop the oldest message, or nullopt when empty.
  std::optional<message> pop();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  const traffic_metrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_.reset(); }

 private:
  std::deque<message> queue_;
  traffic_metrics metrics_;
};

}  // namespace dolbie::net
