// Seeded, deterministic fault model for the simulated network.
//
// A `fault_plan` generalizes the one-shot `network::inject_drop` into a
// reproducible schedule of link faults and worker crashes:
//
//   * per-delivery-attempt drop probability (applies to retransmissions
//     too, so the residual loss after k retries is drop_rate^(k+1)),
//   * duplicate and reorder toggles (the reliable layer must absorb both),
//   * worker crash/recover windows in protocol rounds.
//
// All randomness is counter-based: a fault decision is a pure function of
// (seed, link, per-link attempt index), so outcomes are independent of
// thread count and of the order in which links are examined — the same
// determinism contract as rng::stream_seed. Re-running a plan over the
// same protocol execution reproduces the exact fault transcript.
//
// Crash semantics (what makes straggler failover reachable): a worker with
// crash_round == r participates in round r's *first* wire phase — it sends
// its local cost / broadcast, and its transport completes those transfers,
// retransmissions included — then performs no further protocol computation.
// From round r+1 until recover_round it is silent; a window that never
// recovers marks the worker permanently crashed, and the engines retire it
// through the shared churn math (core/churn.h) that backs
// dolbie_policy::remove_worker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"

namespace dolbie::net {

/// One crash window: the worker dies mid-round at `crash_round` and comes
/// back (state intact, holding its last committed share) at
/// `recover_round`. `kNever` marks a permanent crash.
struct crash_window {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  node_id node = 0;
  std::uint64_t crash_round = 0;
  std::uint64_t recover_round = kNever;
};

struct fault_plan {
  std::uint64_t seed = 0;
  /// Probability that one delivery attempt on a link is dropped.
  double drop_rate = 0.0;
  /// Probability that a delivered message is delivered twice.
  double duplicate_rate = 0.0;
  /// Probability that a delivered message is delivered *behind* the
  /// message already at the tail of the channel (adjacent swap).
  double reorder_rate = 0.0;
  std::vector<crash_window> crashes;
  /// Engage the reliable-delivery path even with every rate at zero —
  /// used by tests that inject faults directly via network::inject_drop.
  bool force = false;

  /// Whether any fault is configured. Engines stay on the exact pre-fault
  /// wire path (bit-identical output) when this is false.
  bool enabled() const {
    return force || drop_rate > 0.0 || duplicate_rate > 0.0 ||
           reorder_rate > 0.0 || !crashes.empty();
  }

  /// The worker dies mid-round at `round` (first wire phase only).
  bool crashed_during(node_id node, std::uint64_t round) const;

  /// The worker is silent for the whole of `round`.
  bool down(node_id node, std::uint64_t round) const;

  /// The worker is down at `round` and never recovers.
  bool permanently_down(node_id node, std::uint64_t round) const;

  /// Variants that ignore crash windows opening before `ignore_before`:
  /// when the shard layer's self-healing promotes a replacement host onto
  /// a tree-node id at round R (shard/reduction_tree.h), the windows that
  /// killed the old host stop applying to the new one — only windows with
  /// crash_round >= R still name this node. ignore_before == 0 is the
  /// plain predicate.
  bool crashed_during(node_id node, std::uint64_t round,
                      std::uint64_t ignore_before) const;
  bool down(node_id node, std::uint64_t round,
            std::uint64_t ignore_before) const;
  bool permanently_down(node_id node, std::uint64_t round,
                        std::uint64_t ignore_before) const;

  /// Deterministic per-attempt fault rolls. `attempt` is a per-link
  /// monotone counter maintained by the caller (network / async engines).
  bool roll_drop(node_id from, node_id to, std::uint64_t attempt) const;
  bool roll_duplicate(node_id from, node_id to, std::uint64_t attempt) const;
  bool roll_reorder(node_id from, node_id to, std::uint64_t attempt) const;
};

/// Parse a crash schedule of the form "node@round[-recover][,...]", e.g.
/// "3@50" (worker 3 crashes at round 50, permanently) or "3@50-80,5@100"
/// (worker 3 is down for rounds 50..79). Throws invariant_error on
/// malformed input; an empty string yields an empty schedule.
std::vector<crash_window> parse_crash_schedule(const std::string& spec);

/// Validate a crash schedule against a node universe of `n_nodes`: every
/// window's node id must be in range, and no two windows may share the
/// same (node, crash_round) pair — a node cannot die mid-round twice in
/// one round, and such duplicates are invariably schedule typos.
/// Overlapping windows with distinct crash rounds stay legal (the
/// predicates OR them). Throws invariant_error on violation.
void validate_crash_schedule(const std::vector<crash_window>& crashes,
                             std::size_t n_nodes);

}  // namespace dolbie::net
