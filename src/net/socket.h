// Thin RAII layer over POSIX TCP sockets: the only file in the tree that
// speaks to the kernel's network stack. Everything above it (framing,
// delivery semantics, the protocol state machines) is deterministic and
// testable without sockets; everything below is the operating system.
//
// Error taxonomy: environmental failures (connection refused, peer reset,
// write to a dead socket) throw `transport_error` — a runtime condition
// the caller degrades around, mirroring how a lost message degrades a
// round. Misuse of the API (writing on an invalid socket) stays
// invariant_error-loud through DOLBIE_REQUIRE like the rest of the tree.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dolbie::net {

/// Environmental transport failure: the peer or the network misbehaved.
/// Distinct from invariant_error (a bug in this process) — callers catch
/// transport_error to degrade, never invariant_error.
class transport_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of one bounded read attempt.
struct read_result {
  std::size_t bytes = 0;   ///< bytes placed in the buffer
  bool eof = false;        ///< peer closed its end cleanly
  bool timed_out = false;  ///< deadline passed with nothing readable
};

/// One connected TCP stream (RAII: the descriptor closes with the object).
/// Move-only; a moved-from socket is invalid.
class tcp_socket {
 public:
  tcp_socket() = default;
  explicit tcp_socket(int fd) : fd_(fd) {}
  ~tcp_socket();

  tcp_socket(const tcp_socket&) = delete;
  tcp_socket& operator=(const tcp_socket&) = delete;
  tcp_socket(tcp_socket&& other) noexcept;
  tcp_socket& operator=(tcp_socket&& other) noexcept;

  /// Connect to `host:port` (numeric IPv4, e.g. "127.0.0.1") with
  /// TCP_NODELAY set — the transport's frames are small request/response
  /// pairs, so Nagle batching would serialize every pull behind a delayed
  /// ack. Throws transport_error when the connection fails.
  static tcp_socket connect_to(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write the whole buffer, retrying short writes. Throws transport_error
  /// when the peer is gone (EPIPE/ECONNRESET/...).
  void write_all(const std::uint8_t* data, std::size_t size);

  /// Read up to `cap` bytes, waiting at most `timeout` for the socket to
  /// become readable (milliseconds::max() blocks indefinitely). Throws
  /// transport_error on socket errors; EOF and timeout are ordinary
  /// outcomes reported in the result.
  read_result read_some(std::uint8_t* buf, std::size_t cap,
                        std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// A listening TCP endpoint bound to 127.0.0.1 (the transport is a cluster
/// backplane, not an internet-facing service; binding wider is a
/// deployment decision this layer refuses to take implicitly).
class tcp_listener {
 public:
  /// Bind and listen; `port` 0 picks an ephemeral port (read it back with
  /// port()). Throws transport_error when the bind fails.
  explicit tcp_listener(std::uint16_t port);
  ~tcp_listener();

  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  /// Accept one connection, waiting at most `timeout`. Returns an invalid
  /// socket on timeout; throws transport_error on listener failure.
  tcp_socket accept(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect with retry until `deadline` — daemons race their peers' startup
/// on a real cluster, so a refused connection inside the window is normal.
/// Throws transport_error once the deadline passes.
tcp_socket connect_with_retry(const std::string& host, std::uint16_t port,
                              std::chrono::milliseconds deadline);

}  // namespace dolbie::net
