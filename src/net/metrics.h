// Traffic accounting for the simulated network, used to verify the
// Section IV-C complexity claims: O(N) messages per round for the
// master-worker protocol, O(N^2) for the fully-distributed one.
#pragma once

#include <cstddef>

namespace dolbie::net {

struct traffic_metrics {
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;

  void reset() { *this = {}; }
};

}  // namespace dolbie::net
