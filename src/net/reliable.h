// Reliable delivery over the lossy simulated network.
//
// `reliable_link` wraps a `network` with per-link sequence numbers, a
// retransmission buffer and bounded retransmit driven by deterministic
// "virtual time" timeouts: the simulation is pull-based, so the moment a
// receiver polls a link and finds the expected sequence missing *is* the
// sender's retransmission timer firing — no wall clock is consulted, which
// keeps fault runs bit-reproducible. Each poll-miss burns one unit of the
// message's retry budget; once the budget is exhausted the receiver
// declares the message lost (a `deadline_expired` trace instant) and the
// caller degrades the round instead of blocking forever.
//
// Duplicates (fault-plan duplication, or a retransmission racing the
// original) are discarded by sequence number; adjacent reordering is
// absorbed by a small buffer that releases messages strictly in order.
// Acknowledgements are implicit in the pull model — consuming seq k acks
// everything <= k, and the sender-side buffer is pruned on consumption;
// the wire format's `ack` field documents how a push-based deployment
// would piggyback the same information.
//
// Rounds are delivery epochs: `begin_round` purges in-flight and buffered
// state, because a phase message that missed its round is protocol-stale
// even if the bytes would eventually arrive. This is what bounds the
// buffer sizes and makes "recovered within budget / degraded past it" the
// only two outcomes a protocol engine has to handle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.h"

namespace dolbie::obs {
class tracer;
}  // namespace dolbie::obs

namespace dolbie::net {

struct reliable_options {
  /// Retransmissions allowed per message after the original send.
  std::size_t retry_budget = 5;
};

/// Cumulative transport-level accounting (since construction or reset).
struct reliable_stats {
  std::size_t retransmits = 0;           ///< re-sends triggered by timeouts
  std::size_t timeouts = 0;              ///< virtual timer expiries
  std::size_t deadlines_expired = 0;     ///< messages abandoned past budget
  std::size_t duplicates_discarded = 0;  ///< dropped by sequence check
  std::size_t stale_purged = 0;          ///< swept by begin_round
};

class reliable_link {
 public:
  explicit reliable_link(network& net, reliable_options options = {});

  /// Trace retransmit/deadline_expired instants on `lane` (see
  /// network::attach_tracer). Pass nullptr to detach.
  void attach_tracer(obs::tracer* tracer, std::uint32_t lane);

  /// Start a new delivery epoch: purge undelivered state from the previous
  /// round (channels, retransmission buffers, reorder buffers) and stamp
  /// subsequent trace events with `round`.
  void begin_round(std::uint64_t round);

  /// Stamp the next per-link sequence number and send, keeping a copy for
  /// retransmission until the receiver consumes (implicitly acks) it.
  void send(message m);

  /// Deliver the next in-order message from `from`, absorbing duplicates
  /// and reordering, retransmitting on (virtual) timeouts. Returns nullopt
  /// when nothing was sent on the link this round, or when the pending
  /// message exhausted its retry budget — the latter also skips past the
  /// abandoned sequence so later traffic on the link still flows.
  std::optional<message> receive(node_id to, node_id from);

  /// Transmissions the most recently receive()d message took (1 = the
  /// original send got through, k = k - 1 retransmissions first), or 0
  /// when that receive returned nullopt (nothing pending, or the retry
  /// budget expired). The asynchronous engines' timing models read this
  /// to price each delivery in virtual time.
  std::size_t last_receive_attempts() const { return last_receive_attempts_; }

  const reliable_stats& stats() const { return stats_; }

  /// Forget everything (sequence numbers included); the underlying
  /// network's channels are swept too.
  void reset();

  /// Reset the per-link state (sequence counters, retransmission and
  /// reorder buffers) of every link touching `id` and release the
  /// underlying channels. For permanently retired nodes — their links
  /// never carry traffic again. Accounting (`stats()`) is untouched.
  void retire_node(node_id id);

  /// Serialize the per-link sequencing / retransmission / reorder state,
  /// the cumulative stats and the round epoch for an engine snapshot. The
  /// wrapped network's channels are snapshotted separately by its owner.
  void snapshot_to(snapshot_writer& w) const;
  /// Restore state written by snapshot_to over an identically shaped
  /// network. Throws invariant_error on shape mismatch or corrupt bytes.
  void restore_from(snapshot_reader& r);

 private:
  struct pending {
    message msg;
    std::size_t attempts = 0;  // retransmissions so far
  };
  struct link_state {
    std::uint32_t next_seq = 1;       // sender side: next seq to stamp
    std::uint32_t next_expected = 1;  // receiver side: next seq to release
    std::vector<pending> outbox;      // sent, not yet consumed (FIFO)
    std::vector<message> reorder;     // arrived out of order
  };

  // Per-link state is indexed through the network's topology (one slot per
  // channel), so a star or sparse network costs O(links), not O(n^2).
  link_state& state(node_id from, node_id to) {
    return links_[net_.link_index(from, to)];
  }
  void drain_transport(link_state& link, node_id to, node_id from);
  void prune_outbox(link_state& link);

  network& net_;
  reliable_options options_;
  std::vector<link_state> links_;
  reliable_stats stats_;
  std::size_t last_receive_attempts_ = 0;
  obs::tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace dolbie::net
