// Byte-level wire format for protocol messages.
//
// The simulated network moves `message` structs directly; this codec pins
// down what those messages would look like on a real wire, so the byte
// accounting in the network's metrics registry is backed by an actual
// serialization and a deployment could swap the in-memory transport for
// sockets without touching the protocol state machines.
//
// Layout (little-endian):
//   u8   kind
//   u8   flags           (message::kKnownFlags; others rejected)
//   u16  payload count
//   u32  from            (node id, truncated - networks are small)
//   u32  to
//   u32  seq             (reliable-delivery sequence number, 0 = none)
//   u32  ack             (piggybacked cumulative ack, 0 = none)
//   f64  payload[count]
//
// The 20-byte `wire_size_bytes` header estimate in message.h corresponds
// exactly to this header; `encoded_size` reports the exact total.
//
// decode() treats the wire as hostile: truncated or oversized buffers,
// unknown kinds or flag bits, payload counts beyond kMaxPayloadScalars and
// non-finite scalars all throw invariant_error instead of handing garbage
// to a protocol state machine. The protocols only ever exchange finite
// quantities (costs, step sizes, simplex coordinates), so a NaN or
// infinity on the wire is unambiguously corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/snapshot.h"
#include "net/message.h"

namespace dolbie::net {

/// Largest payload the wire format accepts. Protocol messages carry at
/// most 3 scalars; the cap leaves generous headroom while bounding what a
/// corrupted count field can make a receiver allocate.
constexpr std::size_t kMaxPayloadScalars = 1024;

/// Exact encoded size of a message in bytes.
std::size_t encoded_size(const message& m);

/// Serialize a message to bytes. Throws invariant_error when the payload
/// exceeds kMaxPayloadScalars or carries non-finite scalars, when node ids
/// exceed 32 bits, or when unknown flag bits are set.
std::vector<std::uint8_t> encode(const message& m);

/// Deserialize. Throws invariant_error on malformed input: short or
/// trailing bytes, unknown kind or flag bits, oversized payload count,
/// non-finite payload scalars.
message decode(const std::vector<std::uint8_t>& bytes);

/// Length-prefixed embedding of a message inside an engine snapshot
/// (common/snapshot.h): u32 byte count, then the encode() bytes. Restores
/// through decode(), so in-flight messages inherit the wire format's full
/// hostile-input validation.
void encode_into(const message& m, snapshot_writer& w);
message decode_from(snapshot_reader& r);

// ---------------------------------------------------------------------------
// Length-prefixed framing for byte streams (TCP).
//
// A stream carries frames: a u32 little-endian body length followed by the
// body bytes. The body is opaque at this layer — the socket transport puts
// a one-byte opcode plus an encode()d message or control payload inside.
// The framing layer owns exactly one problem: reassembling whole frames
// from the arbitrary fragments a socket hands back, and refusing hostile
// prefixes (zero-length, oversized, truncated) loudly instead of letting a
// corrupt length field drive an allocation or a blocked read.
// ---------------------------------------------------------------------------

/// Largest frame body the stream format accepts. Generously above the
/// biggest legal wire message (20-byte header + 8 * kMaxPayloadScalars)
/// plus framing overhead, while bounding what a corrupted length prefix
/// can make a receiver buffer.
constexpr std::size_t kMaxFrameBytes = 64 * 1024;

/// Append one frame (u32 length prefix + body) to `out`. Throws
/// invariant_error when `body` is empty or exceeds kMaxFrameBytes — every
/// legal frame carries at least an opcode byte.
void append_frame(std::vector<std::uint8_t>& out,
                  const std::uint8_t* body, std::size_t size);
inline void append_frame(std::vector<std::uint8_t>& out,
                         const std::vector<std::uint8_t>& body) {
  append_frame(out, body.data(), body.size());
}

/// Incremental frame reassembler: feed() socket fragments of any size, then
/// drain complete frames with next(). A hostile length prefix (zero or
/// above kMaxFrameBytes) throws invariant_error the moment the four prefix
/// bytes are in — before any body bytes are buffered. finish() asserts the
/// stream ended on a frame boundary; a dangling partial frame means the
/// peer died mid-write and throws.
class frame_parser {
 public:
  /// Buffer `size` raw stream bytes. Validates any length prefix that
  /// becomes complete; throws invariant_error on a hostile prefix.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extract the next complete frame body, or empty when more bytes are
  /// needed. Call in a loop — one feed() may complete several frames.
  std::optional<std::vector<std::uint8_t>> next();

  /// Bytes buffered toward an incomplete frame (0 = on a boundary).
  std::size_t buffered() const { return buffer_.size(); }

  /// Declare end-of-stream. Throws invariant_error when bytes of a partial
  /// frame are still buffered (truncated stream).
  void finish() const;

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace dolbie::net
