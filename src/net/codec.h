// Byte-level wire format for protocol messages.
//
// The simulated network moves `message` structs directly; this codec pins
// down what those messages would look like on a real wire, so the byte
// accounting in the network's metrics registry is backed by an actual
// serialization and a deployment could swap the in-memory transport for
// sockets without touching the protocol state machines.
//
// Layout (little-endian):
//   u8   kind
//   u8   flags           (message::kKnownFlags; others rejected)
//   u16  payload count
//   u32  from            (node id, truncated - networks are small)
//   u32  to
//   u32  seq             (reliable-delivery sequence number, 0 = none)
//   u32  ack             (piggybacked cumulative ack, 0 = none)
//   f64  payload[count]
//
// The 20-byte `wire_size_bytes` header estimate in message.h corresponds
// exactly to this header; `encoded_size` reports the exact total.
//
// decode() treats the wire as hostile: truncated or oversized buffers,
// unknown kinds or flag bits, payload counts beyond kMaxPayloadScalars and
// non-finite scalars all throw invariant_error instead of handing garbage
// to a protocol state machine. The protocols only ever exchange finite
// quantities (costs, step sizes, simplex coordinates), so a NaN or
// infinity on the wire is unambiguously corruption.
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot.h"
#include "net/message.h"

namespace dolbie::net {

/// Largest payload the wire format accepts. Protocol messages carry at
/// most 3 scalars; the cap leaves generous headroom while bounding what a
/// corrupted count field can make a receiver allocate.
constexpr std::size_t kMaxPayloadScalars = 1024;

/// Exact encoded size of a message in bytes.
std::size_t encoded_size(const message& m);

/// Serialize a message to bytes. Throws invariant_error when the payload
/// exceeds kMaxPayloadScalars or carries non-finite scalars, when node ids
/// exceed 32 bits, or when unknown flag bits are set.
std::vector<std::uint8_t> encode(const message& m);

/// Deserialize. Throws invariant_error on malformed input: short or
/// trailing bytes, unknown kind or flag bits, oversized payload count,
/// non-finite payload scalars.
message decode(const std::vector<std::uint8_t>& bytes);

/// Length-prefixed embedding of a message inside an engine snapshot
/// (common/snapshot.h): u32 byte count, then the encode() bytes. Restores
/// through decode(), so in-flight messages inherit the wire format's full
/// hostile-input validation.
void encode_into(const message& m, snapshot_writer& w);
message decode_from(snapshot_reader& r);

}  // namespace dolbie::net
