// Byte-level wire format for protocol messages.
//
// The simulated network moves `message` structs directly; this codec pins
// down what those messages would look like on a real wire, so the byte
// accounting in the network's metrics registry is backed by an actual
// serialization and a deployment could swap the in-memory transport for
// sockets without touching the protocol state machines.
//
// Layout (little-endian):
//   u8   kind
//   u8   reserved (0)
//   u16  payload count
//   u32  from            (node id, truncated - networks are small)
//   u32  to
//   f64  payload[count]
//
// The 8-byte `wire_size_bytes` header estimate in message.h corresponds to
// kind+count+addressing; `encoded_size` reports the exact figure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"

namespace dolbie::net {

/// Exact encoded size of a message in bytes.
std::size_t encoded_size(const message& m);

/// Serialize a message to bytes. Throws when the payload exceeds the
/// format's 16-bit count or node ids exceed 32 bits.
std::vector<std::uint8_t> encode(const message& m);

/// Deserialize; returns nullopt on malformed input (short buffer, trailing
/// bytes, unknown kind). Never throws on bad input — a real receiver must
/// treat the wire as untrusted.
std::optional<message> decode(const std::vector<std::uint8_t>& bytes);

}  // namespace dolbie::net
