#include "net/fault_plan.h"

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::net {
namespace {

// Domain-separation salts so the drop/duplicate/reorder decisions of the
// same attempt are independent draws.
constexpr std::uint64_t kDropSalt = 0x6c6f7373ULL;       // "loss"
constexpr std::uint64_t kDuplicateSalt = 0x64757065ULL;  // "dupe"
constexpr std::uint64_t kReorderSalt = 0x73776170ULL;    // "swap"

// Uniform [0, 1) as a pure function of (seed, salt, link, attempt) — the
// same SplitMix64 mix rng::stream_seed uses, chained so each input
// perturbs the whole word.
double unit_roll(std::uint64_t seed, std::uint64_t salt, node_id from,
                 node_id to, std::uint64_t attempt) {
  std::uint64_t h = rng::stream_seed(seed, salt);
  h = rng::stream_seed(h, (static_cast<std::uint64_t>(from) << 32) ^
                              static_cast<std::uint64_t>(to));
  h = rng::stream_seed(h, attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool fault_plan::crashed_during(node_id node, std::uint64_t round) const {
  return crashed_during(node, round, 0);
}

bool fault_plan::down(node_id node, std::uint64_t round) const {
  return down(node, round, 0);
}

bool fault_plan::permanently_down(node_id node, std::uint64_t round) const {
  return permanently_down(node, round, 0);
}

bool fault_plan::crashed_during(node_id node, std::uint64_t round,
                                std::uint64_t ignore_before) const {
  for (const crash_window& w : crashes) {
    if (w.node == node && w.crash_round >= ignore_before &&
        w.crash_round == round) {
      return true;
    }
  }
  return false;
}

bool fault_plan::down(node_id node, std::uint64_t round,
                      std::uint64_t ignore_before) const {
  for (const crash_window& w : crashes) {
    if (w.node == node && w.crash_round >= ignore_before &&
        w.crash_round < round && round < w.recover_round) {
      return true;
    }
  }
  return false;
}

bool fault_plan::permanently_down(node_id node, std::uint64_t round,
                                  std::uint64_t ignore_before) const {
  for (const crash_window& w : crashes) {
    if (w.node == node && w.crash_round >= ignore_before &&
        w.recover_round == crash_window::kNever && w.crash_round < round) {
      return true;
    }
  }
  return false;
}

bool fault_plan::roll_drop(node_id from, node_id to,
                           std::uint64_t attempt) const {
  return drop_rate > 0.0 &&
         unit_roll(seed, kDropSalt, from, to, attempt) < drop_rate;
}

bool fault_plan::roll_duplicate(node_id from, node_id to,
                                std::uint64_t attempt) const {
  return duplicate_rate > 0.0 &&
         unit_roll(seed, kDuplicateSalt, from, to, attempt) < duplicate_rate;
}

bool fault_plan::roll_reorder(node_id from, node_id to,
                              std::uint64_t attempt) const {
  return reorder_rate > 0.0 &&
         unit_roll(seed, kReorderSalt, from, to, attempt) < reorder_rate;
}

std::vector<crash_window> parse_crash_schedule(const std::string& spec) {
  std::vector<crash_window> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    DOLBIE_REQUIRE(at != std::string::npos && at > 0 && at + 1 < token.size(),
                   "malformed crash schedule entry '"
                       << token << "' (expected node@round[-recover])");
    crash_window w;
    std::size_t parsed = 0;
    try {
      w.node = std::stoull(token.substr(0, at));
      const std::string rounds = token.substr(at + 1);
      w.crash_round = std::stoull(rounds, &parsed);
      if (parsed < rounds.size()) {
        DOLBIE_REQUIRE(rounds[parsed] == '-',
                       "malformed crash schedule entry '" << token << "'");
        w.recover_round = std::stoull(rounds.substr(parsed + 1));
      }
    } catch (const invariant_error&) {
      throw;
    } catch (const std::exception&) {
      DOLBIE_REQUIRE(false, "malformed crash schedule entry '" << token
                                                               << "'");
    }
    DOLBIE_REQUIRE(w.recover_round > w.crash_round,
                   "crash window for worker "
                       << w.node << " recovers at round " << w.recover_round
                       << " but crashes at round " << w.crash_round);
    out.push_back(w);
  }
  return out;
}

void validate_crash_schedule(const std::vector<crash_window>& crashes,
                             std::size_t n_nodes) {
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const crash_window& w = crashes[i];
    DOLBIE_REQUIRE(w.node < n_nodes, "crash schedule names node "
                                         << w.node << " but only " << n_nodes
                                         << " nodes exist");
    for (std::size_t j = 0; j < i; ++j) {
      DOLBIE_REQUIRE(
          crashes[j].node != w.node || crashes[j].crash_round != w.crash_round,
          "duplicate crash window: node " << w.node << " crashes at round "
                                          << w.crash_round << " twice");
    }
  }
}

}  // namespace dolbie::net
