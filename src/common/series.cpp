#include "common/series.h"

#include <algorithm>

#include "common/error.h"

namespace dolbie {

double series::front() const {
  DOLBIE_REQUIRE(!values_.empty(), "front() of empty series '" << name_ << "'");
  return values_.front();
}

double series::back() const {
  DOLBIE_REQUIRE(!values_.empty(), "back() of empty series '" << name_ << "'");
  return values_.back();
}

double series::total() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

std::vector<double> series::cumulative() const {
  std::vector<double> out;
  out.reserve(values_.size());
  double acc = 0.0;
  for (double v : values_) {
    acc += v;
    out.push_back(acc);
  }
  return out;
}

double series::min() const {
  DOLBIE_REQUIRE(!values_.empty(), "min() of empty series '" << name_ << "'");
  return *std::min_element(values_.begin(), values_.end());
}

double series::max() const {
  DOLBIE_REQUIRE(!values_.empty(), "max() of empty series '" << name_ << "'");
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace dolbie
