#include "common/snapshot.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace dolbie {
namespace {

void put(std::vector<std::uint8_t>& out, std::uint64_t v, std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double double_of(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void snapshot_writer::u8(std::uint8_t v) { put(bytes_, v, 1); }
void snapshot_writer::u16(std::uint16_t v) { put(bytes_, v, 2); }
void snapshot_writer::u32(std::uint32_t v) { put(bytes_, v, 4); }
void snapshot_writer::u64(std::uint64_t v) { put(bytes_, v, 8); }

void snapshot_writer::f64(double v) {
  DOLBIE_REQUIRE(std::isfinite(v), "snapshot scalar is not finite");
  put(bytes_, bits_of(v), 8);
}

void snapshot_writer::f64_or_inf(double v) {
  DOLBIE_REQUIRE(!std::isnan(v) &&
                     v != -std::numeric_limits<double>::infinity(),
                 "snapshot scalar is NaN or -inf");
  put(bytes_, bits_of(v), 8);
}

void snapshot_writer::raw(const std::uint8_t* data, std::size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

std::uint64_t snapshot_reader::take(std::size_t n) {
  DOLBIE_REQUIRE(n <= size_ - pos_, "snapshot truncated");
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < n; ++b) {
    v |= static_cast<std::uint64_t>(data_[pos_ + b]) << (8 * b);
  }
  pos_ += n;
  return v;
}

std::uint8_t snapshot_reader::u8() { return static_cast<std::uint8_t>(take(1)); }
std::uint16_t snapshot_reader::u16() {
  return static_cast<std::uint16_t>(take(2));
}
std::uint32_t snapshot_reader::u32() {
  return static_cast<std::uint32_t>(take(4));
}
std::uint64_t snapshot_reader::u64() { return take(8); }

double snapshot_reader::f64() {
  const double v = double_of(take(8));
  DOLBIE_REQUIRE(std::isfinite(v), "snapshot carries a non-finite scalar");
  return v;
}

double snapshot_reader::f64_or_inf() {
  const double v = double_of(take(8));
  DOLBIE_REQUIRE(!std::isnan(v) &&
                     v != -std::numeric_limits<double>::infinity(),
                 "snapshot carries a NaN or -inf scalar");
  return v;
}

const std::uint8_t* snapshot_reader::raw(std::size_t size) {
  DOLBIE_REQUIRE(size <= size_ - pos_, "snapshot truncated");
  const std::uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

void snapshot_reader::finish() const {
  DOLBIE_REQUIRE(pos_ == size_, "snapshot carries " << (size_ - pos_)
                                                    << " trailing bytes");
}

void snapshot_reader::require_count(std::uint64_t count,
                                    std::size_t min_bytes) const {
  DOLBIE_REQUIRE(count <= remaining() / (min_bytes == 0 ? 1 : min_bytes),
                 "snapshot count " << count
                                   << " exceeds what the remaining bytes "
                                      "could encode");
}

void write_snapshot_header(snapshot_writer& w, snapshot_kind kind,
                           std::uint64_t workers) {
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(workers);
}

void read_snapshot_header(snapshot_reader& r, snapshot_kind kind,
                          std::uint64_t workers) {
  const std::uint32_t magic = r.u32();
  DOLBIE_REQUIRE(magic == kSnapshotMagic,
                 "snapshot magic mismatch (got " << magic << ")");
  const std::uint16_t version = r.u16();
  DOLBIE_REQUIRE(version == kSnapshotVersion,
                 "snapshot version " << version << " unsupported (expected "
                                     << kSnapshotVersion << ")");
  const std::uint8_t k = r.u8();
  DOLBIE_REQUIRE(k == static_cast<std::uint8_t>(kind),
                 "snapshot engine kind " << static_cast<int>(k)
                                         << " does not match this engine");
  const std::uint64_t n = r.u64();
  DOLBIE_REQUIRE(n == workers, "snapshot was taken with "
                                   << n << " workers, this engine has "
                                   << workers);
}

}  // namespace dolbie
