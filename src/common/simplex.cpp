#include "common/simplex.h"

#include <cmath>

#include "common/error.h"

namespace dolbie {

bool on_simplex(std::span<const double> x, double tolerance) {
  if (x.empty()) return false;
  double total = 0.0;
  for (double v : x) {
    if (v < -tolerance || !std::isfinite(v)) return false;
    total += v;
  }
  return std::abs(total - 1.0) <= tolerance;
}

std::vector<double> uniform_point(std::size_t n) {
  DOLBIE_REQUIRE(n > 0, "uniform_point needs at least one coordinate");
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

std::vector<double> normalized(std::span<const double> x, double tolerance) {
  DOLBIE_REQUIRE(!x.empty(), "cannot normalize an empty vector");
  std::vector<double> out(x.begin(), x.end());
  double total = 0.0;
  for (double& v : out) {
    DOLBIE_REQUIRE(v >= -tolerance, "negative coordinate " << v);
    if (v < 0.0) v = 0.0;
    total += v;
  }
  DOLBIE_REQUIRE(total > 0.0, "vector sums to zero; nothing to normalize");
  for (double& v : out) v /= total;
  return out;
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  DOLBIE_REQUIRE(a.size() == b.size(), "size mismatch " << a.size() << " vs "
                                                        << b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double sum(std::span<const double> x) {
  double total = 0.0;
  for (double v : x) total += v;
  return total;
}

std::size_t argmax(std::span<const double> x) {
  DOLBIE_REQUIRE(!x.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

std::size_t argmin(std::span<const double> x) {
  DOLBIE_REQUIRE(!x.empty(), "argmin of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] < x[best]) best = i;
  }
  return best;
}

}  // namespace dolbie
