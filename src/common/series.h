// A per-round trace: a named sequence of scalar observations indexed by
// round. Used by the experiment harness to record latencies, batch sizes,
// step sizes, regret terms, etc., and by the reporters to print them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dolbie {

/// Named per-round scalar trace.
class series {
 public:
  series() = default;
  explicit series(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void push(double value) { values_.push_back(value); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](std::size_t i) const { return values_[i]; }
  std::span<const double> values() const { return values_; }

  double front() const;
  double back() const;

  /// Sum of all recorded values.
  double total() const;

  /// Running (prefix) sums: out[i] = sum of values [0..i].
  std::vector<double> cumulative() const;

  /// Element-wise minimum over the recorded values. Throws when empty.
  double min() const;
  /// Element-wise maximum over the recorded values. Throws when empty.
  double max() const;

 private:
  std::string name_;
  std::vector<double> values_;
};

}  // namespace dolbie
