// Monotone bisection search, the numeric workhorse behind Eq. (4) (maximum
// acceptable workload) and the OPT water-level solver.
//
// The search loops are header-inline function templates so the predicate is
// a concrete callable the compiler can inline — no std::function type
// erasure (and its potential heap allocation) on the per-round hot path.
// The historical std::function-typed overloads remain as thin wrappers for
// callers that already hold an erased callable.
#pragma once

#include <functional>

#include "common/error.h"

namespace dolbie {

/// Options controlling bisection termination.
struct bisect_options {
  double tolerance = 1e-12;  ///< absolute interval width at which to stop
  int max_iterations = 200;  ///< hard cap on halving steps
};

/// Largest x in [lo, hi] with pred(x) true, assuming pred is "true then
/// false" on [lo, hi] (i.e. {x : pred(x)} is a prefix interval).
///
/// Preconditions: lo <= hi and pred(lo) is true. Returns a point within
/// `options.tolerance` of the true boundary (from below, so the returned
/// point itself satisfies pred up to floating-point evaluation of pred).
template <class Pred>
double bisect_max_true(double lo, double hi, Pred&& pred,
                       const bisect_options& options = {}) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  DOLBIE_REQUIRE(pred(lo), "bisect_max_true requires pred(lo) to hold");
  if (pred(hi)) return hi;
  double good = lo;  // invariant: pred(good) holds
  double bad = hi;   // invariant: pred(bad) fails
  for (int it = 0; it < options.max_iterations && bad - good > options.tolerance;
       ++it) {
    const double mid = good + (bad - good) / 2.0;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

/// Root of an increasing function g on [lo, hi]: the x with g(x) ~= 0.
/// Preconditions: g(lo) <= 0 <= g(hi). Returns a point within tolerance of
/// the true root.
template <class Fn>
double bisect_root_increasing(double lo, double hi, Fn&& g,
                              const bisect_options& options = {}) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  const double glo = g(lo);
  const double ghi = g(hi);
  DOLBIE_REQUIRE(glo <= 0.0 && ghi >= 0.0,
                 "root not bracketed: g(lo)=" << glo << ", g(hi)=" << ghi);
  if (glo == 0.0) return lo;
  if (ghi == 0.0) return hi;
  double below = lo;  // invariant: g(below) <= 0
  double above = hi;  // invariant: g(above) >= 0
  for (int it = 0;
       it < options.max_iterations && above - below > options.tolerance; ++it) {
    const double mid = below + (above - below) / 2.0;
    const double gm = g(mid);
    if (gm == 0.0) return mid;
    if (gm < 0.0) {
      below = mid;
    } else {
      above = mid;
    }
  }
  // Return the conservative endpoint, not the bracket midpoint: g(below) <= 0
  // by invariant, while g(midpoint) may be positive — for the Eq. 4
  // max-acceptable-workload search that would admit an x with f(x) > l_t.
  return below;
}

/// Type-erased wrappers (same algorithm; kept for callers that already hold
/// a std::function). New hot-path code should pass the callable directly to
/// the templates above.
double bisect_max_true(double lo, double hi,
                       const std::function<bool(double)>& pred,
                       const bisect_options& options);

double bisect_root_increasing(double lo, double hi,
                              const std::function<double(double)>& g,
                              const bisect_options& options);

}  // namespace dolbie
