// Monotone bisection search, the numeric workhorse behind Eq. (4) (maximum
// acceptable workload) and the OPT water-level solver.
//
// The search loops are header-inline function templates so the predicate is
// a concrete callable the compiler can inline — no std::function type
// erasure (and its potential heap allocation) on the per-round hot path.
// The historical std::function-typed overloads remain as thin wrappers for
// callers that already hold an erased callable.
//
// `bisect_max_true_lanes` is the lock-step lane-parallel variant: K
// independent searches advance through one shared iteration loop with
// branch-free (select) interval updates, so a batch caller evaluates its
// predicate for all lanes at once over contiguous arrays. Each lane's probe
// sequence is exactly the scalar `bisect_max_true` sequence, so results are
// bit-identical to K scalar calls by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.h"

namespace dolbie {

/// Options controlling bisection termination.
struct bisect_options {
  double tolerance = 1e-12;  ///< absolute interval width at which to stop
  /// Relative interval width at which to stop: the search also terminates
  /// once the bracket is narrower than `relative_tolerance * max(|lo|,
  /// |hi|)`. Essential on wide brackets (the OPT water-level solver at
  /// large aggregate loads): an absolute tolerance below the ulp of the
  /// bracket endpoints can never be reached — the midpoint rounds onto an
  /// endpoint and the loop spins until max_iterations without converging
  /// further. 0 (the default) preserves the historical absolute-only stop.
  double relative_tolerance = 0.0;
  int max_iterations = 200;  ///< hard cap on halving steps
};

/// The interval width at which a bracket [lo, hi] counts as converged under
/// `options`: the larger of the absolute tolerance and the relative
/// tolerance scaled by the bracket magnitude.
inline double bisect_stop_width(double lo, double hi,
                                const bisect_options& options) {
  const double scale = std::max(std::abs(lo), std::abs(hi));
  return std::max(options.tolerance, options.relative_tolerance * scale);
}

/// Largest x in [lo, hi] with pred(x) true, assuming pred is "true then
/// false" on [lo, hi] (i.e. {x : pred(x)} is a prefix interval).
///
/// Preconditions: lo <= hi and pred(lo) is true. Returns a point within
/// the stop width of the true boundary (from below, so the returned
/// point itself satisfies pred up to floating-point evaluation of pred).
template <class Pred>
double bisect_max_true(double lo, double hi, Pred&& pred,
                       const bisect_options& options = {}) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  DOLBIE_REQUIRE(pred(lo), "bisect_max_true requires pred(lo) to hold");
  if (pred(hi)) return hi;
  double good = lo;  // invariant: pred(good) holds
  double bad = hi;   // invariant: pred(bad) fails
  for (int it = 0; it < options.max_iterations &&
                   bad - good > bisect_stop_width(good, bad, options);
       ++it) {
    const double mid = good + (bad - good) / 2.0;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

/// Root of an increasing function g on [lo, hi]: the x with g(x) ~= 0.
/// Preconditions: g(lo) <= 0 <= g(hi). Returns a point within the stop
/// width of the true root.
template <class Fn>
double bisect_root_increasing(double lo, double hi, Fn&& g,
                              const bisect_options& options = {}) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  const double glo = g(lo);
  const double ghi = g(hi);
  DOLBIE_REQUIRE(glo <= 0.0 && ghi >= 0.0,
                 "root not bracketed: g(lo)=" << glo << ", g(hi)=" << ghi);
  if (glo == 0.0) return lo;
  if (ghi == 0.0) return hi;
  double below = lo;  // invariant: g(below) <= 0
  double above = hi;  // invariant: g(above) >= 0
  for (int it = 0; it < options.max_iterations &&
                   above - below > bisect_stop_width(below, above, options);
       ++it) {
    const double mid = below + (above - below) / 2.0;
    const double gm = g(mid);
    if (gm == 0.0) return mid;
    if (gm < 0.0) {
      below = mid;
    } else {
      above = mid;
    }
  }
  // Return the conservative endpoint, not the bracket midpoint: g(below) <= 0
  // by invariant, while g(midpoint) may be positive — for the Eq. 4
  // max-acceptable-workload search that would admit an x with f(x) > l_t.
  return below;
}

/// Reusable per-lane working storage of `bisect_max_true_lanes`. Callers on
/// the allocation-free hot path keep one alive and hand it to every search;
/// `resize` is a no-op once the capacity is warm.
struct bisect_lane_scratch {
  std::vector<double> mid;
  std::vector<unsigned char> pred;
  std::vector<unsigned char> active;

  void resize(std::size_t lanes) {
    mid.resize(lanes);
    pred.resize(lanes);
    active.resize(lanes);
  }
};

/// Lock-step lane-parallel `bisect_max_true` over `lanes` independent
/// searches. On entry good[k]/bad[k] hold lane k's bracket with the usual
/// invariants (pred true at good[k], false at bad[k], good[k] <= bad[k] —
/// the caller resolves endpoint cases first, exactly like the scalar
/// wrapper's pred(lo)/pred(hi) checks). On return good[k] is lane k's
/// answer.
///
/// `pred` is invoked as pred(const double* mid, unsigned char* out) and must
/// write out[k] != 0 iff lane k's predicate holds at mid[k], for every lane
/// (converged lanes included — their probes are ignored, so the evaluation
/// must merely be side-effect free).
///
/// Bit-identity to the scalar loop holds by construction: a lane is updated
/// every shared iteration until its own bracket reaches the scalar stop
/// width, with the same `good + (bad - good) / 2.0` midpoint arithmetic, so
/// its probe sequence is exactly what `bisect_max_true` would have produced.
/// The interval updates are selects (no data-dependent branches), which is
/// what lets the surrounding batch evaluator run wide without the
/// per-iteration mispredict penalty of the scalar loop.
template <class BatchPred>
void bisect_max_true_lanes(std::size_t lanes, double* good, double* bad,
                           bisect_lane_scratch& scratch, BatchPred&& pred,
                           const bisect_options& options = {}) {
  if (lanes == 0) return;
  scratch.resize(lanes);
  double* mid = scratch.mid.data();
  unsigned char* take = scratch.pred.data();
  unsigned char* active = scratch.active.data();
  for (int it = 0; it < options.max_iterations; ++it) {
    unsigned any = 0;
    for (std::size_t k = 0; k < lanes; ++k) {
      const double width = bad[k] - good[k];
      const unsigned char act =
          width > bisect_stop_width(good[k], bad[k], options) ? 1 : 0;
      active[k] = act;
      any |= act;
      mid[k] = good[k] + width / 2.0;
    }
    if (any == 0) break;
    pred(mid, take);
    for (std::size_t k = 0; k < lanes; ++k) {
      const bool up = active[k] != 0 && take[k] != 0;
      const bool down = active[k] != 0 && take[k] == 0;
      good[k] = up ? mid[k] : good[k];
      bad[k] = down ? mid[k] : bad[k];
    }
  }
}

/// Type-erased wrappers (same algorithm; kept for callers that already hold
/// a std::function). New hot-path code should pass the callable directly to
/// the templates above.
double bisect_max_true(double lo, double hi,
                       const std::function<bool(double)>& pred,
                       const bisect_options& options);

double bisect_root_increasing(double lo, double hi,
                              const std::function<double(double)>& g,
                              const bisect_options& options);

}  // namespace dolbie
