// Monotone bisection search, the numeric workhorse behind Eq. (4) (maximum
// acceptable workload) and the OPT water-level solver.
#pragma once

#include <functional>

namespace dolbie {

/// Options controlling bisection termination.
struct bisect_options {
  double tolerance = 1e-12;  ///< absolute interval width at which to stop
  int max_iterations = 200;  ///< hard cap on halving steps
};

/// Largest x in [lo, hi] with pred(x) true, assuming pred is "true then
/// false" on [lo, hi] (i.e. {x : pred(x)} is a prefix interval).
///
/// Preconditions: lo <= hi and pred(lo) is true. Returns a point within
/// `options.tolerance` of the true boundary (from below, so the returned
/// point itself satisfies pred up to floating-point evaluation of pred).
double bisect_max_true(double lo, double hi,
                       const std::function<bool(double)>& pred,
                       const bisect_options& options = {});

/// Root of an increasing function g on [lo, hi]: the x with g(x) ~= 0.
/// Preconditions: g(lo) <= 0 <= g(hi). Returns a point within tolerance of
/// the true root.
double bisect_root_increasing(double lo, double hi,
                              const std::function<double(double)>& g,
                              const bisect_options& options = {});

}  // namespace dolbie
