// Versioned little-endian byte encoding for whole-engine checkpoints.
//
// Every stateful engine (the four flat dist engines, the hierarchical
// shard engine, and core::dolbie_policy) serializes its cross-round state
// through the writer below and restores it through the reader, so a
// process can be killed at any round boundary and resumed bit-identically
// from the bytes alone (tests/checkpoint_test.cpp). The format is the
// moral sibling of the wire codec in net/codec.h and inherits its
// hostility rule: snapshot bytes come from disk, and disks lie — decode
// treats truncated, oversized, version-mismatched or non-finite input as
// corruption and throws invariant_error instead of handing garbage to an
// engine.
//
// Layout conventions:
//   * all integers little-endian, fixed width (u8/u16/u32/u64);
//   * f64 as IEEE-754 bit patterns — finite-only by default; the
//     f64_or_inf variants admit +infinity for the one legitimate use
//     (an unset Eq. 7 carry cap) while still rejecting NaN and -inf;
//   * every snapshot opens with the common header (magic, version, the
//     producing engine's kind, its worker count) so bytes can never be
//     restored into the wrong engine shape;
//   * readers must consume every byte (finish()) — trailing bytes are
//     corruption, exactly like the wire codec's oversized buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dolbie {

/// Append-only little-endian encoder for snapshot bytes.
class snapshot_writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Finite scalars only (costs, shares, step sizes) — a non-finite value
  /// in engine state is a bug, caught at serialization time.
  void f64(double v);
  /// Admits +infinity (sentinel for "no cap yet"); NaN / -inf still throw.
  void f64_or_inf(double v);
  /// Append a raw, already-encoded byte run (length-prefixed by caller).
  void raw(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder over a snapshot byte buffer. Every accessor
/// throws invariant_error on truncation; f64 rejects non-finite values.
class snapshot_reader {
 public:
  snapshot_reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit snapshot_reader(const std::vector<std::uint8_t>& bytes)
      : snapshot_reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  double f64_or_inf();
  /// Consume `size` raw bytes (throws when fewer remain).
  const std::uint8_t* raw(std::size_t size);

  std::size_t remaining() const { return size_ - pos_; }
  /// Every byte must have been consumed; trailing bytes are corruption.
  void finish() const;
  /// Guard an element count read from the wire against the bytes that
  /// could possibly back it (each element costs >= `min_bytes`), bounding
  /// what a corrupted count field can make the caller allocate.
  void require_count(std::uint64_t count, std::size_t min_bytes) const;

 private:
  std::uint64_t take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// First bytes of every snapshot: "DLBS" little-endian.
inline constexpr std::uint32_t kSnapshotMagic = 0x53424C44u;
/// Bumped on any layout change; restore rejects every other version.
inline constexpr std::uint16_t kSnapshotVersion = 1;

/// Which engine produced a snapshot. Restore rejects a kind mismatch, so
/// e.g. FD bytes can never be poured into an MW engine.
enum class snapshot_kind : std::uint8_t {
  dolbie_policy = 0,
  master_worker = 1,
  fully_distributed = 2,
  async_master_worker = 3,
  async_fully_distributed = 4,
  hierarchical = 5,
  /// Harness-level container wrapping an engine snapshot plus the partial
  /// run accounting (exp/chaos kill/restore round-trip).
  chaos_checkpoint = 6,
};

/// Write the common header: magic, version, kind, worker count.
void write_snapshot_header(snapshot_writer& w, snapshot_kind kind,
                           std::uint64_t workers);

/// Validate the common header against the restoring engine's identity.
/// Throws invariant_error on bad magic, version mismatch, wrong kind or
/// wrong worker count.
void read_snapshot_header(snapshot_reader& r, snapshot_kind kind,
                          std::uint64_t workers);

}  // namespace dolbie
