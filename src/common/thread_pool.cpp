#include "common/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace dolbie {

namespace {

// The pool whose batch this thread is currently draining (nullptr outside
// a job). Backs the non-reentrancy assertion in parallel_for: a nested
// call would recurse unboundedly on the serial fast path and deadlock on a
// threaded pool (the inner batch can never start while the outer one holds
// `job`), so we fail loudly instead. Thread-local writes are two stores
// per claimed index — noise next to the jobs themselves.
thread_local const void* tl_draining_pool = nullptr;

struct draining_guard {
  const void* prev;
  explicit draining_guard(const void* pool) : prev(tl_draining_pool) {
    tl_draining_pool = pool;
  }
  ~draining_guard() { tl_draining_pool = prev; }
  draining_guard(const draining_guard&) = delete;
  draining_guard& operator=(const draining_guard&) = delete;
};

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DOLBIE_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

struct thread_pool::impl {
  std::mutex mu;
  std::condition_variable cv_work;  // workers wait here for a batch
  std::condition_variable cv_done;  // parallel_for waits here for drain

  // The current batch. `job` is non-null only while a batch is active.
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t next = 0;    // first unclaimed index
  std::size_t total = 0;   // one past the last index
  std::size_t active = 0;  // indices claimed but not yet finished
  std::exception_ptr error;
  bool stop = false;

  std::vector<std::thread> workers;

  // Claim and run indices until the batch is exhausted. Expects `lk` held.
  void drain(std::unique_lock<std::mutex>& lk) {
    while (job != nullptr && next < total) {
      const std::size_t i = next++;
      ++active;
      const auto* batch = job;
      lk.unlock();
      try {
        const draining_guard guard(this);
        (*batch)(i);
        lk.lock();
      } catch (...) {
        lk.lock();
        if (!error) error = std::current_exception();
        next = total;  // abandon unclaimed indices
      }
      --active;
    }
    if (next >= total && active == 0) cv_done.notify_all();
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv_work.wait(lk,
                   [&] { return stop || (job != nullptr && next < total); });
      if (stop) return;
      drain(lk);
    }
  }
};

thread_pool::thread_pool(std::size_t threads) : impl_(new impl) {
  if (threads == 0) threads = default_thread_count();
  impl_->workers.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

std::size_t thread_pool::size() const { return impl_->workers.size() + 1; }

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  DOLBIE_REQUIRE(tl_draining_pool != static_cast<const void*>(impl_.get()),
                 "thread_pool::parallel_for called from a job running on "
                 "the same pool (nested parallel_for is not supported)");
  if (impl_->workers.empty()) {
    // Serial fast path: no synchronization at all. The guard still marks
    // the thread as inside this pool so a nested call trips the assertion
    // above instead of recursing.
    const draining_guard guard(impl_.get());
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  std::unique_lock<std::mutex> lk(impl_->mu);
  DOLBIE_REQUIRE(impl_->job == nullptr,
                 "thread_pool::parallel_for is not reentrant");
  impl_->job = &job;
  impl_->next = 0;
  impl_->total = n;
  impl_->error = nullptr;
  impl_->cv_work.notify_all();
  impl_->drain(lk);  // the calling thread works too
  impl_->cv_done.wait(
      lk, [&] { return impl_->next >= impl_->total && impl_->active == 0; });
  impl_->job = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

}  // namespace dolbie
