// Helpers for points on the probability simplex { x : sum x_i = 1, x >= 0 },
// the feasible set of the online min-max load-balancing problem (Eq. 2-3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dolbie {

/// True when x lies on the probability simplex within `tolerance` (sum within
/// tolerance of 1 and each coordinate >= -tolerance).
bool on_simplex(std::span<const double> x, double tolerance = 1e-9);

/// The uniform simplex point (1/n, ..., 1/n). Throws on n == 0.
std::vector<double> uniform_point(std::size_t n);

/// Rescale a non-negative vector to sum exactly to 1. Throws when the sum is
/// not positive or any coordinate is negative beyond tolerance. Coordinates
/// within tolerance below zero are clamped to 0 before rescaling.
std::vector<double> normalized(std::span<const double> x,
                               double tolerance = 1e-9);

/// Euclidean (L2) distance between two equal-length vectors.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Sum of coordinates.
double sum(std::span<const double> x);

/// Index of the maximum element; ties broken towards the smallest index
/// (the paper's "worker that ranks higher in the worker list"). Throws on
/// empty input.
std::size_t argmax(std::span<const double> x);

/// Index of the minimum element; ties broken towards the smallest index.
std::size_t argmin(std::span<const double> x);

}  // namespace dolbie
