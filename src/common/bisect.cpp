#include "common/bisect.h"

namespace dolbie {

// Type-erased wrappers around the header-inline templates, for callers that
// already hold a std::function. The template overloads are preferred by
// overload resolution whenever the callable is a lambda or function object.

double bisect_max_true(double lo, double hi,
                       const std::function<bool(double)>& pred,
                       const bisect_options& options) {
  return bisect_max_true<const std::function<bool(double)>&>(lo, hi, pred,
                                                             options);
}

double bisect_root_increasing(double lo, double hi,
                              const std::function<double(double)>& g,
                              const bisect_options& options) {
  return bisect_root_increasing<const std::function<double(double)>&>(
      lo, hi, g, options);
}

}  // namespace dolbie
