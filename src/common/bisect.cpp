#include "common/bisect.h"

#include "common/error.h"

namespace dolbie {

double bisect_max_true(double lo, double hi,
                       const std::function<bool(double)>& pred,
                       const bisect_options& options) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  DOLBIE_REQUIRE(pred(lo), "bisect_max_true requires pred(lo) to hold");
  if (pred(hi)) return hi;
  double good = lo;  // invariant: pred(good) holds
  double bad = hi;   // invariant: pred(bad) fails
  for (int it = 0; it < options.max_iterations && bad - good > options.tolerance;
       ++it) {
    const double mid = good + (bad - good) / 2.0;
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

double bisect_root_increasing(double lo, double hi,
                              const std::function<double(double)>& g,
                              const bisect_options& options) {
  DOLBIE_REQUIRE(lo <= hi, "bisect interval inverted: [" << lo << ", " << hi
                                                         << "]");
  const double glo = g(lo);
  const double ghi = g(hi);
  DOLBIE_REQUIRE(glo <= 0.0 && ghi >= 0.0,
                 "root not bracketed: g(lo)=" << glo << ", g(hi)=" << ghi);
  if (glo == 0.0) return lo;
  if (ghi == 0.0) return hi;
  double below = lo;  // invariant: g(below) <= 0
  double above = hi;  // invariant: g(above) >= 0
  for (int it = 0;
       it < options.max_iterations && above - below > options.tolerance; ++it) {
    const double mid = below + (above - below) / 2.0;
    const double gm = g(mid);
    if (gm == 0.0) return mid;
    if (gm < 0.0) {
      below = mid;
    } else {
      above = mid;
    }
  }
  // Return the conservative endpoint, not the bracket midpoint: g(below) <= 0
  // by invariant, while g(midpoint) may be positive — for the Eq. 4
  // max-acceptable-workload search that would admit an x with f(x) > l_t.
  return below;
}

}  // namespace dolbie
