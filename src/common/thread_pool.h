// A small blocking thread-pool executor: the substrate behind every
// parallel experiment surface (exp::parallel_map, the sweep fan-outs and
// the ported bench targets).
//
// Design constraints, in order:
//   1. Determinism — the pool never touches the work itself; callers index
//      every job by an integer slot and derive all randomness from that
//      index, so results are bit-identical at any thread count.
//   2. Heavyweight jobs — each job is a whole training run or harness
//      trace (milliseconds to seconds), so a mutex-guarded index counter
//      is plenty; no lock-free machinery.
//   3. The calling thread participates, so a pool of size 1 runs the plain
//      serial loop with zero synchronization.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace dolbie {

/// Number of threads parallel surfaces use by default: the DOLBIE_THREADS
/// environment variable when set to a positive integer (the CI knob for
/// running the determinism suite at 1, 2 and 8 threads), otherwise
/// std::thread::hardware_concurrency(), never less than 1.
std::size_t default_thread_count();

/// Fixed-size pool of worker threads executing indexed parallel loops.
class thread_pool {
 public:
  /// `threads` = total concurrency including the calling thread; 0 selects
  /// default_thread_count(). A pool of size n spawns n-1 workers.
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total concurrency (workers + the calling thread).
  std::size_t size() const;

  /// Run job(i) once for every i in [0, n), distributed over the pool, and
  /// block until all complete. The calling thread executes jobs too. The
  /// first exception thrown by any job is rethrown here after the batch
  /// drains (remaining unclaimed indices are abandoned). Not reentrant:
  /// a job must not call parallel_for on the same pool — enforced by a
  /// thread-local in-pool flag, so a nested call throws invariant_error
  /// (on every path, including the serial fast path) instead of
  /// deadlocking. Nesting across *different* pools is fine; that is how
  /// an engine-owned pool runs inside an exp::parallel_map job.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& job);

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace dolbie
