// Deterministic random-number generation.
//
// All randomness in the library flows through `rng`, a thin seeded wrapper
// over std::mt19937_64, so every experiment is reproducible bit-for-bit from
// a single --seed. Sub-streams are derived with `fork`, which decorrelates
// child generators (e.g. one per worker) without sharing state.
//
// The variate transforms are written out explicitly rather than delegating
// to std::uniform_real_distribution / std::normal_distribution /
// std::bernoulli_distribution: the standard leaves those algorithms
// implementation-defined, so the same seed yields different streams under
// libstdc++ vs libc++ — silently breaking the bit-for-bit contract across
// toolchains. mt19937_64's raw output sequence, by contrast, is fully
// specified, and the transforms below are pure bit manipulation on top of
// it (uniform / uniform_int / bernoulli are exactly portable; gaussian is
// portable up to libm's log/cos rounding, the only remaining platform
// dependence). tests/rng_test.cpp pins golden outputs for a fixed seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace dolbie {

/// Seeded pseudo-random generator used throughout the library.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1): the engine's top 53 bits scaled by 2^-53,
  /// each representable multiple of 2^-53 equally likely. Consumes exactly
  /// one engine draw.
  double uniform01() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi) (returns lo when lo == hi). Consumes
  /// exactly one engine draw.
  double uniform(double lo, double hi) {
    const double v = lo + (hi - lo) * uniform01();
    // lo + (hi - lo) * u can round up to hi for u just below 1 when the
    // interval is narrow; pull such draws back inside the half-open range.
    return v < hi ? v : std::nextafter(hi, lo);
  }

  /// Uniform integer in [lo, hi] inclusive. Unbiased: draws are rejected
  /// until one lands in the largest multiple of the range size, so each
  /// value is exactly equally likely (consumes one draw almost always).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {  // full 64-bit range: every draw is in range
      return static_cast<std::int64_t>(engine_());
    }
    // threshold = 2^64 mod span, computed in 64-bit arithmetic.
    const std::uint64_t threshold = (0ULL - span) % span;
    std::uint64_t draw = engine_();
    while (draw < threshold) draw = engine_();
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     draw % span);
  }

  /// Gaussian with the given mean and standard deviation: Box-Muller,
  /// cosine branch only, so every call consumes exactly two engine draws
  /// (no pair caching — the draw count stays a simple function of the call
  /// count, which keeps forked streams aligned).
  double gaussian(double mean, double stddev) {
    // u1 in (0, 1] keeps log() finite; u2 in [0, 1).
    const double u1 =
        (static_cast<double>(engine_() >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;  // 2*pi
    return mean + stddev * (radius * std::cos(theta));
  }

  /// Bernoulli trial with success probability p. Consumes exactly one
  /// engine draw; p <= 0 never succeeds, p >= 1 always does.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derive an independent child generator. The stream index keeps children
  /// forked from the same parent distinct.
  rng fork(std::uint64_t stream) {
    // SplitMix64-style mix of a fresh draw with the stream index.
    return rng(mix(engine_(), stream));
  }

  /// Counter-based stream derivation: the same SplitMix64 mix fork() uses,
  /// but as a pure function of (seed, stream) with no generator state. This
  /// is what the parallel experiment surfaces use to hand run #i its own
  /// decorrelated seed — run i's stream depends only on (base seed, i), so
  /// results are bit-identical whether runs execute serially or across any
  /// number of threads, and 2-D fan-outs (grid point g, realization r) can
  /// nest it without additive-seed collisions.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
    return mix(seed, stream);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t base, std::uint64_t stream) {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace dolbie
