// Deterministic random-number generation.
//
// All randomness in the library flows through `rng`, a thin seeded wrapper
// over std::mt19937_64, so every experiment is reproducible bit-for-bit from
// a single --seed. Sub-streams are derived with `fork`, which decorrelates
// child generators (e.g. one per worker) without sharing state.
#pragma once

#include <cstdint>
#include <random>

namespace dolbie {

/// Seeded pseudo-random generator used throughout the library.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator. The stream index keeps children
  /// forked from the same parent distinct.
  rng fork(std::uint64_t stream) {
    // SplitMix64-style mix of a fresh draw with the stream index.
    return rng(mix(engine_(), stream));
  }

  /// Counter-based stream derivation: the same SplitMix64 mix fork() uses,
  /// but as a pure function of (seed, stream) with no generator state. This
  /// is what the parallel experiment surfaces use to hand run #i its own
  /// decorrelated seed — run i's stream depends only on (base seed, i), so
  /// results are bit-identical whether runs execute serially or across any
  /// number of threads, and 2-D fan-outs (grid point g, realization r) can
  /// nest it without additive-seed collisions.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
    return mix(seed, stream);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t base, std::uint64_t stream) {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace dolbie
