// Error-handling primitives shared by every dolbie subsystem.
//
// Construction-time misuse (empty worker sets, non-increasing cost functions,
// fractions outside [0, 1]) throws `invariant_error`; per-round hot-path
// updates are plain arithmetic and do not throw.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dolbie {

/// Thrown when a documented API precondition or internal invariant is broken.
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << expr << "` violated";
  if (!msg.empty()) os << ": " << msg;
  throw invariant_error(os.str());
}

}  // namespace detail
}  // namespace dolbie

/// Validate a documented precondition; throws dolbie::invariant_error with
/// location and message on failure. Use at API boundaries, not on hot paths.
#define DOLBIE_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream dolbie_require_os_;                                \
      dolbie_require_os_ << msg;                                            \
      ::dolbie::detail::throw_invariant(#expr, __FILE__, __LINE__,          \
                                        dolbie_require_os_.str());          \
    }                                                                       \
  } while (false)
