#include "stats/timing.h"

#include <algorithm>

#include "common/error.h"

namespace dolbie::stats {

void timing_registry::reserve_slots(std::size_t runs) {
  std::lock_guard<std::mutex> lk(mu_);
  if (runs > runs_.size()) runs_.resize(runs);
}

void timing_registry::record(std::size_t slot, run_timing timing) {
  std::lock_guard<std::mutex> lk(mu_);
  DOLBIE_REQUIRE(slot < runs_.size(),
                 "timing slot " << slot << " out of range (have "
                                << runs_.size() << ")");
  runs_[slot] = std::move(timing);
}

double timing_registry::total_wall_seconds() const {
  double total = 0.0;
  for (const run_timing& r : runs_) total += r.wall_seconds;
  return total;
}

double timing_registry::max_wall_seconds() const {
  double worst = 0.0;
  for (const run_timing& r : runs_) worst = std::max(worst, r.wall_seconds);
  return worst;
}

std::size_t timing_registry::total_rounds() const {
  std::size_t total = 0;
  for (const run_timing& r : runs_) total += r.rounds;
  return total;
}

std::vector<stage_timing> timing_registry::stage_totals() const {
  std::vector<stage_timing> totals;
  for (const run_timing& r : runs_) {
    for (const stage_timing& s : r.stages) {
      auto it = std::find_if(totals.begin(), totals.end(),
                             [&](const stage_timing& t) {
                               return t.name == s.name;
                             });
      if (it == totals.end()) {
        totals.push_back(s);
      } else {
        it->seconds += s.seconds;
      }
    }
  }
  return totals;
}

}  // namespace dolbie::stats
