// Percentile estimation (linear interpolation between order statistics),
// used by the Fig. 11 overhead box-plot style statistics.
#pragma once

#include <span>
#include <vector>

namespace dolbie::stats {

/// p-th percentile (p in [0, 100]) of `values` with linear interpolation
/// between closest ranks (the "linear" / type-7 method). Throws on empty
/// input or p outside [0, 100].
double percentile(std::span<const double> values, double p);

/// The five-number summary used for box plots.
struct five_number_summary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Five-number summary of `values`. Throws on empty input.
five_number_summary box_stats(std::span<const double> values);

}  // namespace dolbie::stats
