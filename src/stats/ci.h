// Student-t confidence intervals for the mean, as used by the paper's
// "95% CI over 100 realizations" figures (Figs. 4 and 5).
#pragma once

#include <cstddef>

#include "stats/summary.h"

namespace dolbie::stats {

/// A symmetric confidence interval around a sample mean.
struct confidence_interval {
  double mean = 0.0;
  double half_width = 0.0;  ///< margin of error; interval is mean +/- this
  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// Two-sided Student-t critical value t_{dof, 1 - alpha/2}. `confidence` is
/// the coverage (e.g. 0.95). Computed by bisection on the incomplete-beta
/// CDF, exact to ~1e-10; valid for dof >= 1.
double student_t_critical(std::size_t dof, double confidence);

/// Confidence interval for the mean from a summary. Requires count >= 2.
confidence_interval mean_confidence_interval(const summary& s,
                                             double confidence = 0.95);

}  // namespace dolbie::stats
