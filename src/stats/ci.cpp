#include "stats/ci.h"

#include <cmath>

#include "common/bisect.h"
#include "common/error.h"

namespace dolbie::stats {
namespace {

// Regularized incomplete beta function I_x(a, b) via the continued-fraction
// expansion (Lentz's method), the standard numerically stable evaluation.
double incomplete_beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-30;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * incomplete_beta_cf(a, b, x) / a;
  }
  return 1.0 - front * incomplete_beta_cf(b, a, 1.0 - x) / b;
}

// CDF of Student's t with `dof` degrees of freedom.
double student_t_cdf(double t, double dof) {
  const double x = dof / (dof + t * t);
  const double p = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

}  // namespace

double student_t_critical(std::size_t dof, double confidence) {
  DOLBIE_REQUIRE(dof >= 1, "Student-t needs dof >= 1");
  DOLBIE_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0, 1), got " << confidence);
  const double target = 1.0 - (1.0 - confidence) / 2.0;  // upper tail point
  const double d = static_cast<double>(dof);
  // The critical value is the root of CDF(t) - target, increasing in t.
  // 1e6 comfortably brackets any confidence below 1 - 1e-9 at dof >= 1.
  bisect_options opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 300;
  return bisect_root_increasing(
      0.0, 1e6, [&](double t) { return student_t_cdf(t, d) - target; }, opts);
}

confidence_interval mean_confidence_interval(const summary& s,
                                             double confidence) {
  DOLBIE_REQUIRE(s.count() >= 2,
                 "confidence interval needs at least two observations");
  const double tcrit = student_t_critical(s.count() - 1, confidence);
  const double sem = s.stddev() / std::sqrt(static_cast<double>(s.count()));
  return {s.mean(), tcrit * sem};
}

}  // namespace dolbie::stats
