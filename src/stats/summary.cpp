#include "stats/summary.h"

#include <cmath>

#include "common/error.h"

namespace dolbie::stats {

void summary::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void summary::merge(const summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double summary::mean() const {
  DOLBIE_REQUIRE(count_ > 0, "mean of empty summary");
  return mean_;
}

double summary::variance() const {
  DOLBIE_REQUIRE(count_ >= 2, "variance needs at least two observations");
  return m2_ / static_cast<double>(count_ - 1);
}

double summary::stddev() const { return std::sqrt(variance()); }

double summary::min() const {
  DOLBIE_REQUIRE(count_ > 0, "min of empty summary");
  return min_;
}

double summary::max() const {
  DOLBIE_REQUIRE(count_ > 0, "max of empty summary");
  return max_;
}

double summary::total() const {
  return mean_ * static_cast<double>(count_);
}

summary summarize(std::span<const double> values) {
  summary s;
  for (double v : values) s.add(v);
  return s;
}

}  // namespace dolbie::stats
