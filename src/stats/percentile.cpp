#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dolbie::stats {

double percentile(std::span<const double> values, double p) {
  DOLBIE_REQUIRE(!values.empty(), "percentile of empty range");
  DOLBIE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile " << p << " out of range");
  // A NaN breaks std::sort's strict weak ordering (undefined behavior, in
  // practice a silently garbled order), and infinities poison the rank
  // interpolation — chaos/latency series can produce both. Reject instead.
  for (std::size_t i = 0; i < values.size(); ++i) {
    DOLBIE_REQUIRE(std::isfinite(values[i]),
                   "percentile input [" << i << "] is not finite: "
                                        << values[i]);
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

five_number_summary box_stats(std::span<const double> values) {
  DOLBIE_REQUIRE(!values.empty(), "box_stats of empty range");
  for (std::size_t i = 0; i < values.size(); ++i) {
    DOLBIE_REQUIRE(std::isfinite(values[i]),
                   "box_stats input [" << i << "] is not finite: "
                                       << values[i]);
  }
  five_number_summary s;
  s.min = percentile(values, 0.0);
  s.q1 = percentile(values, 25.0);
  s.median = percentile(values, 50.0);
  s.q3 = percentile(values, 75.0);
  s.max = percentile(values, 100.0);
  return s;
}

}  // namespace dolbie::stats
