// Aggregation of per-round traces across independent realizations: the tool
// behind every "95% CI over 100 realizations" series in the evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/series.h"
#include "stats/ci.h"

namespace dolbie::stats {

/// Per-round mean and confidence half-width across realizations.
struct aggregated_series {
  std::string name;
  std::vector<double> mean;        ///< mean[r] over realizations at round r
  std::vector<double> half_width;  ///< CI half-width at round r
  std::size_t realizations = 0;
};

/// Aggregate equal-length realizations of the same trace into a per-round
/// mean with `confidence`-level Student-t intervals. Throws when the traces
/// are empty or have mismatched lengths.
aggregated_series aggregate(const std::vector<series>& realizations,
                            double confidence = 0.95);

}  // namespace dolbie::stats
