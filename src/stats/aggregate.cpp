#include "stats/aggregate.h"

#include "common/error.h"

namespace dolbie::stats {

aggregated_series aggregate(const std::vector<series>& realizations,
                            double confidence) {
  DOLBIE_REQUIRE(realizations.size() >= 2,
                 "aggregation needs at least two realizations, got "
                     << realizations.size());
  const std::size_t rounds = realizations.front().size();
  DOLBIE_REQUIRE(rounds > 0, "realizations are empty");
  for (const series& s : realizations) {
    DOLBIE_REQUIRE(s.size() == rounds,
                   "realization '" << s.name() << "' has " << s.size()
                                   << " rounds, expected " << rounds);
  }
  aggregated_series out;
  out.name = realizations.front().name();
  out.realizations = realizations.size();
  out.mean.reserve(rounds);
  out.half_width.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    summary s;
    for (const series& real : realizations) s.add(real[r]);
    const confidence_interval ci = mean_confidence_interval(s, confidence);
    out.mean.push_back(ci.mean);
    out.half_width.push_back(ci.half_width);
  }
  return out;
}

}  // namespace dolbie::stats
