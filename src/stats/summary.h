// Single-pass running summary statistics (Welford's algorithm): count, mean,
// (sample) variance, min, max. Used wherever a figure reports an average.
#pragma once

#include <cstddef>
#include <span>

namespace dolbie::stats {

/// Accumulates scalar observations and exposes their summary statistics.
class summary {
 public:
  void add(double value);
  void merge(const summary& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Mean of the observations. Throws when empty.
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Throws when count < 2.
  double variance() const;
  /// Square root of variance(). Throws when count < 2.
  double stddev() const;
  /// Smallest observation. Throws when empty.
  double min() const;
  /// Largest observation. Throws when empty.
  double max() const;
  /// Sum of all observations (count * mean, zero when empty).
  double total() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary over an existing range of values.
summary summarize(std::span<const double> values);

}  // namespace dolbie::stats
