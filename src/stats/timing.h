// Per-run wall-clock metrics for the parallel experiment surfaces: every
// fan-out (realization, grid point, harness run) records where its time
// went, into a slot addressed by its deterministic run index, so the
// resulting table is identical at any thread count even though completion
// order is not. exp::print_timings renders the registry; the ported bench
// targets print it under --timing.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace dolbie::stats {

/// One named stage of a run's wall time (e.g. "decision", "environment").
struct stage_timing {
  std::string name;
  double seconds = 0.0;
};

/// Wall-clock record of one experiment run (one realization / grid point).
struct run_timing {
  std::string label;          ///< e.g. "DOLBIE r3" or "N=40"
  double wall_seconds = 0.0;  ///< whole-run wall time on its thread
  std::size_t rounds = 0;     ///< online rounds played (0 when not roundful)
  std::vector<stage_timing> stages;  ///< optional breakdown, sums <= wall

  double rounds_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(rounds) / wall_seconds
               : 0.0;
  }
};

/// Thread-safe, slot-addressed collector of run_timing records. Slots are
/// fixed up front (one per run index) so concurrent recording needs no
/// ordering and the final table is deterministic.
class timing_registry {
 public:
  timing_registry() = default;
  explicit timing_registry(std::size_t runs) : runs_(runs) {}

  /// Grow to at least `runs` slots (never shrinks; existing records kept).
  void reserve_slots(std::size_t runs);

  /// Store `timing` into `slot`. Thread-safe; last write wins.
  void record(std::size_t slot, run_timing timing);

  /// All slots in index order. Not synchronized: call after the fan-out
  /// producing the records has joined.
  const std::vector<run_timing>& runs() const { return runs_; }

  /// Sum of per-run wall times — the serial critical path. Divided by the
  /// observed elapsed time this yields the realized parallel speedup.
  double total_wall_seconds() const;

  /// The slowest single run — the lower bound on parallel elapsed time.
  double max_wall_seconds() const;

  /// Total rounds across runs.
  std::size_t total_rounds() const;

  /// Per-stage totals summed across runs, in first-seen stage order.
  std::vector<stage_timing> stage_totals() const;

 private:
  mutable std::mutex mu_;
  std::vector<run_timing> runs_;
};

}  // namespace dolbie::stats
