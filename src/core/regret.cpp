#include "core/regret.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simplex.h"
#include "core/policy.h"

namespace dolbie::core {

void regret_tracker::record(double algorithm_cost, double optimal_cost,
                            const allocation& optimal_point) {
  DOLBIE_REQUIRE(!optimal_point.empty(), "optimal point is empty");
  ++rounds_;
  algorithm_total_ += algorithm_cost;
  optimal_total_ += optimal_cost;
  per_round_gap_.push_back(algorithm_cost - optimal_cost);
  if (!previous_optimal_.empty()) {
    path_length_ += l2_distance(previous_optimal_, optimal_point);
  }
  previous_optimal_ = optimal_point;
}

double theorem1_bound(double lipschitz, std::size_t n_workers,
                      std::span<const double> step_sizes, double path_length) {
  DOLBIE_REQUIRE(lipschitz >= 0.0, "Lipschitz constant must be >= 0");
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(!step_sizes.empty(), "need at least one step size");
  const double T = static_cast<double>(step_sizes.size());
  const double N = static_cast<double>(n_workers);
  const double alpha_T = step_sizes.back();
  DOLBIE_REQUIRE(alpha_T > 0.0,
                 "Theorem 1 bound needs alpha_T > 0, got " << alpha_T);
  double alpha_sum_term = 0.0;
  for (double a : step_sizes) {
    alpha_sum_term += ((N - 1.0) / 2.0 + N * a) / 2.0;
  }
  const double inner =
      1.0 / alpha_T + path_length / alpha_T + alpha_sum_term;
  return std::sqrt(T * lipschitz * lipschitz * inner);
}

double estimate_lipschitz(const cost::cost_view& costs, int samples) {
  DOLBIE_REQUIRE(samples >= 2, "need >= 2 samples, got " << samples);
  double worst = 0.0;
  for (const cost::cost_function* f : costs) {
    double prev = f->value(0.0);
    for (int k = 1; k <= samples; ++k) {
      const double x = static_cast<double>(k) / samples;
      const double v = f->value(x);
      worst = std::max(worst, std::abs(v - prev) * samples);
      prev = v;
    }
  }
  return worst;
}

}  // namespace dolbie::core
