#include "core/max_acceptable.h"

#include <algorithm>

#include "common/error.h"

namespace dolbie::core {

double max_acceptable_workload(const cost::cost_function& f, double x_i,
                               double global_cost) {
  const double tilde = f.inverse_max(global_cost);  // already capped at 1
  return std::clamp(tilde, x_i, 1.0);
}

std::vector<double> max_acceptable_vector(const cost::cost_view& costs,
                                          const allocation& x,
                                          double global_cost,
                                          worker_id straggler) {
  std::vector<double> out;
  max_acceptable_vector_into(costs, x, global_cost, straggler, out);
  return out;
}

void max_acceptable_vector_into(const cost::cost_view& costs,
                                const allocation& x, double global_cost,
                                worker_id straggler,
                                std::vector<double>& out) {
  DOLBIE_REQUIRE(costs.size() == x.size(),
                 "cost/allocation size mismatch: " << costs.size() << " vs "
                                                   << x.size());
  DOLBIE_REQUIRE(straggler < x.size(),
                 "straggler index " << straggler << " out of range");
  out.resize(x.size());
  for (worker_id i = 0; i < x.size(); ++i) {
    out[i] = (i == straggler)
                 ? x[i]
                 : max_acceptable_workload(*costs[i], x[i], global_cost);
  }
}

void max_acceptable_vector_into(const cost::batch_evaluator& batch,
                                const allocation& x, double global_cost,
                                worker_id straggler,
                                std::vector<double>& out) {
  DOLBIE_REQUIRE(batch.size() == x.size(),
                 "cost/allocation size mismatch: " << batch.size() << " vs "
                                                   << x.size());
  out.resize(x.size());
  batch.max_acceptable(x, global_cost, straggler, out);
}

void max_acceptable_vector_groups_into(const cost::batch_evaluator& batch,
                                       std::span<const double> x,
                                       std::span<const double> group_cost,
                                       std::span<const std::size_t> stragglers,
                                       std::vector<double>& out) {
  DOLBIE_REQUIRE(batch.size() == x.size(),
                 "cost/allocation size mismatch: " << batch.size() << " vs "
                                                   << x.size());
  out.resize(x.size());
  batch.max_acceptable_groups(x, group_cost, stragglers, out);
}

}  // namespace dolbie::core
