#include "core/max_acceptable.h"

#include <algorithm>

#include "common/error.h"

namespace dolbie::core {

double max_acceptable_workload(const cost::cost_function& f, double x_i,
                               double global_cost) {
  const double tilde = f.inverse_max(global_cost);  // already capped at 1
  return std::clamp(tilde, x_i, 1.0);
}

std::vector<double> max_acceptable_vector(const cost::cost_view& costs,
                                          const allocation& x,
                                          double global_cost,
                                          worker_id straggler) {
  DOLBIE_REQUIRE(costs.size() == x.size(),
                 "cost/allocation size mismatch: " << costs.size() << " vs "
                                                   << x.size());
  DOLBIE_REQUIRE(straggler < x.size(),
                 "straggler index " << straggler << " out of range");
  std::vector<double> out(x.size());
  for (worker_id i = 0; i < x.size(); ++i) {
    out[i] = (i == straggler)
                 ? x[i]
                 : max_acceptable_workload(*costs[i], x[i], global_cost);
  }
  return out;
}

}  // namespace dolbie::core
