// DOLBIE — Distributed Online Load Balancing with rIsk-averse assistancE
// (Algorithm 1/2 of the paper, expressed as a sequential policy).
//
// This class is the algorithmic core: the two protocol realizations in
// src/dist/ (master-worker message passing, fully-distributed min-consensus)
// compute exactly the same iterates; tests assert bit-equality.
//
// Per round, after costs are revealed:
//   l_t   = max_i l_{i,t};    s_t = argmax_i l_{i,t} (lowest-index ties)
//   x'_i  = min{1, max{x : f_{i,t}(x) <= l_t}}  for i != s_t  (Eq. 4)
//   x_{i,t+1} = x_{i,t} + alpha_t (x'_i - x_{i,t})            (Eq. 5)
//   x_{s,t+1} = 1 - sum_{i != s} x_{i,t+1}                    (Eq. 6)
//   alpha_{t+1} = min{alpha_t, x_{s,t+1}/(N-2+x_{s,t+1})}     (Eq. 7)
//
// No gradients, no projections: the update is O(N) arithmetic plus one
// inverse_max per worker (analytic for the built-in cost families).
#pragma once

#include <cstdint>
#include <optional>

#include "cost/batch.h"
#include "core/policy.h"

namespace dolbie::obs {
class metrics_registry;
class tracer;
class counter;
class gauge;
class span;
}  // namespace dolbie::obs

namespace dolbie::core {

/// How the step size is kept feasible round over round.
enum class step_rule {
  /// Eq. (7) taken literally: alpha_{t+1} = min{alpha_t,
  /// x_{s,t+1}/(N-2+x_{s,t+1})}. Monotone non-increasing — the schedule the
  /// Theorem-1 regret analysis assumes. The cap is the *worst-case*
  /// feasibility bound (every non-straggler jumping to x' = 1), so on
  /// strongly heterogeneous clusters it pins alpha near
  /// (min straggler share)/N and slows late-stage adaptation.
  worst_case,
  /// The exact feasibility bound the paper's own algebra derives
  /// (Sec. IV-B): each round the applied step is clamped to
  /// alpha_eff = min{alpha_1, x_{s,t} / sum_{i != s}(x'_{i,t} - x_{i,t})},
  /// computed from *current-round* quantities, so x_{s,t+1} >= 0 holds
  /// exactly while the nominal step stays at alpha_1. Not monotone, hence
  /// outside the Theorem-1 schedule, but it preserves responsiveness under
  /// system dynamics; the ablation bench quantifies the trade-off.
  exact_feasibility,
};

/// Configuration of the DOLBIE policy.
struct dolbie_options {
  /// Initial partition x_1; empty means the uniform point (1/N, ..., 1/N).
  allocation initial_partition;
  /// Initial step size alpha_1. A negative value (the default) selects the
  /// paper's safe initialization m/(N-2+m), m = min_i x_{i,1}. The ML
  /// experiments instead pin alpha_1 = 0.001 to mirror the paper's setup.
  double initial_step = -1.0;
  /// Step-size feasibility rule (see step_rule).
  step_rule rule = step_rule::worst_case;

  /// Observability (all optional; null keeps the policy on the zero-cost
  /// disabled path). The tracer records one "round" span per observe() on
  /// `trace_lane` plus instants for straggler election, renormalization and
  /// alpha re-caps; the registry carries the alpha/straggler trajectory.
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;
};

/// Sequential DOLBIE (reference implementation of Algorithms 1 and 2).
class dolbie_policy final : public online_policy {
 public:
  dolbie_policy(std::size_t n_workers, dolbie_options options = {});

  std::string_view name() const override { return "DOLBIE"; }
  std::size_t workers() const override { return x_.size(); }
  const allocation& current() const override { return x_; }
  void observe(const round_feedback& feedback) override;
  void reset() override;

  /// Batched-round seam: apply one observed round whose straggler election
  /// and Eq. (4) vector were computed externally — the lock-step
  /// cross-realization sweep (exp::run_lockstep) evaluates x' for R
  /// realizations through one grouped batch_evaluator call and feeds each
  /// policy through here. `max_acceptable` must be exactly what observe()
  /// would have computed against the current allocation: clamp(
  /// inverse_max_i(global_cost), x_i, 1) per non-straggler, the straggler
  /// pinned at its own x. The update then matches observe() bit for bit
  /// (same Eq. 5/6/7 code path, same trace records).
  void observe_prepared(worker_id straggler, double global_cost,
                        std::span<const double> max_acceptable);

  /// Step size alpha_t that will be applied to the *next* observed round.
  double step_size() const { return alpha_; }

  /// The last round's maximum-acceptable-workload vector x' (empty before
  /// the first observe). Exposed for tests and the ablation benches.
  const std::vector<double>& last_max_acceptable() const { return last_xp_; }

  /// Checkpointable policy state: everything the online iteration carries
  /// between rounds. Allows pausing/migrating a long-running balancer (a
  /// worker restart must not reset the learned partition).
  struct state {
    allocation x;
    double alpha = 0.0;
  };

  /// Snapshot the current iteration state.
  state snapshot() const { return {x_, alpha_}; }

  /// Restore a previously snapshotted state. Validates simplex membership,
  /// worker count and alpha in [0, 1].
  void restore(const state& saved);

  /// The same state as versioned snapshot bytes (common/snapshot.h) plus
  /// the round index, so a restored policy keeps stamping traces/metrics
  /// where the killed process stopped. restore_bytes rejects truncated,
  /// oversized, version-mismatched or non-finite input (invariant_error)
  /// and applies the same validation as restore(state).
  std::vector<std::uint8_t> snapshot_bytes() const;
  void restore_bytes(const std::vector<std::uint8_t>& bytes);

  /// Worker churn (membership changes between rounds, an extension beyond
  /// the paper's fixed worker set — its Sec. VII "dynamic load balancing in
  /// a multi-worker system" setting with elastic membership):
  ///
  /// Admit a new worker at the end of the worker list with `initial_share`
  /// of the workload (taken proportionally from everyone else). The step
  /// size is re-capped for the new N so the next update stays feasible.
  /// Returns the new worker's index.
  worker_id admit_worker(double initial_share);

  /// Remove worker `id`; its workload is redistributed proportionally to
  /// the survivors (uniformly when the survivors hold no workload). The
  /// step size is re-capped for the new N. At least one worker must remain.
  void remove_worker(worker_id id);

 private:
  void emit_alpha_recapped(const char* why);
  /// The Eq. 5/6/7 tail of a round, shared by observe() and
  /// observe_prepared(): consumes last_xp_ (already holding this round's
  /// x'), updates x_ and alpha_, and stamps the round span/metrics.
  void update_after_max_acceptable(worker_id s, std::uint64_t round,
                                   obs::span& round_span);

  allocation x_;
  double alpha_ = 0.0;
  /// Doubles as the in-place output buffer of the Eq. (4) batch kernel:
  /// observe() writes x' straight into it each round, so the steady-state
  /// hot path allocates nothing.
  std::vector<double> last_xp_;
  /// Devirtualized per-family evaluator, rebound to each round's cost view.
  /// Lives on the policy so its lane storage is reused round over round.
  cost::batch_evaluator batch_;
  dolbie_options options_;

  // Observability (null when options_.metrics is unset).
  std::uint64_t round_ = 0;
  obs::counter* rounds_counter_ = nullptr;
  obs::gauge* alpha_gauge_ = nullptr;
  obs::gauge* straggler_gauge_ = nullptr;
};

}  // namespace dolbie::core
