#include "core/dolbie.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::core {

dolbie_policy::dolbie_policy(std::size_t n_workers, dolbie_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "DOLBIE needs at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition has " << options_.initial_partition.size()
                                          << " entries for " << n_workers
                                          << " workers");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  DOLBIE_REQUIRE(options_.initial_step <= 1.0,
                 "initial step must be <= 1, got " << options_.initial_step);
  if (options_.metrics != nullptr) {
    rounds_counter_ = &options_.metrics->counter_named("seq.rounds");
    alpha_gauge_ = &options_.metrics->gauge_named("seq.alpha");
    straggler_gauge_ = &options_.metrics->gauge_named("seq.straggler");
  }
  reset();
}

void dolbie_policy::emit_alpha_recapped(const char* why) {
  if (options_.tracer != nullptr) {
    options_.tracer->instant(options_.trace_lane, round_, "alpha_recapped",
                             "seq",
                             {obs::arg_str("why", why),
                              obs::arg_num("alpha", alpha_),
                              obs::arg_int("workers", x_.size())});
  }
  if (alpha_gauge_ != nullptr) alpha_gauge_->set(alpha_);
}

void dolbie_policy::restore(const state& saved) {
  DOLBIE_REQUIRE(saved.x.size() == x_.size(),
                 "checkpoint has " << saved.x.size() << " workers, policy "
                                   << x_.size());
  DOLBIE_REQUIRE(on_simplex(saved.x),
                 "checkpoint allocation is not on the simplex");
  DOLBIE_REQUIRE(saved.alpha >= 0.0 && saved.alpha <= 1.0,
                 "checkpoint alpha " << saved.alpha << " outside [0, 1]");
  x_ = saved.x;
  // Re-cap against the restored partition the way admit_worker and
  // remove_worker do: a checkpoint written by a different configuration (or
  // by hand) can carry an alpha that is valid in [0, 1] yet exceeds the
  // worst-case feasibility bound for this x — the very next update could
  // then drive the straggler's remainder negative. Snapshots taken from a
  // running worst_case policy already satisfy alpha <= cap (the schedule
  // maintains it), so round-tripping through snapshot/restore stays exact.
  const double min_share = x_[argmin(x_)];
  alpha_ = std::min(saved.alpha, feasible_step_cap(x_.size(), min_share));
  last_xp_.clear();
  if (alpha_ < saved.alpha) emit_alpha_recapped("restore");
}

worker_id dolbie_policy::admit_worker(double initial_share) {
  DOLBIE_REQUIRE(initial_share >= 0.0 && initial_share < 1.0,
                 "initial share must be in [0, 1), got " << initial_share);
  for (double& v : x_) v *= (1.0 - initial_share);
  x_.push_back(initial_share);
  // Keep the next update feasible for the enlarged worker set: re-cap with
  // the new worst case over the current minimum share.
  const double min_share = x_[argmin(x_)];
  const double before = alpha_;
  alpha_ = std::min(alpha_, feasible_step_cap(x_.size(), min_share));
  last_xp_.clear();
  if (alpha_ < before) emit_alpha_recapped("admit_worker");
  return x_.size() - 1;
}

void dolbie_policy::remove_worker(worker_id id) {
  // Redistribution math shared with the protocol engines' crash-failover
  // path (core/churn.h).
  redistribute_after_leave(x_, id);
  const double min_share = x_[argmin(x_)];
  const double before = alpha_;
  alpha_ = std::min(alpha_, feasible_step_cap(x_.size(), min_share));
  last_xp_.clear();
  if (alpha_ < before) emit_alpha_recapped("remove_worker");
}

void dolbie_policy::reset() {
  x_ = options_.initial_partition;
  alpha_ = options_.initial_step >= 0.0 ? options_.initial_step
                                        : initial_step_size(x_);
  last_xp_.clear();
  round_ = 0;
}

void dolbie_policy::observe(const round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == x_.size(),
                 "feedback has " << feedback.local_costs.size()
                                 << " local costs for " << x_.size()
                                 << " workers");
  const std::size_t n = x_.size();
  const std::uint64_t round = round_++;
  if (n == 1) return;  // single worker always carries everything
  obs::tracer* tr = options_.tracer;
  obs::span round_span(tr, options_.trace_lane, round, "round", "seq");

  // Identify the straggler and the global cost (lines 9-11 of Algorithm 1).
  const worker_id s = argmax(feedback.local_costs);
  const double l_t = feedback.local_costs[s];
  if (tr != nullptr) {
    tr->instant(options_.trace_lane, round, "straggler_elected", "seq",
                {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
  }

  // Risk-averse assistance: move every non-straggler towards x' (Eq. 5).
  // The batch evaluator regroups the round's costs by concrete family and
  // writes x' into last_xp_ in place — no virtual dispatch in the per-family
  // loops and no heap allocation once the lane capacities are warm.
  batch_.rebind(*feedback.costs);
  max_acceptable_vector_into(batch_, x_, l_t, s, last_xp_);

  update_after_max_acceptable(s, round, round_span);
}

void dolbie_policy::observe_prepared(worker_id straggler, double global_cost,
                                     std::span<const double> max_acceptable) {
  DOLBIE_REQUIRE(max_acceptable.size() == x_.size(),
                 "prepared round has " << max_acceptable.size()
                                       << " entries for " << x_.size()
                                       << " workers");
  DOLBIE_REQUIRE(straggler < x_.size(),
                 "straggler index " << straggler << " out of range");
  const std::size_t n = x_.size();
  const std::uint64_t round = round_++;
  if (n == 1) return;  // single worker always carries everything
  obs::tracer* tr = options_.tracer;
  obs::span round_span(tr, options_.trace_lane, round, "round", "seq");
  if (tr != nullptr) {
    tr->instant(options_.trace_lane, round, "straggler_elected", "seq",
                {obs::arg_int("worker", straggler),
                 obs::arg_num("cost", global_cost)});
  }

  // x' was computed by the caller (grouped batch evaluation across
  // realizations); keep it in last_xp_ exactly like observe() does.
  last_xp_.assign(max_acceptable.begin(), max_acceptable.end());

  update_after_max_acceptable(straggler, round, round_span);
}

void dolbie_policy::update_after_max_acceptable(worker_id s,
                                                std::uint64_t round,
                                                obs::span& round_span) {
  const std::size_t n = x_.size();
  obs::tracer* tr = options_.tracer;

  double applied = alpha_;
  if (options_.rule == step_rule::exact_feasibility) {
    // Clamp to the exact per-round feasibility bound derived in Sec. IV-B:
    // alpha <= x_{s,t} / sum_{i != s}(x'_i - x_i) keeps the straggler's
    // remainder non-negative without shrinking the nominal step.
    double total_gap = 0.0;
    for (worker_id i = 0; i < n; ++i) {
      if (i != s) total_gap += last_xp_[i] - x_[i];
    }
    if (total_gap > 0.0) {
      applied = std::min(applied, x_[s] / total_gap);
    }
  }

  double claimed = 0.0;
  for (worker_id i = 0; i < n; ++i) {
    if (i == s) continue;
    x_[i] = x_[i] + applied * (last_xp_[i] - x_[i]);
    claimed += x_[i];
  }

  // The straggler absorbs the remainder (Eq. 6). The step-size rule makes
  // this non-negative in exact arithmetic; floating-point drift can still
  // push `claimed` past 1. Clamping the remainder at 0 would leave the
  // allocation summing to `claimed` (off the simplex) — renormalize the
  // non-stragglers instead so on_simplex(x_) holds after every round. The
  // division shrinks each by a factor of 1/claimed ~ 1 - eps, within the
  // monotonicity tolerance of invariant I2.
  const double remainder = 1.0 - claimed;
  if (remainder >= 0.0) {
    x_[s] = remainder;
  } else {
    x_[s] = 0.0;
    for (worker_id i = 0; i < n; ++i) {
      if (i != s) x_[i] /= claimed;
    }
    if (tr != nullptr) {
      tr->instant(options_.trace_lane, round, "renormalized", "seq",
                  {obs::arg_num("claimed", claimed)});
    }
  }

  if (options_.rule == step_rule::worst_case) {
    // Retain feasibility for the next round (Eq. 7).
    alpha_ = next_step_size(alpha_, n, x_[s]);
  }

  round_span.arg("straggler", static_cast<std::uint64_t>(s));
  round_span.arg("alpha_applied", applied);
  round_span.arg("alpha_next", alpha_);
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(alpha_);
    straggler_gauge_->set(static_cast<double>(s));
  }
}

std::vector<std::uint8_t> dolbie_policy::snapshot_bytes() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::dolbie_policy, x_.size());
  w.f64(alpha_);
  w.u64(round_);
  for (const double v : x_) w.f64(v);
  return w.take();
}

void dolbie_policy::restore_bytes(const std::vector<std::uint8_t>& bytes) {
  snapshot_reader r(bytes);
  read_snapshot_header(r, snapshot_kind::dolbie_policy, x_.size());
  state saved;
  saved.alpha = r.f64();
  const std::uint64_t round = r.u64();
  saved.x.resize(x_.size());
  for (double& v : saved.x) v = r.f64();
  r.finish();
  restore(saved);  // simplex / alpha validation and re-cap
  round_ = round;
}

}  // namespace dolbie::core
