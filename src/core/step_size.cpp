#include "core/step_size.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::core {

double feasible_step_cap(std::size_t n_workers, double straggler_next) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(straggler_next >= 0.0,
                 "straggler workload must be >= 0, got " << straggler_next);
  if (n_workers <= 2) return 1.0;
  const double denom =
      static_cast<double>(n_workers) - 2.0 + straggler_next;
  if (denom <= 0.0) return 0.0;  // only reachable when s == 0 and N == 2
  return std::min(1.0, straggler_next / denom);
}

double next_step_size(double alpha_t, std::size_t n_workers,
                      double straggler_next) {
  DOLBIE_REQUIRE(alpha_t >= 0.0 && alpha_t <= 1.0,
                 "step size must lie in [0,1], got " << alpha_t);
  return std::min(alpha_t, feasible_step_cap(n_workers, straggler_next));
}

double initial_step_size(std::span<const double> x1) {
  DOLBIE_REQUIRE(!x1.empty(), "initial partition is empty");
  const double m = x1[argmin(x1)];
  DOLBIE_REQUIRE(m >= 0.0, "initial partition has negative entry " << m);
  return feasible_step_cap(x1.size(), m);
}

}  // namespace dolbie::core
