// Shared redistribution math for worker-churn events.
//
// This is the single source of truth for "worker leaves, survivors absorb
// its share proportionally": dolbie_policy::remove_worker uses the
// erasing variant, and the protocol engines' crash-failover path uses the
// in-place variant (fixed wiring — the dead worker keeps its node id and
// a pinned zero share). Sharing the arithmetic keeps the policy-level and
// protocol-level membership changes bit-consistent with each other.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace dolbie::core {

/// Remove worker `id`'s entry and scale the survivors so they absorb its
/// share proportionally (uniform fallback when nothing remains), landing
/// exactly on the simplex. Exactly the math dolbie_policy::remove_worker
/// has always applied. `x` shrinks by one entry.
void redistribute_after_leave(std::vector<double>& x, worker_id id);

/// In-place variant: worker `id` keeps its slot, pinned to zero; only
/// workers with `live[j] != 0` (and `j != id`) absorb the freed share,
/// again proportionally with a uniform fallback, renormalized over the
/// heirs. Requires at least one live heir. `target` is the total mass
/// this worker group conserves — 1.0 for a flat engine (the division is
/// bit-identical to the historical renormalization), a shard's slice
/// under the hierarchical layer.
void release_share_in_place(std::vector<double>& x, worker_id id,
                            const std::vector<std::uint8_t>& live,
                            double target = 1.0);

}  // namespace dolbie::core
