#include "core/churn.h"

#include <cstddef>

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::core {

void redistribute_after_leave(std::vector<double>& x, worker_id id) {
  DOLBIE_REQUIRE(id < x.size(), "worker " << id << " out of range");
  DOLBIE_REQUIRE(x.size() >= 2, "cannot remove the last worker");
  const double freed = x[id];
  x.erase(x.begin() + static_cast<std::ptrdiff_t>(id));
  const double remaining = sum(x);
  if (remaining > 0.0) {
    for (double& v : x) v *= (freed + remaining) / remaining;
  } else {
    x = uniform_point(x.size());
  }
  // Numerical hygiene: land exactly on the simplex.
  x = normalized(x);
}

void release_share_in_place(std::vector<double>& x, worker_id id,
                            const std::vector<std::uint8_t>& live,
                            double target) {
  DOLBIE_REQUIRE(id < x.size(), "worker " << id << " out of range");
  DOLBIE_REQUIRE(live.size() == x.size(), "live mask size mismatch");
  DOLBIE_REQUIRE(target > 0.0, "conservation target must be positive");
  const double freed = x[id];
  x[id] = 0.0;
  double remaining = 0.0;
  std::size_t heirs = 0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (j == id || live[j] == 0) continue;
    remaining += x[j];
    ++heirs;
  }
  DOLBIE_REQUIRE(heirs > 0, "no live worker left to absorb the share of "
                                << id);
  if (remaining > 0.0) {
    const double scale = (freed + remaining) / remaining;
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (j != id && live[j] != 0) x[j] *= scale;
    }
  } else {
    const double share = target / static_cast<double>(heirs);
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (j != id && live[j] != 0) x[j] = share;
    }
  }
  // Renormalize over the heirs onto the group's conserved mass (the
  // in-place analogue of normalized(); `x[j] /= total` bit for bit when
  // target == 1.0, the flat engines' case).
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (j != id && live[j] != 0) total += x[j];
  }
  if (total > 0.0) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (j != id && live[j] != 0) x[j] = x[j] / total * target;
    }
  }
}

}  // namespace dolbie::core
