// Dynamic-regret accounting (Section V):
//
//   Reg_T^d = sum_t f_t(x_t) - sum_t f_t(x_t^*),
//   P_T     = sum_{t>=2} || x_{t-1}^* - x_t^* ||_2   (path length),
//
// plus an evaluator for the Theorem-1 upper bound
//
//   Reg_T^d <= sqrt( T L^2 ( 1/alpha_T + P_T/alpha_T
//                            + sum_t ((N-1)/2 + N alpha_t)/2 ) ).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cost/cost_function.h"
#include "core/types.h"

namespace dolbie::core {

/// Accumulates per-round algorithm cost vs the instantaneous optimum.
class regret_tracker {
 public:
  /// Record one round: the algorithm's global cost, the instantaneous
  /// optimal global cost, and the minimizer achieving it.
  void record(double algorithm_cost, double optimal_cost,
              const allocation& optimal_point);

  std::size_t rounds() const { return rounds_; }

  /// Dynamic regret accumulated so far.
  double regret() const { return algorithm_total_ - optimal_total_; }

  /// Total cost of the algorithm's decisions.
  double algorithm_total() const { return algorithm_total_; }

  /// Total cost of the per-round minimizers.
  double optimal_total() const { return optimal_total_; }

  /// Path length P_T of the minimizer sequence.
  double path_length() const { return path_length_; }

  /// Per-round regret increments (for regret-vs-T curves).
  const std::vector<double>& per_round_gap() const { return per_round_gap_; }

 private:
  std::size_t rounds_ = 0;
  double algorithm_total_ = 0.0;
  double optimal_total_ = 0.0;
  double path_length_ = 0.0;
  allocation previous_optimal_;
  std::vector<double> per_round_gap_;
};

/// The Theorem-1 upper bound given the realized step sizes alpha_1..alpha_T,
/// the Lipschitz constant L, the worker count N and the path length P_T.
double theorem1_bound(double lipschitz, std::size_t n_workers,
                      std::span<const double> step_sizes, double path_length);

/// A Lipschitz constant for a round's cost view: the largest finite-
/// difference slope of any f_i over a uniform grid (a sound estimate for
/// the built-in families, whose slopes are monotone). Used by the regret
/// bench to feed Theorem 1 with an honest L.
double estimate_lipschitz(const cost::cost_view& costs, int samples = 64);

}  // namespace dolbie::core
