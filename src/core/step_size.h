// The step-size schedule of Eq. (7)/(8), the mechanism that keeps DOLBIE's
// updates feasible (x >= 0) and risk-averse: after each round the step size
// is capped by
//
//     alpha_{t+1} <= min{ alpha_t, s / (N - 2 + s) }
//
// where s = x_{s_t, t+1} is the straggler's *new* workload. The cap is
// exactly tight enough that even if every non-straggler moved all the way to
// x' = 1 next round, the straggler's remainder stays non-negative.
#pragma once

#include <cstddef>
#include <span>

namespace dolbie::core {

/// The feasibility cap s / (N - 2 + s) from Eq. (7). For N <= 2 the
/// denominator degenerates: N == 2 gives s/s = 1 (any step in [0,1] is
/// safe); N == 1 has no non-stragglers, cap 1.
double feasible_step_cap(std::size_t n_workers, double straggler_next);

/// alpha_{t+1} = min{ alpha_t, feasible_step_cap(N, straggler_next) }.
double next_step_size(double alpha_t, std::size_t n_workers,
                      double straggler_next);

/// The paper's initialization: alpha_1 = m / (N - 2 + m) with
/// m = min_i x_{i,1}, safe for an arbitrary initial partition.
double initial_step_size(std::span<const double> x1);

}  // namespace dolbie::core
