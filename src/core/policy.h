// The single interface every online load-balancing algorithm implements —
// DOLBIE, the four baselines (EQU, OGD, ABS, LB-BSP) and the clairvoyant
// OPT comparator. The experiment harness, the distributed-ML trainer and
// the edge-offloading scenario are all written against it.
//
// Protocol per round t:
//   1.  (clairvoyant policies only) preview(costs) — OPT sees f_{i,t} before
//       deciding; online policies ignore it.
//   2.  allocation() — the harness reads x_t and plays it.
//   3.  observe(feedback) — the revealed costs l_{i,t} and the full cost
//       functions f_{i,t}(.) are handed back; the policy prepares x_{t+1}.
#pragma once

#include <span>
#include <string_view>

#include "cost/cost_function.h"
#include "core/types.h"

namespace dolbie::core {

/// Feedback revealed to the policy at the end of a round.
struct round_feedback {
  /// The round's cost functions, one per worker (non-owning; valid only for
  /// the duration of the observe() call).
  const cost::cost_view* costs = nullptr;
  /// Realized local costs l_{i,t} = f_{i,t}(x_{i,t}).
  std::span<const double> local_costs;
};

/// An online algorithm producing a simplex allocation each round.
class online_policy {
 public:
  virtual ~online_policy() = default;

  /// Short identifier used in traces and reports ("DOLBIE", "OGD", ...).
  virtual std::string_view name() const = 0;

  /// Number of workers this policy was configured for.
  virtual std::size_t workers() const = 0;

  /// The allocation x_t to play this round. Always on the simplex.
  virtual const allocation& current() const = 0;

  /// Reveal the round's costs; the policy computes x_{t+1}.
  virtual void observe(const round_feedback& feedback) = 0;

  /// True when the policy requires the round's cost functions *before*
  /// deciding (only the OPT comparator). Default: honest online policy.
  virtual bool clairvoyant() const { return false; }

  /// Clairvoyant hook, invoked before current() each round when
  /// clairvoyant() is true. Default: no-op.
  virtual void preview(const cost::cost_view& costs) { (void)costs; }

  /// Reset to the initial state so the same object can run a fresh
  /// realization.
  virtual void reset() = 0;
};

/// Compute the round outcome (local costs, global cost, straggler with
/// lowest-index tie-breaking) for a played allocation.
round_outcome evaluate_round(const cost::cost_view& costs,
                             const allocation& x);

}  // namespace dolbie::core
