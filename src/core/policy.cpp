#include "core/policy.h"

#include "common/error.h"
#include "common/simplex.h"

namespace dolbie::core {

round_outcome evaluate_round(const cost::cost_view& costs,
                             const allocation& x) {
  DOLBIE_REQUIRE(costs.size() == x.size(),
                 "evaluate_round: " << costs.size() << " costs vs " << x.size()
                                    << " coordinates");
  DOLBIE_REQUIRE(!x.empty(), "evaluate_round: empty allocation");
  round_outcome out;
  out.decision = x;
  out.local_costs = cost::evaluate(costs, x);
  out.straggler = argmax(out.local_costs);
  out.global_cost = out.local_costs[out.straggler];
  return out;
}

}  // namespace dolbie::core
