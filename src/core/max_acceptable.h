// The maximum acceptable workload x'_{i,t} of Eq. (4): the largest workload
// worker i could have carried this round without exceeding the round's
// global cost, truncated to the total workload:
//
//     x'_{i,t} = min{ 1, max{ x : f_{i,t}(x) <= l_t } },
//
// with the straggler pinned at its own decision (x'_{s,t} = x_{s,t}).
// The non-negative gap (x' - x) is the risk-averse assistance budget.
#pragma once

#include <span>
#include <vector>

#include "cost/batch.h"
#include "cost/cost_function.h"
#include "core/types.h"

namespace dolbie::core {

/// x' for a single non-straggling worker. `x_i` is the worker's played
/// workload this round; the result is clamped to be >= x_i (guaranteed in
/// exact arithmetic since f(x_i) <= l_t; the clamp absorbs bisection error).
double max_acceptable_workload(const cost::cost_function& f, double x_i,
                               double global_cost);

/// x' for every worker: non-stragglers via Eq. (4), the straggler pinned at
/// its own decision. Sizes of `costs` and `x` must match; `straggler` must
/// index a worker.
std::vector<double> max_acceptable_vector(const cost::cost_view& costs,
                                          const allocation& x,
                                          double global_cost,
                                          worker_id straggler);

/// Scratch-buffer variant of the above: resizes `out` (a no-op once its
/// capacity is warm) and writes x' in place — no per-round allocation.
void max_acceptable_vector_into(const cost::cost_view& costs,
                                const allocation& x, double global_cost,
                                worker_id straggler, std::vector<double>& out);

/// Batched variant: evaluates through the devirtualized per-family lanes of
/// a bound batch_evaluator. Bit-identical to the scalar path over the same
/// view (asserted by tests/batch_cost_test).
void max_acceptable_vector_into(const cost::batch_evaluator& batch,
                                const allocation& x, double global_cost,
                                worker_id straggler, std::vector<double>& out);

/// Cross-realization Eq. (4): `batch` is bound over the concatenation of
/// `group_cost.size()` same-sized realization views; group r gets round
/// cost group_cost[r] and straggler stragglers[r] (an index within the
/// group). Bit-identical to one max_acceptable_vector_into call per group,
/// but all groups' bisection lanes share one lock-step loop. Resizes `out`
/// to batch.size() (a no-op once warm).
void max_acceptable_vector_groups_into(const cost::batch_evaluator& batch,
                                       std::span<const double> x,
                                       std::span<const double> group_cost,
                                       std::span<const std::size_t> stragglers,
                                       std::vector<double>& out);

}  // namespace dolbie::core
