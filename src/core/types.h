// Shared vocabulary types for the online load-balancing core.
#pragma once

#include <cstddef>
#include <vector>

namespace dolbie::core {

/// Index of a worker in the round's worker list.
using worker_id = std::size_t;

/// A workload allocation x_t on the probability simplex.
using allocation = std::vector<double>;

/// Everything revealed about one completed round.
struct round_outcome {
  allocation decision;              ///< x_t the policy played
  std::vector<double> local_costs;  ///< l_{i,t} = f_{i,t}(x_{i,t})
  double global_cost = 0.0;         ///< l_t = max_i l_{i,t}
  worker_id straggler = 0;          ///< s_t (ties to the lowest index)
};

}  // namespace dolbie::core
