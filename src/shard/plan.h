// Deterministic sharding policy of the hierarchical layer: partition the N
// workers into K shards of bounded size and build the O(log N) reduction
// tree over the K leaf aggregators (fan-in bounded internal nodes, one
// root). The plan is a pure function of (N, plan_options) — no generator
// state survives construction — so the same seed reproduces the same
// hierarchy bit for bit on any platform, and the contiguous default is
// stable under churn: retiring a worker never reshuffles the survivors'
// shard assignment (shards shrink in place, exactly like the flat
// engines' membership flags).
//
// Identity guarantee: shard_size >= N yields a single shard whose member
// list is 0..N-1 in order (slot == global id), which is what makes the
// hierarchical engine bit-identical to the flat engines at K = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace dolbie::shard {

/// How to partition the workers and shape the reduction tree.
struct plan_options {
  /// Workers per shard; 0 selects ceil(sqrt(N)) (at least 2), the size
  /// that balances shard-internal traffic against tree depth. The last
  /// shard may be smaller.
  std::size_t shard_size = 0;
  /// Children per internal tree node; must be >= 2.
  std::size_t fanin = 4;
  /// Seed for the optional membership shuffle.
  std::uint64_t seed = 0;
  /// Shuffle workers across shards (seeded Fisher-Yates) instead of the
  /// contiguous-block default. Members stay sorted ascending within each
  /// shard either way, so shard-local index order matches global id order
  /// (the election tie-breaking invariant).
  bool shuffle = false;
};

/// The materialized hierarchy: worker -> shard maps plus the aggregator
/// tree. Aggregator ids are tree-node ids: the K leaves are 0..K-1 (leaf
/// k fronts shard k), internal nodes follow level by level, the root is
/// the last id. With K == 1 the root *is* leaf 0 and the tree is trivial.
struct shard_plan {
  std::size_t n_workers = 0;
  std::size_t fanin = 0;

  /// members[k] = global worker ids of shard k, sorted ascending.
  std::vector<std::vector<core::worker_id>> members;
  /// shard_of[i] / slot_of[i]: worker i's shard and its index therein.
  std::vector<std::size_t> shard_of;
  std::vector<std::size_t> slot_of;

  /// parent[a] for every aggregator (the root points at itself);
  /// children[a] is empty for leaves, ascending for internal nodes.
  std::vector<std::size_t> parent;
  std::vector<std::vector<std::size_t>> children;
  /// level[a]: 0 for leaves, increasing towards the root.
  std::vector<std::size_t> level;
  std::size_t root = 0;
  /// Number of tree levels (1 when K == 1).
  std::size_t depth = 1;

  std::size_t shards() const { return members.size(); }
  std::size_t aggregators() const { return parent.size(); }
};

/// Build the plan. Throws (common/error.h invariants) on n_workers == 0
/// or fanin < 2. shard_size 0 defaults to ceil(sqrt(N)) (at least 2);
/// explicit sizes are clamped to n_workers.
shard_plan make_shard_plan(std::size_t n_workers, const plan_options& options);

}  // namespace dolbie::shard
