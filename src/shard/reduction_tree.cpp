#include "shard/reduction_tree.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/snapshot.h"
#include "common/thread_pool.h"
#include "net/message.h"
#include "obs/trace.h"

namespace dolbie::shard {
namespace {

// Fan a level's per-parent relay jobs over the pool only when the level is
// wide enough to amortize the dispatch; narrow levels (and the levels near
// the root — there are O(log N) of them, each a handful of nodes) run the
// plain loop.
constexpr std::size_t kMinParallelParents = 4;

template <class Job>
void for_each_parent(thread_pool* pool, std::size_t n_parents,
                     const Job& job) {
  if (pool != nullptr && n_parents >= kMinParallelParents) {
    pool->parallel_for(n_parents, job);
    return;
  }
  for (std::size_t pi = 0; pi < n_parents; ++pi) job(pi);
}

}  // namespace

reduction_tree::reduction_tree(const shard_plan& plan, obs::tracer* tracer,
                               std::uint32_t lane)
    : plan_(&plan),
      cur_parent_(plan.parent),
      cur_children_(plan.children),
      retired_(plan.aggregators(), 0),
      base_msgs_(plan.aggregators(), 0),
      base_bytes_(plan.aggregators(), 0),
      tracer_(tracer),
      lane_(lane) {
  rebuild_levels();
  rebuild_net();
  part_max_.assign(plan.aggregators(), 0.0);
  part_min_.assign(plan.aggregators(), 0.0);
  part_count_.assign(plan.aggregators(), 0);
  have_.assign(plan.aggregators(), 0);
}

void reduction_tree::rebuild_levels() {
  const shard_plan& plan = *plan_;
  const std::size_t n_aggs = plan.aggregators();
  // Parent ids always exceed their children's (the plan lays internal
  // nodes out level by level, and a reparent only moves children to a
  // still-larger grandparent id), so one ascending pass sees every child
  // before its parent.
  std::vector<std::size_t> level_of(n_aggs, 0);
  depth_ = 1;
  for (std::size_t a = 0; a < n_aggs; ++a) {
    if (retired_[a] != 0) continue;
    std::size_t lvl = 0;
    for (const std::size_t c : cur_children_[a]) {
      lvl = std::max(lvl, level_of[c] + 1);
    }
    level_of[a] = lvl;
    depth_ = std::max(depth_, lvl + 1);
  }
  level_nodes_.assign(depth_, {});
  for (std::size_t a = 0; a < n_aggs; ++a) {
    if (retired_[a] != 0) continue;
    level_nodes_[level_of[a]].push_back(a);
  }
}

// Both directions of every live child<->parent link, so summaries flow up
// and consensus flows down over the same sparse storage. K == 1
// degenerates to a single node with no edges (the root is the leaf;
// nothing to say).
void reduction_tree::rebuild_net() {
  const shard_plan& plan = *plan_;
  std::vector<std::pair<net::node_id, net::node_id>> edges;
  edges.reserve(2 * (plan.aggregators() - 1));
  for (std::size_t a = 0; a < plan.aggregators(); ++a) {
    if (a == plan.root || retired_[a] != 0) continue;
    const auto child = static_cast<net::node_id>(a);
    const auto parent = static_cast<net::node_id>(cur_parent_[a]);
    edges.emplace_back(child, parent);
    edges.emplace_back(parent, child);
  }
  net_ = std::make_unique<net::network>(plan.aggregators(), std::move(edges));
}

reduce_result reduction_tree::reduce(
    std::uint64_t round, const std::vector<double>& leaf_max,
    const std::vector<double>& leaf_min,
    const std::vector<std::uint8_t>& contribute,
    const std::vector<std::uint8_t>& agg_live) {
  const shard_plan& plan = *plan_;
  const std::size_t n_shards = plan.shards();
  DOLBIE_REQUIRE(leaf_max.size() == n_shards && leaf_min.size() == n_shards &&
                     contribute.size() == n_shards &&
                     agg_live.size() == plan.aggregators(),
                 "reduce input sizes do not match the plan");
  net_->set_round(round);

  std::fill(part_count_.begin(), part_count_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n_shards; ++k) {
    if (contribute[k] == 0 || agg_live[k] == 0) continue;
    part_max_[k] = leaf_max[k];
    part_min_[k] = leaf_min[k];
    part_count_[k] = 1;
  }

  // Level by level: every live node with a non-empty partial forwards it
  // to a live parent; parents fold arrivals in child-id order. One relay
  // job per live parent (its children's sends, then its own folds): the
  // children partition over parents, so each (child, parent) channel and
  // each partial slot has exactly one writer per level, and the fold order
  // inside a job is the serial walk's — bit-identical at any pool width.
  for (std::size_t lvl = 0; lvl + 1 < depth_; ++lvl) {
    obs::span sp(tracer_, lane_, round,
                 ("tree.reduce.level" + std::to_string(lvl + 1)).c_str(),
                 "shard");
    const std::vector<std::size_t>& parents = level_nodes_[lvl + 1];
    for_each_parent(pool_, parents.size(), [&](std::size_t pi) {
      const std::size_t p = parents[pi];
      // Membership-oracle shortcut: a child never addresses a parent the
      // round's liveness already names down, so no stale summary can
      // linger in the channel into a later round.
      if (agg_live[p] == 0) return;
      for (const std::size_t c : cur_children_[p]) {
        if (part_count_[c] == 0 || agg_live[c] == 0) continue;
        net_->send({static_cast<net::node_id>(c),
                    static_cast<net::node_id>(p),
                    net::message_kind::shard_reduce,
                    {part_max_[c], part_min_[c],
                     static_cast<double>(part_count_[c])}});
      }
      for (const std::size_t c : cur_children_[p]) {
        auto m = net_->receive(static_cast<net::node_id>(p),
                               static_cast<net::node_id>(c));
        if (!m.has_value()) continue;
        const double mx = m->payload[0];
        const double mn = m->payload[1];
        const auto count = static_cast<std::size_t>(m->payload[2]);
        if (part_count_[p] == 0) {
          part_max_[p] = mx;
          part_min_[p] = mn;
        } else {
          part_max_[p] = std::max(part_max_[p], mx);
          part_min_[p] = std::min(part_min_[p], mn);
        }
        part_count_[p] += count;
      }
    });
  }

  const std::size_t root = plan.root;
  if (agg_live[root] == 0 || part_count_[root] == 0) return {};
  return {part_max_[root], part_min_[root], part_count_[root]};
}

void reduction_tree::broadcast(std::uint64_t round, double a, double b,
                               const std::vector<std::uint8_t>& agg_live,
                               std::vector<std::uint8_t>& reached) {
  const shard_plan& plan = *plan_;
  DOLBIE_REQUIRE(agg_live.size() == plan.aggregators(),
                 "broadcast liveness size does not match the plan");
  net_->set_round(round);
  reached.assign(plan.shards(), 0);
  std::fill(have_.begin(), have_.end(), 0);
  if (agg_live[plan.root] == 0) return;
  have_[plan.root] = 1;

  // Same per-parent relay shape as reduce: each job sends the pair to its
  // live children and marks their receipts. A child has exactly one
  // parent, so `have_[c]` has one writer per level.
  for (std::size_t lvl = depth_; lvl-- > 1;) {
    obs::span sp(tracer_, lane_, round,
                 ("tree.broadcast.level" + std::to_string(lvl)).c_str(),
                 "shard");
    const std::vector<std::size_t>& parents = level_nodes_[lvl];
    for_each_parent(pool_, parents.size(), [&](std::size_t pi) {
      const std::size_t p = parents[pi];
      if (have_[p] == 0) return;
      for (const std::size_t c : cur_children_[p]) {
        if (agg_live[c] == 0) continue;  // oracle shortcut, as in reduce
        net_->send({static_cast<net::node_id>(p),
                    static_cast<net::node_id>(c),
                    net::message_kind::shard_broadcast,
                    {a, b}});
      }
      for (const std::size_t c : cur_children_[p]) {
        auto m = net_->receive(static_cast<net::node_id>(c),
                               static_cast<net::node_id>(p));
        if (m.has_value()) have_[c] = 1;
      }
    });
  }

  for (std::size_t k = 0; k < plan.shards(); ++k) {
    reached[k] = have_[k];
  }
}

bool reduction_tree::can_reparent(std::size_t d) const {
  const shard_plan& plan = *plan_;
  if (d >= plan.aggregators() || d == plan.root || d < plan.shards() ||
      retired_[d] != 0) {
    return false;
  }
  const std::size_t p = cur_parent_[d];
  // The parent sheds d and absorbs d's children.
  return cur_children_[p].size() - 1 + cur_children_[d].size() <= plan.fanin;
}

void reduction_tree::reparent_children(std::size_t d) {
  DOLBIE_REQUIRE(can_reparent(d),
                 "reparent of tree node " << d << " is not legal");
  const std::size_t g = cur_parent_[d];
  std::vector<std::size_t> merged;
  merged.reserve(cur_children_[g].size() - 1 + cur_children_[d].size());
  for (const std::size_t c : cur_children_[g]) {
    if (c != d) merged.push_back(c);
  }
  merged.insert(merged.end(), cur_children_[d].begin(),
                cur_children_[d].end());
  std::sort(merged.begin(), merged.end());
  for (const std::size_t c : cur_children_[d]) cur_parent_[c] = g;
  cur_children_[g] = std::move(merged);
  cur_children_[d].clear();
  cur_parent_[d] = d;
  retired_[d] = 1;
  repaired_ = true;
  // The rebuilt network starts from zero counters; fold the discarded
  // instance's traffic into the bases so the totals stay monotone.
  const net::traffic_totals t = net_->total_traffic();
  base_traffic_.messages_sent += t.messages_sent;
  base_traffic_.bytes_sent += t.bytes_sent;
  for (std::size_t a = 0; a < plan_->aggregators(); ++a) {
    base_msgs_[a] += net_->peer_messages_sent(static_cast<net::node_id>(a));
    base_bytes_[a] += net_->peer_bytes_sent(static_cast<net::node_id>(a));
  }
  rebuild_levels();
  rebuild_net();
}

net::traffic_totals reduction_tree::traffic() const {
  net::traffic_totals t = net_->total_traffic();
  t.messages_sent += base_traffic_.messages_sent;
  t.bytes_sent += base_traffic_.bytes_sent;
  return t;
}

std::uint64_t reduction_tree::node_messages_sent(std::size_t agg) const {
  return base_msgs_[agg] +
         net_->peer_messages_sent(static_cast<net::node_id>(agg));
}

std::uint64_t reduction_tree::node_bytes_sent(std::size_t agg) const {
  return base_bytes_[agg] +
         net_->peer_bytes_sent(static_cast<net::node_id>(agg));
}

void reduction_tree::reset() {
  if (repaired_) {
    cur_parent_ = plan_->parent;
    cur_children_ = plan_->children;
    std::fill(retired_.begin(), retired_.end(), std::uint8_t{0});
    repaired_ = false;
    rebuild_levels();
    rebuild_net();
  } else {
    net_->reset_traffic();
  }
  base_traffic_ = {};
  std::fill(base_msgs_.begin(), base_msgs_.end(), std::uint64_t{0});
  std::fill(base_bytes_.begin(), base_bytes_.end(), std::uint64_t{0});
}

void reduction_tree::snapshot_to(snapshot_writer& w) const {
  w.u64(base_traffic_.messages_sent);
  w.u64(base_traffic_.bytes_sent);
  for (const std::uint64_t v : base_msgs_) w.u64(v);
  for (const std::uint64_t v : base_bytes_) w.u64(v);
  net_->snapshot_to(w);
}

void reduction_tree::restore_from(snapshot_reader& r) {
  base_traffic_.messages_sent = static_cast<std::size_t>(r.u64());
  base_traffic_.bytes_sent = static_cast<std::size_t>(r.u64());
  for (std::uint64_t& v : base_msgs_) v = r.u64();
  for (std::uint64_t& v : base_bytes_) v = r.u64();
  net_->restore_from(r);
}

}  // namespace dolbie::shard
