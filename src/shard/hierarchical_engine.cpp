#include "shard/hierarchical_engine.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/simplex.h"
#include "common/thread_pool.h"
#include "core/step_size.h"
#include "cost/batch.h"
#include "dist/fd_round.h"
#include "dist/mw_round.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::shard {
namespace {

// MW shards run the master-worker star with the leaf aggregator co-located
// as the master (hub id m); FD shards need the all-pairs broadcast.
net::network make_shard_net(std::size_t m, shard_protocol mode) {
  if (mode == shard_protocol::master_worker) {
    return net::network(m + 1, static_cast<net::node_id>(m));
  }
  return net::network(m);
}

// The worker fault schedule, re-keyed into one shard: crash windows keep
// their rounds but are renamed to shard-local slots; link-fault rolls get
// a decorrelated per-shard seed (shard 0 keeps the base seed, which is
// what makes the K = 1 configuration transcript-identical to the flat
// engines — slot ids equal global ids there).
net::fault_plan shard_faults(const net::fault_plan& base,
                             const shard_plan& plan, std::size_t k) {
  net::fault_plan local;
  local.seed = k == 0 ? base.seed
                      : rng::stream_seed(base.seed,
                                         static_cast<std::uint64_t>(k));
  local.drop_rate = base.drop_rate;
  local.duplicate_rate = base.duplicate_rate;
  local.reorder_rate = base.reorder_rate;
  local.force = base.force;
  for (const net::crash_window& w : base.crashes) {
    if (plan.shard_of[w.node] != k) continue;
    local.crashes.push_back({static_cast<net::node_id>(plan.slot_of[w.node]),
                             w.crash_round, w.recover_round});
  }
  return local;
}

}  // namespace

/// Everything one shard owns: its slice of the allocation, its network
/// (plus the reliable layer when its fault plan is live) and the round
/// machines' state. Heap-held — net::network is not movable. The whole
/// struct is thread-confined: exactly one Stage A/B job touches it per
/// round, so nothing here needs synchronization.
struct hierarchical_engine::shard_rt {
  std::size_t m;                ///< member count
  double mass = 0.0;            ///< this shard's slice of the simplex
  net::fault_plan faults;       ///< shard-local schedule (slot ids)
  bool faulty = false;
  net::network net;
  std::unique_ptr<net::reliable_link> rel;
  std::uint32_t lane = 0;       ///< this shard's private trace lane

  std::vector<double> x;          ///< shard-local allocation slice
  std::vector<double> alpha_bar;  ///< FD per-worker step bounds
  double alpha_view = 0.0;        ///< MW per-round copy of the global step
  /// MW: Eq. 7 caps discovered while cut off from the root (churn
  /// retirement in an unreached round), re-announced once the path heals.
  double carry_cap = std::numeric_limits<double>::infinity();
  dist::round_scratch scratch;
  dist::member_flags flags;
  cost::cost_view costs;        ///< per-round gathered views
  std::vector<double> locals;
  /// Cumulative counters this shard's round machines mutate
  /// (removed_workers, straggler_failovers); the engine sums them into the
  /// public report post-barrier, so jobs never share a report.
  dist::fault_report rep;
  /// SoA Eq. 4 evaluator, rebound over `costs` every round. Rebinding is
  /// O(m) coefficient copies — caching by pointer identity is unsound
  /// because environments free each round's cost functions afterwards, so
  /// a recycled address can alias a *different* function next round.
  cost::batch_evaluator batch;

  shard_rt(std::size_t members, shard_protocol mode, net::fault_plan local,
           std::size_t retry_budget, obs::tracer* tracer,
           std::uint32_t lane_id)
      : m(members),
        faults(std::move(local)),
        faulty(faults.enabled()),
        net(make_shard_net(members, mode)),
        lane(lane_id) {
    net.attach_tracer(tracer, lane);
    if (faulty) {
      net.attach_faults(faults);
      rel = std::make_unique<net::reliable_link>(
          net, net::reliable_options{retry_budget});
      rel->attach_tracer(tracer, lane);
    }
    flags.setup(m, /*all_pairs=*/mode == shard_protocol::fully_distributed);
    scratch.tentative.assign(m, 0.0);
    scratch.xp.assign(m, 0.0);
    costs.assign(m, nullptr);
    locals.assign(m, 0.0);
  }
};

namespace {

// The stage-split round machines, instantiated per shard exactly as the
// flat engines instantiate them — the delivery policy is the only degree
// of freedom (direct for a fault-free shard, reliable otherwise), plus
// the shard's persistent batch evaluator so Eq. 4 runs on the SoA path.
template <class Delivery>
dist::mw_stage_result mw_upload(hierarchical_engine::shard_rt& sh,
                                Delivery wire, std::uint64_t round,
                                obs::tracer* tr, std::uint32_t lane,
                                obs::counter* failover,
                                dist::fault_report& report,
                                std::size_t cap_workers,
                                dist::degraded_outcome& out) {
  dist::mw_null_timing timing;
  dist::mw_degraded_round<Delivery, dist::mw_null_timing> flow{
      sh.m,    static_cast<net::node_id>(sh.m),
      sh.costs, sh.locals,
      sh.faults, wire,
      timing,  tr,
      lane,    failover,
      report,  sh.x,
      sh.alpha_view, sh.scratch,
      sh.flags, sh.mass,
      cap_workers, &sh.batch};
  return flow.stage_upload(round, out);
}

template <class Delivery>
void mw_commit(hierarchical_engine::shard_rt& sh, Delivery wire,
               std::uint64_t round, double l_t, obs::tracer* tr,
               std::uint32_t lane, obs::counter* failover,
               dist::fault_report& report, std::size_t cap_workers,
               dist::degraded_outcome& out) {
  dist::mw_null_timing timing;
  dist::mw_degraded_round<Delivery, dist::mw_null_timing> flow{
      sh.m,    static_cast<net::node_id>(sh.m),
      sh.costs, sh.locals,
      sh.faults, wire,
      timing,  tr,
      lane,    failover,
      report,  sh.x,
      sh.alpha_view, sh.scratch,
      sh.flags, sh.mass,
      cap_workers, &sh.batch};
  flow.stage_commit(round, l_t, out);
}

template <class Delivery>
dist::fd_stage_result fd_broadcast(hierarchical_engine::shard_rt& sh,
                                   Delivery wire, std::uint64_t round,
                                   obs::tracer* tr, std::uint32_t lane,
                                   obs::counter* failover,
                                   dist::fault_report& report,
                                   std::size_t cap_workers,
                                   dist::degraded_outcome& out) {
  dist::fd_null_timing timing;
  dist::fd_degraded_round<Delivery, dist::fd_null_timing> flow{
      sh.m,    sh.costs,
      sh.locals, sh.faults,
      wire,    timing,
      tr,      lane,
      failover, report,
      sh.x,    sh.alpha_bar,
      sh.scratch, sh.flags,
      sh.mass, cap_workers,
      &sh.batch};
  return flow.stage_broadcast(round, out);
}

template <class Delivery>
void fd_commit(hierarchical_engine::shard_rt& sh, Delivery wire,
               std::uint64_t round, double l_t, double alpha_t,
               obs::tracer* tr, std::uint32_t lane, obs::counter* failover,
               dist::fault_report& report, std::size_t cap_workers,
               dist::degraded_outcome& out) {
  dist::fd_null_timing timing;
  dist::fd_degraded_round<Delivery, dist::fd_null_timing> flow{
      sh.m,    sh.costs,
      sh.locals, sh.faults,
      wire,    timing,
      tr,      lane,
      failover, report,
      sh.x,    sh.alpha_bar,
      sh.scratch, sh.flags,
      sh.mass, cap_workers,
      &sh.batch};
  flow.stage_commit(round, l_t, alpha_t, out);
}

}  // namespace

hierarchical_engine::hierarchical_engine(std::size_t n_workers,
                                         hierarchical_options options)
    : n_(n_workers),
      options_(std::move(options)),
      plan_(make_shard_plan(n_workers, options_.plan)),
      tree_(plan_, options_.protocol.tracer, options_.protocol.trace_lane) {
  dist::normalize_options(options_.protocol, n_);
  net::validate_crash_schedule(options_.aggregator_crashes,
                               plan_.aggregators());
  agg_plan_.crashes = options_.aggregator_crashes;
  faulty_ = options_.protocol.faults.enabled() ||
            !options_.aggregator_crashes.empty();
  // Engage repair only when something can actually die permanently, so
  // zero-fault rounds stay on the exact pre-repair code path.
  repair_active_ = options_.self_heal && (!options_.aggregator_crashes.empty() ||
                                          options_.outage_threshold > 0);
  revive_round_.assign(plan_.aggregators(), 0);
  outage_streak_.assign(plan_.aggregators(), 0);

  const std::size_t n_shards = plan_.shards();
  shards_.reserve(n_shards);
  for (std::size_t k = 0; k < n_shards; ++k) {
    // Shard k records on trace_lane + k: one writer per lane within every
    // barrier window, and the (round, lane, seq) merge keeps the combined
    // trace byte-identical at any pool width. K = 1 keeps everything on
    // trace_lane — the PR 7 layout.
    shards_.push_back(std::make_unique<shard_rt>(
        plan_.members[k].size(), options_.mode,
        shard_faults(options_.protocol.faults, plan_, k),
        options_.protocol.retry_budget, options_.protocol.tracer,
        options_.protocol.trace_lane + static_cast<std::uint32_t>(k)));
  }

  // The intra-round pool: only worth owning when there is both work to
  // split (more than one shard) and width to split it over. Serial and
  // pooled execution are bit-identical, so this is purely a perf choice.
  const std::size_t width =
      options_.threads != 0 ? options_.threads : default_thread_count();
  if (n_shards > 1 && width > 1) {
    pool_ = std::make_unique<thread_pool>(width);
    tree_.set_pool(pool_.get());
  }

  counters_.bind(options_.protocol.metrics, "hier", "hier.alpha", faulty_);
  if (options_.protocol.metrics != nullptr) {
    options_.protocol.metrics->gauge_named("shard.level_depth")
        .set(static_cast<double>(plan_.depth));
    options_.protocol.metrics->gauge_named("shard.fanin")
        .set(static_cast<double>(plan_.fanin));
    repairs_counter_ =
        &options_.protocol.metrics->counter_named("shard.tree_repairs");
  }

  leaf_max_.assign(n_shards, 0.0);
  leaf_min_.assign(n_shards, 0.0);
  contribute_.assign(n_shards, 0);
  pass3_.assign(n_shards, 0);
  reached_.assign(n_shards, 0);
  agg_live_.assign(plan_.aggregators(), 1);
  outcomes_.assign(n_shards, {});
  ran_.assign(n_shards, 0);
  participants_.assign(n_shards, 0);
  reset();
}

hierarchical_engine::~hierarchical_engine() = default;

std::string_view hierarchical_engine::name() const {
  return options_.mode == shard_protocol::master_worker ? "DOLBIE-HIER-MW"
                                                        : "DOLBIE-HIER-FD";
}

void hierarchical_engine::reset() {
  const core::allocation& part = options_.protocol.initial_partition;
  const double alpha1 = options_.protocol.initial_step >= 0.0
                            ? options_.protocol.initial_step
                            : core::initial_step_size(part);
  alpha_ = alpha1;

  // Shard masses are algebraic, not merely numeric: shard 0 takes the
  // complement of the others, so the masses sum to exactly 1.0 — and a
  // single shard's mass is exactly 1.0, the flat engines' target.
  double others = 0.0;
  for (std::size_t k = plan_.shards(); k-- > 0;) {
    shard_rt& sh = *shards_[k];
    sh.x.resize(sh.m);
    double own = 0.0;
    for (std::size_t slot = 0; slot < sh.m; ++slot) {
      sh.x[slot] = part[plan_.members[k][slot]];
      own += sh.x[slot];
    }
    if (k > 0) {
      sh.mass = own;
      others += own;
    } else {
      sh.mass = 1.0 - others;
    }
    sh.alpha_bar.assign(sh.m, alpha1);
    sh.alpha_view = alpha1;
    sh.carry_cap = std::numeric_limits<double>::infinity();
    sh.flags.setup(sh.m, /*all_pairs=*/options_.mode ==
                             shard_protocol::fully_distributed);
    sh.rep = {};
    if (sh.rel != nullptr) sh.rel->reset();
    // Fault rolls key on per-link attempt counters that deliberately
    // survive reset_traffic (they are configuration, not accounting);
    // re-attaching the plan rewinds them so a replay reproduces the
    // exact fault transcript.
    if (sh.faulty) sh.net.attach_faults(sh.faults);
    sh.net.reset_traffic();
  }
  tree_.reset();
  std::fill(revive_round_.begin(), revive_round_.end(), std::uint64_t{0});
  std::fill(outage_streak_.begin(), outage_streak_.end(), std::uint64_t{0});
  repairs_.clear();
  assembled_ = part;
  round_ = 0;
  report_ = {};
  mirrored_ = {};
  last_traffic_ = {};
  traffic_mark_ = {};
}

void hierarchical_engine::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;

  const bool mw = options_.mode == shard_protocol::master_worker;
  const std::size_t n_shards = plan_.shards();
  obs::tracer* tr = options_.protocol.tracer;
  const std::uint32_t lane = options_.protocol.trace_lane;
  traffic_mark_ = cumulative_traffic();
  obs::span round_span(tr, lane, round, "round", "shard");

  // Self-healing first: a node diagnosed permanently dead (kNever window
  // open, or outage streak past the threshold) is repaired before this
  // round's liveness is read, so the repaired topology carries the round.
  if (repair_active_) heal(round, tr, lane);

  // Round-granular aggregator liveness: a node that dies mid-round is
  // absent for the whole round (its shard holds; no partial summaries).
  // Under repair, windows older than a promotion's takeover round no
  // longer name the node (the replacement host is a different machine),
  // and excised nodes are simply gone.
  for (std::size_t a = 0; a < plan_.aggregators(); ++a) {
    if (repair_active_) {
      agg_live_[a] =
          (!tree_.retired(a) &&
           !agg_plan_.down(static_cast<net::node_id>(a), round,
                           revive_round_[a]) &&
           !agg_plan_.crashed_during(static_cast<net::node_id>(a), round,
                                     revive_round_[a]))
              ? 1
              : 0;
    } else {
      agg_live_[a] = (!agg_plan_.down(static_cast<net::node_id>(a), round) &&
                      !agg_plan_.crashed_during(static_cast<net::node_id>(a),
                                                round))
                         ? 1
                         : 0;
    }
  }
  if (repair_active_) {
    for (std::size_t a = 0; a < plan_.aggregators(); ++a) {
      if (tree_.retired(a) || agg_live_[a] != 0) {
        outage_streak_[a] = 0;
      } else {
        ++outage_streak_[a];
      }
    }
  }

  // Fan a per-shard stage over the pool (serial when there is none). Each
  // job touches only its own shard_rt and the k-indexed staging slots —
  // zero shared mutable state — and all work is keyed by shard id alone,
  // so the round is bit-identical at any pool width.
  const auto over_shards = [&](const std::function<void(std::size_t)>& job) {
    if (pool_ != nullptr) {
      pool_->parallel_for(n_shards, job);
    } else {
      for (std::size_t k = 0; k < n_shards; ++k) job(k);
    }
  };

  // --- Stage A: every shard with a live leaf aggregator runs the first
  //     stage of its round machine (membership + cost exchange) and
  //     produces its summary. ---
  over_shards([&](std::size_t k) {
    shard_rt& sh = *shards_[k];
    outcomes_[k] = {};
    ran_[k] = 0;
    contribute_[k] = 0;
    participants_[k] = 0;
    sh.net.set_round(round);
    if (mw) sh.alpha_view = alpha_;
    if (agg_live_[k] == 0) {
      // The shard is headless this round: every standing member holds.
      // Recorded in the shard's outcome slot; the post-barrier accounting
      // folds it into the round's totals.
      for (std::size_t slot = 0; slot < sh.m; ++slot) {
        if (sh.flags.removed[slot] == 0) ++outcomes_[k].holds;
      }
      return;
    }
    for (std::size_t slot = 0; slot < sh.m; ++slot) {
      const core::worker_id g = plan_.members[k][slot];
      sh.costs[slot] = (*feedback.costs)[g];
      sh.locals[slot] = feedback.local_costs[g];
    }
    sh.batch.rebind(sh.costs);
    ran_[k] = 1;
    if (mw) {
      const dist::mw_stage_result up =
          sh.faulty
              ? mw_upload(sh, net::reliable_delivery{*sh.rel}, round, tr,
                          sh.lane, counters_.failover, sh.rep, n_,
                          outcomes_[k])
              : mw_upload(sh, net::direct_delivery{sh.net}, round, tr,
                          sh.lane, counters_.failover, sh.rep, n_,
                          outcomes_[k]);
      participants_[k] = up.heard;
      if (!outcomes_[k].aborted) {
        contribute_[k] = 1;
        leaf_max_[k] = up.max_cost;
        leaf_min_[k] = sh.alpha_view;  // retire caps already folded in
      }
    } else {
      const dist::fd_stage_result up =
          sh.faulty
              ? fd_broadcast(sh, net::reliable_delivery{*sh.rel}, round, tr,
                             sh.lane, counters_.failover, sh.rep, n_,
                             outcomes_[k])
              : fd_broadcast(sh, net::direct_delivery{sh.net}, round, tr,
                             sh.lane, counters_.failover, sh.rep, n_,
                             outcomes_[k]);
      participants_[k] = up.participants;
      if (!outcomes_[k].aborted) {
        contribute_[k] = 1;
        leaf_max_[k] = up.max_cost;
        leaf_min_[k] = up.min_alpha;
      }
    }
  });

  // --- Tree up: fold (max cost, min step) to the root... ---
  const reduce_result up =
      tree_.reduce(round, leaf_max_, leaf_min_, contribute_, agg_live_);

  // --- ...and down: the consensus pair reaches every shard whose path to
  //     the root is all-live. No contributor at the root (dead root, or
  //     every contributing subtree cut off) aborts the round globally. ---
  if (up.contributors > 0) {
    tree_.broadcast(round, up.max_value, up.min_value, agg_live_, reached_);
  } else {
    std::fill(reached_.begin(), reached_.end(), 0);
  }

  // --- Stage B: shards that contributed and heard back commit against
  //     the global consensus; everyone else holds. ---
  over_shards([&](std::size_t k) {
    shard_rt& sh = *shards_[k];
    if (ran_[k] == 0 || contribute_[k] == 0 || reached_[k] == 0) return;
    if (mw) {
      sh.alpha_view = up.min_value;  // adopt the broadcast consensus step
      if (sh.faulty) {
        mw_commit(sh, net::reliable_delivery{*sh.rel}, round, up.max_value,
                  tr, sh.lane, counters_.failover, sh.rep, n_, outcomes_[k]);
      } else {
        mw_commit(sh, net::direct_delivery{sh.net}, round, up.max_value, tr,
                  sh.lane, counters_.failover, sh.rep, n_, outcomes_[k]);
      }
    } else {
      if (sh.faulty) {
        fd_commit(sh, net::reliable_delivery{*sh.rel}, round, up.max_value,
                  up.min_value, tr, sh.lane, counters_.failover, sh.rep, n_,
                  outcomes_[k]);
      } else {
        fd_commit(sh, net::direct_delivery{sh.net}, round, up.max_value,
                  up.min_value, tr, sh.lane, counters_.failover, sh.rep, n_,
                  outcomes_[k]);
      }
      if (!outcomes_[k].aborted) {
        sh.x.swap(sh.scratch.next_x);
        // Same zero-share corner as the MW candidate: a clamped absorber
        // tightens its local bound to an exact zero, which would freeze
        // the whole tree's consensus permanently. Restore the round's
        // consensus step — renormalization already absorbed the overrun.
        for (double& bound : sh.alpha_bar) {
          if (bound <= 0.0) bound = up.min_value;
        }
      }
    }
  });

  // --- Post-barrier fold (serial, shard-id order — the exact order the
  //     serial walk used): hold/failover sums, the Eq. 7 carry caps and
  //     the global straggler election. ---
  std::size_t total_holds = 0;
  std::size_t total_failovers = 0;
  bool any_committed = false;
  core::worker_id straggler_global = 0;
  bool straggler_known = false;
  double straggler_cost = 0.0;
  for (std::size_t k = 0; k < n_shards; ++k) {
    shard_rt& sh = *shards_[k];
    const bool committed =
        ran_[k] != 0 && contribute_[k] != 0 && reached_[k] != 0;
    if (!committed) {
      if (ran_[k] != 0) total_holds += participants_[k];
      // A shard cut off from the root cannot announce an Eq. 7 cap it
      // discovered through churn this round; carry it until it can.
      if (mw && ran_[k] != 0 && reached_[k] == 0) {
        sh.carry_cap = std::min(sh.carry_cap, sh.alpha_view);
      }
      total_holds += outcomes_[k].holds;
      total_failovers += outcomes_[k].failovers;
      continue;
    }
    total_holds += outcomes_[k].holds;
    total_failovers += outcomes_[k].failovers;
    if (!outcomes_[k].aborted) {
      any_committed = true;
      // The global straggler (for the gauge / round span): the committed
      // shard owning the global max — same strict-greater, lowest-first
      // chain as the flat election.
      if (!straggler_known || leaf_max_[k] > straggler_cost) {
        straggler_known = true;
        straggler_cost = leaf_max_[k];
        straggler_global = plan_.members[k][outcomes_[k].straggler];
      }
    }
  }

  // --- MW pass C: fold the Eq. 7 candidates (committed shards) and the
  //     current views (aborted-but-reached shards — they still carry any
  //     churn re-cap) back to the root; the min is alpha_{t+1}. ---
  if (mw && up.contributors > 0) {
    // Eq. 7 is driven by the global straggler's post-move share alone, so
    // only the committed shard owning the global max folds in its
    // alpha_candidate. Every other reached shard contributes its current
    // view (consensus plus any churn re-cap): their local absorbers are
    // clamped against the global l_t and would otherwise zero the step.
    std::size_t owner = n_shards;
    for (std::size_t k = 0; k < n_shards; ++k) {
      if (ran_[k] != 0 && contribute_[k] != 0 && reached_[k] != 0 &&
          !outcomes_[k].aborted && leaf_max_[k] == up.max_value) {
        owner = k;
        break;
      }
    }
    for (std::size_t k = 0; k < n_shards; ++k) {
      shard_rt& sh = *shards_[k];
      pass3_[k] = 0;
      if (ran_[k] == 0 || reached_[k] == 0) continue;
      double cand =
          k == owner ? outcomes_[k].alpha_candidate : sh.alpha_view;
      // A shard's absorber can clamp to an exact zero share (the climb
      // toward the global l_t overran the shard's fixed mass and the
      // renormalization safety net took over). Eq. 7 is mute at s = 0 —
      // hold the consensus step instead of freezing the system forever.
      if (cand <= 0.0) cand = sh.alpha_view;
      cand = std::min(cand, sh.carry_cap);
      sh.carry_cap = std::numeric_limits<double>::infinity();
      leaf_min_[k] = cand;
      leaf_max_[k] = cand;  // unused by the min fold
      pass3_[k] = 1;
    }
    const reduce_result caps =
        tree_.reduce(round, leaf_max_, leaf_min_, pass3_, agg_live_);
    if (caps.contributors > 0) alpha_ = caps.min_value;
  } else if (!mw && any_committed) {
    alpha_ = up.min_value;  // display: the round's consensus step
  }

  // --- Accounting: the shared degraded-round semantics, aggregated over
  //     every shard (mirrors finish_degraded_round). ---
  const bool global_abort = !any_committed;
  if (global_abort) ++report_.aborted_rounds;
  const bool degraded = total_holds > 0 || total_failovers > 0 ||
                        global_abort;
  if (degraded) {
    ++report_.degraded_rounds;
    if (counters_.degraded != nullptr) counters_.degraded->add(1);
    if (tr != nullptr) {
      tr->instant(lane, round, "degraded_round", "shard",
                  {obs::arg_int("holds", total_holds),
                   obs::arg_int("aborted", global_abort ? 1 : 0)});
    }
  }
  report_.zero_step_holds += total_holds;
  // The round machines counted removals/failovers into their shard's own
  // report (thread-confined); the public totals are the order-free sums of
  // those cumulative per-shard counters.
  report_.removed_workers = 0;
  report_.straggler_failovers = 0;
  for (const auto& shp : shards_) {
    report_.removed_workers += shp->rep.removed_workers;
    report_.straggler_failovers += shp->rep.straggler_failovers;
  }
  net::reliable_stats agg;
  for (const auto& shp : shards_) {
    if (shp->rel == nullptr) continue;
    const net::reliable_stats& s = shp->rel->stats();
    agg.retransmits += s.retransmits;
    agg.timeouts += s.timeouts;
    agg.deadlines_expired += s.deadlines_expired;
    agg.duplicates_discarded += s.duplicates_discarded;
    agg.stale_purged += s.stale_purged;
  }
  if (counters_.retransmits != nullptr) {
    counters_.retransmits->add(agg.retransmits - mirrored_.retransmits);
    counters_.timeouts->add(agg.timeouts - mirrored_.timeouts);
  }
  mirrored_ = agg;
  report_.retransmits = agg.retransmits;
  report_.timeouts = agg.timeouts;
  report_.duplicates_discarded = agg.duplicates_discarded;

  assemble();
  DOLBIE_REQUIRE(on_simplex(assembled_),
                 "hierarchical round " << round
                                       << " left the allocation off the "
                                          "simplex");
  const net::traffic_totals totals = cumulative_traffic();
  last_traffic_ = {totals.messages_sent - traffic_mark_.messages_sent,
                   totals.bytes_sent - traffic_mark_.bytes_sent};
  round_span.arg("straggler",
                 straggler_known
                     ? static_cast<std::uint64_t>(straggler_global)
                     : static_cast<std::uint64_t>(n_));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  counters_.round_complete(
      alpha_, straggler_known ? static_cast<double>(straggler_global) : -1.0);
}

void hierarchical_engine::heal(std::uint64_t round, obs::tracer* tr,
                               std::uint32_t lane) {
  // Ascending id order: children are examined before their ancestors, so a
  // cascade (a node excised onto a parent that is itself dead) resolves in
  // one deterministic pass — the parent's own repair sees the children it
  // just absorbed.
  for (std::size_t a = 0; a < plan_.aggregators(); ++a) {
    if (tree_.retired(a)) continue;
    const bool perm = agg_plan_.permanently_down(static_cast<net::node_id>(a),
                                                 round, revive_round_[a]);
    const bool streak_dead = options_.outage_threshold > 0 &&
                             outage_streak_[a] >= options_.outage_threshold;
    if (!perm && !streak_dead) continue;
    repair_aggregator(a, round, tr, lane);
  }
}

void hierarchical_engine::repair_aggregator(std::size_t node,
                                            std::uint64_t round,
                                            obs::tracer* tr,
                                            std::uint32_t lane) {
  tree_repair rec;
  rec.round = round;
  rec.node = node;
  if (tree_.can_reparent(node)) {
    // Excise the dead internal node: its children fit into the
    // grandparent within the fan-in bound, so the subtree re-homes with
    // no replacement host needed.
    rec.act = tree_repair::action::reparented;
    rec.replacement = tree_.current_parent(node);
    tree_.reparent_children(node);
  } else {
    // Promote: the lowest-id live worker of the subtree takes over the
    // tree-node id (the same lowest-id tie-break the straggler election
    // uses). Crash windows opening before this round stop applying — the
    // id now names a different machine.
    rec.act = tree_repair::action::promoted;
    rec.replacement = lowest_live_worker_below(node);
    revive_round_[node] = round;
    outage_streak_[node] = 0;
  }
  repairs_.push_back(rec);
  if (repairs_counter_ != nullptr) repairs_counter_->add(1);
  if (tr != nullptr) {
    tr->instant(lane, round, "tree_repaired", "shard",
                {obs::arg_int("node", rec.node),
                 obs::arg_int("reparented",
                              rec.act == tree_repair::action::reparented ? 1
                                                                         : 0),
                 obs::arg_int("replacement", rec.replacement)});
  }
}

std::size_t hierarchical_engine::lowest_live_worker_below(
    std::size_t node) const {
  // Min-fold over the subtree's leaves in the current (repaired)
  // topology; within a shard the members are ascending, so the first
  // standing slot is that shard's lowest global id.
  std::vector<std::size_t> stack{node};
  std::size_t best = n_;  // sentinel: every member churned away
  while (!stack.empty()) {
    const std::size_t a = stack.back();
    stack.pop_back();
    if (a < plan_.shards()) {
      const shard_rt& sh = *shards_[a];
      for (std::size_t slot = 0; slot < sh.m; ++slot) {
        if (sh.flags.removed[slot] == 0) {
          best = std::min(best,
                          static_cast<std::size_t>(plan_.members[a][slot]));
          break;
        }
      }
      continue;
    }
    for (const std::size_t c : tree_.current_children(a)) stack.push_back(c);
  }
  return best;
}

std::vector<std::uint8_t> hierarchical_engine::snapshot() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::hierarchical, n_);
  w.f64(alpha_);
  w.u64(round_);
  dist::snapshot_report(w, report_);
  dist::snapshot_reliable_stats(w, mirrored_);
  w.u64(last_traffic_.messages_sent);
  w.u64(last_traffic_.bytes_sent);
  // Repair history first: restore replays the reparented entries against
  // a reset tree, so the network shapes agree before the tree's own bytes
  // are read.
  w.u64(repairs_.size());
  for (const tree_repair& rec : repairs_) {
    w.u64(rec.round);
    w.u64(rec.node);
    w.u8(static_cast<std::uint8_t>(rec.act));
    w.u64(rec.replacement);
  }
  for (const std::uint64_t v : revive_round_) w.u64(v);
  for (const std::uint64_t v : outage_streak_) w.u64(v);
  tree_.snapshot_to(w);
  for (const auto& shp : shards_) {
    const shard_rt& sh = *shp;
    w.u64(sh.m);
    w.f64(sh.mass);
    for (const double v : sh.x) w.f64(v);
    for (const double v : sh.alpha_bar) w.f64(v);
    w.f64(sh.alpha_view);
    w.f64_or_inf(sh.carry_cap);
    for (const std::uint8_t v : sh.flags.removed) w.u8(v);
    dist::snapshot_report(w, sh.rep);
    sh.net.snapshot_to(w);
    w.u8(sh.rel != nullptr ? 1 : 0);
    if (sh.rel != nullptr) sh.rel->snapshot_to(w);
  }
  return w.take();
}

void hierarchical_engine::restore(const std::vector<std::uint8_t>& bytes) {
  reset();
  try {
    snapshot_reader r(bytes);
    read_snapshot_header(r, snapshot_kind::hierarchical, n_);
    alpha_ = r.f64();
    round_ = r.u64();
    dist::restore_report(r, report_);
    dist::restore_reliable_stats(r, mirrored_);
    last_traffic_.messages_sent = static_cast<std::size_t>(r.u64());
    last_traffic_.bytes_sent = static_cast<std::size_t>(r.u64());
    const std::uint64_t n_repairs = r.u64();
    r.require_count(n_repairs, 25);
    repairs_.clear();
    repairs_.reserve(n_repairs);
    for (std::uint64_t i = 0; i < n_repairs; ++i) {
      tree_repair rec;
      rec.round = r.u64();
      rec.node = static_cast<std::size_t>(r.u64());
      const std::uint8_t act = r.u8();
      rec.replacement = static_cast<std::size_t>(r.u64());
      DOLBIE_REQUIRE(rec.node < plan_.aggregators() && act <= 1,
                     "snapshot repair log entry is malformed");
      rec.act = static_cast<tree_repair::action>(act);
      repairs_.push_back(rec);
    }
    for (const tree_repair& rec : repairs_) {
      if (rec.act == tree_repair::action::reparented) {
        tree_.reparent_children(rec.node);
      }
    }
    for (std::uint64_t& v : revive_round_) v = r.u64();
    for (std::uint64_t& v : outage_streak_) v = r.u64();
    tree_.restore_from(r);
    for (auto& shp : shards_) {
      shard_rt& sh = *shp;
      const std::uint64_t m = r.u64();
      DOLBIE_REQUIRE(m == sh.m, "snapshot shard has "
                                    << m << " members, this shard has "
                                    << sh.m);
      sh.mass = r.f64();
      for (double& v : sh.x) v = r.f64();
      for (double& v : sh.alpha_bar) v = r.f64();
      sh.alpha_view = r.f64();
      sh.carry_cap = r.f64_or_inf();
      for (std::uint8_t& v : sh.flags.removed) {
        v = r.u8();
        DOLBIE_REQUIRE(v <= 1, "snapshot membership flag is not 0/1");
      }
      dist::restore_report(r, sh.rep);
      sh.net.restore_from(r);
      const std::uint8_t has_rel = r.u8();
      DOLBIE_REQUIRE((has_rel != 0) == (sh.rel != nullptr),
                     "snapshot reliable-link flag does not match this "
                     "shard's fault configuration");
      if (sh.rel != nullptr) sh.rel->restore_from(r);
    }
    r.finish();
  } catch (...) {
    reset();
    throw;
  }
  assemble();
}

void hierarchical_engine::assemble() {
  // Shards partition the worker ids, so the slice writes are disjoint.
  const auto write_slice = [&](std::size_t k) {
    const shard_rt& sh = *shards_[k];
    for (std::size_t slot = 0; slot < sh.m; ++slot) {
      assembled_[plan_.members[k][slot]] = sh.x[slot];
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(plan_.shards(), write_slice);
  } else {
    for (std::size_t k = 0; k < plan_.shards(); ++k) write_slice(k);
  }
}

net::traffic_totals hierarchical_engine::cumulative_traffic() const {
  net::traffic_totals out = tree_.traffic();
  for (const auto& shp : shards_) {
    const net::traffic_totals t = shp->net.total_traffic();
    out.messages_sent += t.messages_sent;
    out.bytes_sent += t.bytes_sent;
  }
  return out;
}

net::traffic_totals hierarchical_engine::total_traffic() const {
  return cumulative_traffic();
}

std::uint64_t hierarchical_engine::worker_messages_sent(
    core::worker_id i) const {
  const shard_rt& sh = *shards_[plan_.shard_of[i]];
  return sh.net.peer_messages_sent(
      static_cast<net::node_id>(plan_.slot_of[i]));
}

std::uint64_t hierarchical_engine::aggregator_messages_sent(
    std::size_t a) const {
  std::uint64_t total = tree_.node_messages_sent(a);
  if (a < plan_.shards() && options_.mode == shard_protocol::master_worker) {
    const shard_rt& sh = *shards_[a];
    total += sh.net.peer_messages_sent(static_cast<net::node_id>(sh.m));
  }
  return total;
}

std::uint64_t hierarchical_engine::aggregator_bytes_sent(
    std::size_t a) const {
  std::uint64_t total = tree_.node_bytes_sent(a);
  if (a < plan_.shards() && options_.mode == shard_protocol::master_worker) {
    const shard_rt& sh = *shards_[a];
    total += sh.net.peer_bytes_sent(static_cast<net::node_id>(sh.m));
  }
  return total;
}

std::uint64_t hierarchical_engine::max_node_messages_sent() const {
  std::uint64_t peak = 0;
  for (core::worker_id i = 0; i < n_; ++i) {
    peak = std::max(peak, worker_messages_sent(i));
  }
  for (std::size_t a = 0; a < plan_.aggregators(); ++a) {
    peak = std::max(peak, aggregator_messages_sent(a));
  }
  return peak;
}

std::uint64_t hierarchical_engine::max_node_bytes_sent() const {
  std::uint64_t peak = 0;
  for (core::worker_id i = 0; i < n_; ++i) {
    const shard_rt& sh = *shards_[plan_.shard_of[i]];
    peak = std::max(peak, sh.net.peer_bytes_sent(static_cast<net::node_id>(
                              plan_.slot_of[i])));
  }
  for (std::size_t a = 0; a < plan_.aggregators(); ++a) {
    peak = std::max(peak, aggregator_bytes_sent(a));
  }
  return peak;
}

}  // namespace dolbie::shard
