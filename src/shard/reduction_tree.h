// The O(log N) aggregation layer of the hierarchical engine: a sparse
// net::network over the plan's aggregator nodes carries shard summaries up
// the tree (`reduce`: max cost, min step, contributor count) and the
// round's consensus pair back down (`broadcast`: l_t, alpha_t). Every hop
// is a real wire message (message_kind::shard_reduce / shard_broadcast),
// so traffic accounting and the per-node O(shard size + log N) message
// bound fall out of the ordinary per-peer counters.
//
// Aggregator failures are round-granular: a node named down by the
// engine's liveness vector neither sends nor combines this round, and —
// the membership-oracle shortcut the round machines already use — its
// children skip sending to it, so no stale summary ever survives into a
// later round. A dead interior node silently detaches its whole subtree:
// the shards below it hold (the engine sees `reached[k] == false`) while
// the rest of the tree completes normally.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "shard/plan.h"

namespace dolbie {
class thread_pool;
}  // namespace dolbie

namespace dolbie::obs {
class tracer;
}  // namespace dolbie::obs

namespace dolbie::shard {

/// What the root learned this round.
struct reduce_result {
  double max_value = 0.0;
  double min_value = 0.0;
  /// Total leaf contributors folded into the root's summary; 0 when the
  /// root itself was down or every contributing subtree was cut off.
  std::size_t contributors = 0;
};

class reduction_tree {
 public:
  /// Per-level reduce/broadcast spans are recorded on `lane` when a
  /// tracer is attached (category "shard").
  reduction_tree(const shard_plan& plan, obs::tracer* tracer,
                 std::uint32_t lane);

  /// Run each level's relay in parallel over its parent nodes (nullptr =
  /// serial). One job per live parent performs its children's sends and
  /// its own folds, so every (child, parent) channel — and every child's
  /// partial/receipt slot — has exactly one writer per level; levels are
  /// barriers. Folds stay in child-id order inside each job, so the
  /// result is bit-identical to the serial walk at any pool width. The
  /// pool is borrowed, not owned, and must outlive the tree's use.
  void set_pool(thread_pool* pool) { pool_ = pool; }

  /// Fold the leaf summaries up to the root. Leaf k contributes
  /// (leaf_max[k], leaf_min[k]) iff contribute[k] != 0 and the leaf is
  /// live; values from distinct children are combined in child-id order,
  /// so the result is deterministic and — max/min being order-free —
  /// equal to the flat engine's scan.
  reduce_result reduce(std::uint64_t round,
                       const std::vector<double>& leaf_max,
                       const std::vector<double>& leaf_min,
                       const std::vector<std::uint8_t>& contribute,
                       const std::vector<std::uint8_t>& agg_live);

  /// Push the consensus pair (a, b) from the root down; reached[k] is set
  /// for every shard whose leaf received it over an all-live path.
  void broadcast(std::uint64_t round, double a, double b,
                 const std::vector<std::uint8_t>& agg_live,
                 std::vector<std::uint8_t>& reached);

  /// Cumulative tree traffic (the sparse network's totals).
  net::traffic_totals traffic() const { return net_.total_traffic(); }
  /// Cumulative messages sent by one aggregator on tree links.
  std::uint64_t node_messages_sent(std::size_t agg) const {
    return net_.peer_messages_sent(static_cast<net::node_id>(agg));
  }
  std::uint64_t node_bytes_sent(std::size_t agg) const {
    return net_.peer_bytes_sent(static_cast<net::node_id>(agg));
  }

  void reset() { net_.reset_traffic(); }

 private:
  const shard_plan* plan_;
  net::network net_;
  /// Aggregator ids grouped by tree level (level_nodes_[0] = the leaves),
  /// ascending within a level.
  std::vector<std::vector<std::size_t>> level_nodes_;
  /// Per-round partial summaries, indexed by aggregator id.
  std::vector<double> part_max_;
  std::vector<double> part_min_;
  std::vector<std::size_t> part_count_;
  std::vector<std::uint8_t> have_;  // broadcast: node holds the pair
  obs::tracer* tracer_;
  std::uint32_t lane_;
  thread_pool* pool_ = nullptr;  // intra-level parallelism (borrowed)
};

}  // namespace dolbie::shard
