// The O(log N) aggregation layer of the hierarchical engine: a sparse
// net::network over the plan's aggregator nodes carries shard summaries up
// the tree (`reduce`: max cost, min step, contributor count) and the
// round's consensus pair back down (`broadcast`: l_t, alpha_t). Every hop
// is a real wire message (message_kind::shard_reduce / shard_broadcast),
// so traffic accounting and the per-node O(shard size + log N) message
// bound fall out of the ordinary per-peer counters.
//
// Aggregator failures are round-granular: a node named down by the
// engine's liveness vector neither sends nor combines this round, and —
// the membership-oracle shortcut the round machines already use — its
// children skip sending to it, so no stale summary ever survives into a
// later round. A dead interior node silently detaches its whole subtree:
// the shards below it hold (the engine sees `reached[k] == false`) while
// the rest of the tree completes normally.
//
// Self-healing: the engine may excise a *permanently* dead internal node
// by splicing its children onto the grandparent (`reparent_children`),
// provided the merged fan-in stays within the plan's bound. The tree then
// walks the repaired topology — current_parent / current_children — while
// the plan stays immutable, so a full `reset()` restores the pristine
// shape. Repairs preserve the plan's id order invariant (every parent id
// exceeds its children's ids: a grandparent's id exceeds the excised
// node's, which exceeds its children's), so ascending id remains a
// topological order and the level walk stays deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "shard/plan.h"

namespace dolbie {
class snapshot_reader;
class snapshot_writer;
class thread_pool;
}  // namespace dolbie

namespace dolbie::obs {
class tracer;
}  // namespace dolbie::obs

namespace dolbie::shard {

/// What the root learned this round.
struct reduce_result {
  double max_value = 0.0;
  double min_value = 0.0;
  /// Total leaf contributors folded into the root's summary; 0 when the
  /// root itself was down or every contributing subtree was cut off.
  std::size_t contributors = 0;
};

/// One self-healing action taken by the engine (shard/hierarchical_engine.h)
/// — the engine keeps the ordered log; replaying the `reparented` entries
/// against a freshly reset tree reconstructs the repaired topology, which
/// is how snapshots restore it.
struct tree_repair {
  enum class action : std::uint8_t {
    /// A replacement host took over the dead node's tree-node id in
    /// place; `replacement` is the promoted worker's global id (the
    /// lowest-id live worker in the node's subtree).
    promoted = 0,
    /// The dead internal node was excised and its children now report to
    /// the grandparent; `replacement` is that grandparent's node id.
    reparented = 1,
  };

  std::uint64_t round = 0;   ///< round the repair fired
  std::size_t node = 0;      ///< the repaired tree-node id
  action act = action::promoted;
  std::size_t replacement = 0;
};

class reduction_tree {
 public:
  /// Per-level reduce/broadcast spans are recorded on `lane` when a
  /// tracer is attached (category "shard").
  reduction_tree(const shard_plan& plan, obs::tracer* tracer,
                 std::uint32_t lane);

  /// Run each level's relay in parallel over its parent nodes (nullptr =
  /// serial). One job per live parent performs its children's sends and
  /// its own folds, so every (child, parent) channel — and every child's
  /// partial/receipt slot — has exactly one writer per level; levels are
  /// barriers. Folds stay in child-id order inside each job, so the
  /// result is bit-identical to the serial walk at any pool width. The
  /// pool is borrowed, not owned, and must outlive the tree's use.
  void set_pool(thread_pool* pool) { pool_ = pool; }

  /// Fold the leaf summaries up to the root. Leaf k contributes
  /// (leaf_max[k], leaf_min[k]) iff contribute[k] != 0 and the leaf is
  /// live; values from distinct children are combined in child-id order,
  /// so the result is deterministic and — max/min being order-free —
  /// equal to the flat engine's scan.
  reduce_result reduce(std::uint64_t round,
                       const std::vector<double>& leaf_max,
                       const std::vector<double>& leaf_min,
                       const std::vector<std::uint8_t>& contribute,
                       const std::vector<std::uint8_t>& agg_live);

  /// Push the consensus pair (a, b) from the root down; reached[k] is set
  /// for every shard whose leaf received it over an all-live path.
  void broadcast(std::uint64_t round, double a, double b,
                 const std::vector<std::uint8_t>& agg_live,
                 std::vector<std::uint8_t>& reached);

  /// --- self-healing topology -------------------------------------------

  /// Whether excising internal node `d` is legal: d must be a non-root
  /// internal node whose children fit into its parent within the plan's
  /// fan-in bound (the parent sheds d and gains d's children).
  bool can_reparent(std::size_t d) const;

  /// Excise `d`: move its children (in ascending order) onto its parent,
  /// retire d, and rebuild the level walk and the tree network for the
  /// new shape. Traffic accounting carries across the rebuild. Requires
  /// can_reparent(d).
  void reparent_children(std::size_t d);

  /// Node excised by a reparent — it no longer appears on any level and
  /// carries no traffic.
  bool retired(std::size_t a) const { return retired_[a] != 0; }

  /// Current parent / children of `a` in the (possibly repaired)
  /// topology. The root still points at itself.
  std::size_t current_parent(std::size_t a) const { return cur_parent_[a]; }
  const std::vector<std::size_t>& current_children(std::size_t a) const {
    return cur_children_[a];
  }

  /// Cumulative tree traffic, carried across topology rebuilds.
  net::traffic_totals traffic() const;
  /// Cumulative messages sent by one aggregator on tree links.
  std::uint64_t node_messages_sent(std::size_t agg) const;
  std::uint64_t node_bytes_sent(std::size_t agg) const;

  /// Restore the pristine plan topology and zero the traffic accounting.
  void reset();

  /// Serialize the tree network's channels and the carried traffic bases.
  /// The topology itself is NOT written: the engine replays its repair
  /// log against a reset tree first, then calls restore_from — so the
  /// network shapes line up by construction.
  void snapshot_to(snapshot_writer& w) const;
  void restore_from(snapshot_reader& r);

 private:
  void rebuild_levels();
  void rebuild_net();

  const shard_plan* plan_;
  std::unique_ptr<net::network> net_;
  /// Repaired topology (equal to the plan's until a reparent fires).
  std::vector<std::size_t> cur_parent_;
  std::vector<std::vector<std::size_t>> cur_children_;
  std::vector<std::uint8_t> retired_;
  bool repaired_ = false;
  /// Aggregator ids grouped by tree level (level_nodes_[0] = the leaves),
  /// ascending within a level; retired nodes appear on no level.
  std::vector<std::vector<std::size_t>> level_nodes_;
  std::size_t depth_ = 1;
  /// Traffic accumulated by network instances discarded on rebuilds.
  net::traffic_totals base_traffic_;
  std::vector<std::uint64_t> base_msgs_;
  std::vector<std::uint64_t> base_bytes_;
  /// Per-round partial summaries, indexed by aggregator id.
  std::vector<double> part_max_;
  std::vector<double> part_min_;
  std::vector<std::size_t> part_count_;
  std::vector<std::uint8_t> have_;  // broadcast: node holds the pair
  obs::tracer* tracer_;
  std::uint32_t lane_;
  thread_pool* pool_ = nullptr;  // intra-level parallelism (borrowed)
};

}  // namespace dolbie::shard
