#include "shard/plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::shard {

shard_plan make_shard_plan(std::size_t n_workers,
                           const plan_options& options) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker to shard");
  DOLBIE_REQUIRE(options.fanin >= 2,
                 "reduction-tree fan-in must be at least 2, got "
                     << options.fanin);

  std::size_t size = options.shard_size;
  if (size == 0) {
    size = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n_workers))));
    size = std::max<std::size_t>(size, 2);
  }
  size = std::min(size, n_workers);

  shard_plan plan;
  plan.n_workers = n_workers;
  plan.fanin = options.fanin;

  // Membership: contiguous blocks over the (optionally shuffled) worker
  // order, then sorted ascending within each shard so shard-local index
  // order matches global id order (the election tie-breaking invariant,
  // and the K = 1 identity: members[0] == 0..N-1 verbatim).
  std::vector<core::worker_id> order(n_workers);
  std::iota(order.begin(), order.end(), core::worker_id{0});
  if (options.shuffle && n_workers > 1) {
    rng gen(options.seed);
    for (std::size_t i = n_workers - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }
  }
  const std::size_t n_shards = (n_workers + size - 1) / size;
  plan.members.resize(n_shards);
  plan.shard_of.assign(n_workers, 0);
  plan.slot_of.assign(n_workers, 0);
  for (std::size_t k = 0; k < n_shards; ++k) {
    const std::size_t begin = k * size;
    const std::size_t end = std::min(begin + size, n_workers);
    plan.members[k].assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                           order.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(plan.members[k].begin(), plan.members[k].end());
    for (std::size_t slot = 0; slot < plan.members[k].size(); ++slot) {
      plan.shard_of[plan.members[k][slot]] = k;
      plan.slot_of[plan.members[k][slot]] = slot;
    }
  }

  // Tree: group the current top level into fan-in sized runs until one
  // node remains. Ids are assigned level by level, so every level is a
  // contiguous ascending id range and the root is the last id.
  plan.parent.assign(n_shards, 0);
  plan.children.assign(n_shards, {});
  plan.level.assign(n_shards, 0);
  std::vector<std::size_t> current(n_shards);
  std::iota(current.begin(), current.end(), std::size_t{0});
  std::size_t lvl = 0;
  while (current.size() > 1) {
    ++lvl;
    std::vector<std::size_t> next;
    next.reserve((current.size() + options.fanin - 1) / options.fanin);
    for (std::size_t i = 0; i < current.size(); i += options.fanin) {
      const std::size_t node = plan.parent.size();
      plan.parent.push_back(0);
      plan.children.emplace_back();
      plan.level.push_back(lvl);
      const std::size_t stop = std::min(i + options.fanin, current.size());
      for (std::size_t j = i; j < stop; ++j) {
        plan.parent[current[j]] = node;
        plan.children[node].push_back(current[j]);
      }
      next.push_back(node);
    }
    current = std::move(next);
  }
  plan.root = current.front();
  plan.parent[plan.root] = plan.root;
  plan.depth = lvl + 1;
  return plan;
}

}  // namespace dolbie::shard
