// The hierarchical DOLBIE engine: the tentpole of the shard layer. Workers
// are partitioned by shard/plan.h; each shard runs the unified round state
// machines (dist/mw_round.h / dist/fd_round.h) over its own O(shard size)
// network, conserving its slice of the simplex mass (the round machines'
// `target` seam); shard summaries meet in shard/reduction_tree.h, which
// carries the global straggler cost l_t and the step-size consensus up and
// down in O(log N) hops. Per-node traffic is O(shard size + fan-in) per
// round — what makes N = 10^5 tractable where the flat FD engine's n^2
// broadcast is not.
//
// Equivalence guarantees (tests/hierarchical_engine_test.cpp):
//   * configured as a single shard (shard_size >= N), the engine is
//     bit-identical to the flat engines' allocations, clean and faulty:
//     the tree degenerates to one node, the shard's mass is exactly 1.0,
//     and the stage-split machines compose back into the flat round;
//   * per-shard straggler election is Eq. 6/7-safe: each shard's straggler
//     absorbs only its shard's remainder (mass is conserved shard-locally,
//     so no worker ever absorbs across shards), and every Eq. 7 candidate
//     is computed with the *global* worker count N — feasible_step_cap
//     decreases in N, so the global cap is safe inside every shard.
//
// Aggregator failures are round-granular (crash windows over tree-node
// ids): a shard whose leaf aggregator — or any tree ancestor — is down
// simply holds x_{i,t} for the round and contributes nothing; the rest of
// the hierarchy completes normally. A dead root aborts the round for
// everyone (no l_t exists). MW step-size caps discovered by a cut-off
// shard (churn retirement) are carried locally and re-announced once the
// path heals, so no Eq. 7 tightening is ever lost.
//
// Rounds execute in parallel over an engine-owned deterministic
// thread_pool (DESIGN.md §11): each shard is a thread-confined context
// (its network, reliable link, round-machine scratch, batch evaluator,
// fault counters and trace lane), Stage A and Stage B fan out one job per
// shard, the reduction tree fans out per level over its aggregators, and
// every cross-shard fold (hold/failover sums, the global straggler, the
// Eq. 7 pass) runs serially post-barrier in shard-id order — so rounds
// are bit-identical at any pool width, the PR 1 contract extended to
// intra-round execution.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "core/types.h"
#include "dist/protocol.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/reliable.h"
#include "shard/plan.h"
#include "shard/reduction_tree.h"

namespace dolbie {
class thread_pool;
}  // namespace dolbie

namespace dolbie::shard {

/// Which protocol realization runs inside each shard.
enum class shard_protocol { master_worker, fully_distributed };

struct hierarchical_options {
  /// Worker-level options, exactly as the flat engines take them: initial
  /// partition/step, observability, worker fault schedule (crash windows
  /// name *global* worker ids; the engine remaps them into shards and
  /// derives decorrelated per-shard fault seeds). When tracing, the
  /// engine and the tree record on `trace_lane` and shard k records on
  /// `trace_lane + k` — reserve K consecutive lanes per engine, so the
  /// per-lane buffers keep concurrent shard jobs contention-free and the
  /// (round, lane, seq) merge stays byte-identical at any thread count.
  dist::protocol_options protocol;
  /// Sharding and tree shape.
  plan_options plan;
  shard_protocol mode = shard_protocol::master_worker;
  /// Round-granular crash windows over aggregator (tree-node) ids,
  /// independent of the worker schedule.
  std::vector<net::crash_window> aggregator_crashes;
  /// Deterministic tree repair (DESIGN.md §12). When a node is diagnosed
  /// permanently dead — a kNever crash window has opened, or (with
  /// outage_threshold > 0) it has been down for that many consecutive
  /// rounds — the engine repairs the tree at the start of the next round:
  /// a non-root internal node whose children fit into the grandparent
  /// within the fan-in bound is excised (reparent); every other node is
  /// revived in place, modeling the lowest-id live worker of its subtree
  /// taking over the tree-node id (promotion) — crash windows opening
  /// before the takeover stop applying to the id. Repairs are a pure
  /// function of (plan, fault schedule, outage history), so runs stay
  /// bit-reproducible; zero-fault runs never repair and stay bit-identical
  /// to self_heal = false.
  bool self_heal = true;
  /// Consecutive down rounds after which a node is declared permanently
  /// dead even without a kNever window; 0 disables the streak diagnosis
  /// (explicit permanent windows still heal).
  std::size_t outage_threshold = 0;
  /// Intra-round parallelism: the pool width driving Stage A/B over the
  /// shards and the tree's per-level relays (0 = default_thread_count(),
  /// which honors DOLBIE_THREADS; 1 = serial, no pool). Any width yields
  /// bit-identical rounds — iterates, step sizes, fault reports, merged
  /// traces — asserted by tests/hierarchical_engine_test.cpp.
  std::size_t threads = 0;
};

class hierarchical_engine final : public core::online_policy {
 public:
  hierarchical_engine(std::size_t n_workers, hierarchical_options options);
  ~hierarchical_engine() override;

  std::string_view name() const override;
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  const shard_plan& plan() const { return plan_; }
  /// MW: the global step size; FD: the latest committed consensus step.
  double step_size() const { return alpha_; }
  const dist::fault_report& report() const { return report_; }
  /// Ordered log of self-healing actions taken so far (empty when
  /// self_heal is off or nothing died permanently).
  const std::vector<tree_repair>& repairs() const { return repairs_; }
  /// The repaired tree topology, for tests and tooling.
  const reduction_tree& tree() const { return tree_; }

  /// Serialize the complete cross-round state (round index, step sizes,
  /// per-shard iterates and membership, channels, reliable-link sequencing,
  /// fault cursors, repair history) into versioned snapshot bytes; restore
  /// rebuilds it so the continuation is bit-identical to the uninterrupted
  /// run. Restore throws invariant_error on corrupt or mismatched bytes,
  /// leaving the engine reset.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

  /// Traffic of the last observe() across every shard net and the tree.
  net::traffic_totals last_round_traffic() const { return last_traffic_; }
  /// Cumulative traffic across every shard net and the tree.
  net::traffic_totals total_traffic() const;
  /// Cumulative messages sent by worker i (on its shard's network).
  std::uint64_t worker_messages_sent(core::worker_id i) const;
  /// Cumulative messages/bytes sent by aggregator a: its tree links, plus
  /// — for a leaf fronting an MW shard — the co-located master's sends.
  std::uint64_t aggregator_messages_sent(std::size_t a) const;
  std::uint64_t aggregator_bytes_sent(std::size_t a) const;
  /// Max cumulative messages sent over every physical node (workers and
  /// aggregators) — divided by rounds, the O(shard size + log N) per-node
  /// bound tests/shard_scale_test.cpp asserts.
  std::uint64_t max_node_messages_sent() const;
  std::uint64_t max_node_bytes_sent() const;

  /// Opaque per-shard runtime (defined in the .cpp; public so the round
  /// machine instantiation helpers there can take it by reference).
  struct shard_rt;

 private:
  void assemble();
  net::traffic_totals cumulative_traffic() const;
  void heal(std::uint64_t round, obs::tracer* tr, std::uint32_t lane);
  void repair_aggregator(std::size_t node, std::uint64_t round,
                         obs::tracer* tr, std::uint32_t lane);
  std::size_t lowest_live_worker_below(std::size_t node) const;

  std::size_t n_;
  hierarchical_options options_;
  shard_plan plan_;
  reduction_tree tree_;
  /// Liveness predicates over aggregator ids (crashes only).
  net::fault_plan agg_plan_;
  bool faulty_ = false;
  /// Self-healing engaged: the option is on and something can actually
  /// die permanently (a crash schedule exists or a streak threshold is
  /// set) — keeps zero-fault rounds on the exact pre-repair path.
  bool repair_active_ = false;
  /// Per-aggregator: the round a promotion took over the node id (crash
  /// windows opening earlier no longer apply), and the current run of
  /// consecutive down rounds feeding outage_threshold.
  std::vector<std::uint64_t> revive_round_;
  std::vector<std::uint64_t> outage_streak_;
  std::vector<tree_repair> repairs_;
  obs::counter* repairs_counter_ = nullptr;
  std::vector<std::unique_ptr<shard_rt>> shards_;
  /// Intra-round pool (null = serial: single shard, or width 1). Shared
  /// with the tree's per-level relays; jobs only ever run shard- or
  /// parent-confined work, never a nested parallel_for on this pool.
  std::unique_ptr<thread_pool> pool_;

  core::allocation assembled_;
  double alpha_ = 0.0;
  std::uint64_t round_ = 0;
  dist::fault_report report_;
  net::reliable_stats mirrored_;
  dist::engine_counters counters_;
  net::traffic_totals last_traffic_;
  net::traffic_totals traffic_mark_;

  // Per-round staging (worker-count-free: all O(K + A)).
  std::vector<double> leaf_max_;
  std::vector<double> leaf_min_;
  std::vector<std::uint8_t> contribute_;
  std::vector<std::uint8_t> pass3_;
  std::vector<std::uint8_t> reached_;
  std::vector<std::uint8_t> agg_live_;
  std::vector<dist::degraded_outcome> outcomes_;
  std::vector<std::uint8_t> ran_;
  std::vector<std::size_t> participants_;
};

}  // namespace dolbie::shard
