// Synthetic classification datasets for the learning substrate — the
// stand-in for CIFAR-10 (see DESIGN.md §3): deterministic by seed,
// separable-but-not-trivially so training accuracy climbs over many SGD
// steps the way the paper's curves do.
#pragma once

#include <cstdint>
#include <vector>

namespace dolbie::learn {

/// A labelled feature vector.
struct example {
  std::vector<double> features;
  int label = 0;
};

/// An in-memory dataset with fixed dimensionality and class count.
class dataset {
 public:
  dataset(std::vector<example> examples, std::size_t dims, int classes);

  /// Gaussian blobs: `classes` cluster centres on a scaled hypercube's
  /// corners-ish layout, isotropic noise `spread` around each. Larger
  /// spread -> harder problem, slower accuracy climb.
  static dataset gaussian_blobs(std::size_t n_samples, std::size_t dims,
                                int classes, double spread,
                                std::uint64_t seed);

  /// Concentric rings (2-D, binary-ish generalization to `classes` rings):
  /// not linearly separable — the workload that needs the MLP.
  static dataset concentric_rings(std::size_t n_samples, int classes,
                                  double noise, std::uint64_t seed);

  std::size_t size() const { return examples_.size(); }
  std::size_t dims() const { return dims_; }
  int classes() const { return classes_; }
  const example& at(std::size_t i) const;

  /// Copy of examples [begin, begin + count): the train/test splitter
  /// (generation order is already i.i.d., so a contiguous split is a
  /// valid holdout).
  dataset subset(std::size_t begin, std::size_t count) const;

 private:
  std::vector<example> examples_;
  std::size_t dims_;
  int classes_;
};

}  // namespace dolbie::learn
