#include "learn/distributed_trainer.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "learn/parameter_server.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::learn {

double real_training_result::time_to_test_accuracy(double target) const {
  DOLBIE_REQUIRE(eval_rounds.size() == test_accuracy.size(),
                 "evaluation bookkeeping out of sync");
  const auto cumulative = round_latency.cumulative();
  for (std::size_t k = 0; k < test_accuracy.size(); ++k) {
    if (test_accuracy[k] >= target) {
      return cumulative[eval_rounds[k] - 1];
    }
  }
  return -1.0;
}

std::vector<std::size_t> partition_batch(const core::allocation& fractions,
                                         std::size_t total) {
  DOLBIE_REQUIRE(!fractions.empty(), "no workers to partition over");
  const std::size_t n = fractions.size();
  std::vector<std::size_t> counts(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (-rem, index)
  remainders.reserve(n);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    DOLBIE_REQUIRE(fractions[i] >= -1e-12,
                   "negative fraction " << fractions[i]);
    const double exact = std::max(0.0, fractions[i]) *
                         static_cast<double>(total);
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(-(exact - static_cast<double>(counts[i])), i);
  }
  DOLBIE_REQUIRE(assigned <= total, "fractions exceed the simplex");
  // Hand the leftover items to the largest remainders, lowest index first
  // on ties (the pair sorts by -remainder, then by index).
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t k = 0; k < total - assigned; ++k) {
    counts[remainders[k % n].second] += 1;
  }
  return counts;
}

real_training_result train_distributed(core::online_policy& policy,
                                       classifier& model,
                                       const dataset& train,
                                       const dataset& test,
                                       const real_training_options& options) {
  DOLBIE_REQUIRE(policy.workers() == options.n_workers,
                 "policy configured for " << policy.workers()
                                          << " workers, trainer for "
                                          << options.n_workers);
  DOLBIE_REQUIRE(options.rounds >= 1, "need at least one round");
  DOLBIE_REQUIRE(options.global_batch >= 1, "need at least one sample");
  DOLBIE_REQUIRE(options.eval_every >= 1, "eval cadence must be >= 1");
  DOLBIE_REQUIRE(train.dims() == test.dims() &&
                     train.classes() == test.classes(),
                 "train/test shape mismatch");

  policy.reset();
  ml::cluster cluster(options.n_workers, options.latency_profile,
                      options.seed, options.cluster);
  // The transferred bytes are the *real* parameter vector (f64 on the
  // wire), not a catalogue constant.
  const double model_bytes =
      static_cast<double>(model.parameter_count()) * 8.0;
  rng sampler(options.seed ^ 0x5EEDull);
  sgd optimizer(options.optimizer);
  parameter_server server(model.parameter_count());

  obs::tracer* tr = options.tracer;
  const std::uint32_t lane = options.trace_lane;
  obs::counter* rounds_counter = nullptr;
  obs::counter* samples_counter = nullptr;
  obs::gauge* loss_gauge = nullptr;
  obs::gauge* latency_gauge = nullptr;
  obs::gauge* accuracy_gauge = nullptr;
  obs::histogram* latency_hist = nullptr;
  if (options.metrics != nullptr) {
    rounds_counter = &options.metrics->counter_named("learn.rounds");
    samples_counter = &options.metrics->counter_named("learn.samples");
    loss_gauge = &options.metrics->gauge_named("learn.train_loss");
    latency_gauge = &options.metrics->gauge_named("learn.round_latency");
    accuracy_gauge = &options.metrics->gauge_named("learn.test_accuracy");
    latency_hist = &options.metrics->histogram_named(
        "learn.round_latency_seconds", obs::latency_buckets());
  }

  real_training_result result;
  result.round_latency.set_name("round_latency");
  result.train_loss.set_name("train_loss");
  result.test_accuracy.set_name("test_accuracy");

  std::vector<std::size_t> batch(options.global_batch);
  std::vector<double> params(model.parameters().begin(),
                             model.parameters().end());
  std::vector<double> shard_gradient;
  // Hoisted round scratch: view and local costs are refreshed in place each
  // round (the cost vector itself is fresh per round), reusing storage.
  cost::cost_view view;
  std::vector<double> locals;

  for (std::size_t t = 0; t < options.rounds; ++t) {
    obs::span round_span(tr, lane, t, "train_round", "learn");
    cluster.advance_round();
    const cost::cost_vector costs =
        [&] {
          cost::cost_vector out;
          out.reserve(options.n_workers);
          for (std::size_t i = 0; i < options.n_workers; ++i) {
            out.push_back(ml::round_cost(
                static_cast<double>(options.global_batch), model_bytes,
                cluster.conditions(i)));
          }
          return out;
        }();
    cost::view_into(costs, view);

    if (policy.clairvoyant()) policy.preview(view);
    const core::allocation& b = policy.current();

    // Sample the round's global batch and shard it per the fractions.
    for (std::size_t& idx : batch) {
      idx = static_cast<std::size_t>(
          sampler.uniform_int(0, static_cast<std::int64_t>(train.size()) - 1));
    }
    const std::vector<std::size_t> counts =
        partition_batch(b, options.global_batch);

    // Each worker computes the true mean gradient over its shard.
    server.begin_round();
    double batch_loss = 0.0;
    std::size_t offset = 0;
    {
      obs::span sp(tr, lane, t, "shard_gradients", "learn");
      for (std::size_t i = 0; i < options.n_workers; ++i) {
        if (counts[i] == 0) continue;
        const std::span<const std::size_t> shard(&batch[offset], counts[i]);
        offset += counts[i];
        const double loss =
            model.loss_and_gradient(train, shard, shard_gradient);
        batch_loss += loss * static_cast<double>(counts[i]);
        server.submit(shard_gradient, counts[i]);
      }
    }
    batch_loss /= static_cast<double>(options.global_batch);

    // Aggregate (= full-batch mean) and step the model.
    {
      obs::span sp(tr, lane, t, "aggregate_and_step", "learn");
      params.assign(model.parameters().begin(), model.parameters().end());
      optimizer.apply(params, server.aggregate());
      model.set_parameters(params);
    }

    // Latency: the straggler barrier under the heterogeneous cluster.
    cost::evaluate_into(view, b, locals);
    const double round_latency = *std::max_element(locals.begin(),
                                                   locals.end());
    result.round_latency.push(round_latency);
    result.total_time += round_latency;
    result.train_loss.push(batch_loss);
    if ((t + 1) % options.eval_every == 0 || t + 1 == options.rounds) {
      if (result.eval_rounds.empty() || result.eval_rounds.back() != t + 1) {
        obs::span sp(tr, lane, t, "evaluate", "learn");
        result.eval_rounds.push_back(t + 1);
        result.test_accuracy.push(model.accuracy(test));
        sp.arg("test_accuracy", result.test_accuracy.back());
        if (accuracy_gauge != nullptr) {
          accuracy_gauge->set(result.test_accuracy.back());
        }
      }
    }

    core::round_feedback feedback;
    feedback.costs = &view;
    feedback.local_costs = locals;
    policy.observe(feedback);

    round_span.arg("loss", batch_loss);
    round_span.arg("latency_seconds", round_latency);
    if (rounds_counter != nullptr) {
      rounds_counter->add(1);
      samples_counter->add(options.global_batch);
      loss_gauge->set(batch_loss);
      latency_gauge->set(round_latency);
      latency_hist->observe(round_latency);
    }
  }
  result.final_train_accuracy = model.accuracy(train);
  result.final_test_accuracy = model.accuracy(test);
  return result;
}

}  // namespace dolbie::learn
