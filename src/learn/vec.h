// Minimal dense linear-algebra helpers for the learning substrate. The
// models in src/learn are small (the decision-making, not the model, is
// under study), so plain contiguous vectors and hand-rolled kernels are
// the right tool — no BLAS dependency.
#pragma once

#include <span>
#include <vector>

namespace dolbie::learn {

/// Inner product of two equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x, in place.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Scale x by alpha, in place.
void scale(double alpha, std::span<double> x);

/// Numerically stable in-place softmax: z_i <- exp(z_i - max) / sum.
void softmax_inplace(std::span<double> z);

/// Index of the maximum element (ties to the lowest index).
std::size_t argmax_index(std::span<const double> z);

/// Euclidean norm.
double l2_norm(std::span<const double> x);

}  // namespace dolbie::learn
