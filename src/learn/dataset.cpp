#include "learn/dataset.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::learn {

dataset::dataset(std::vector<example> examples, std::size_t dims,
                 int classes)
    : examples_(std::move(examples)), dims_(dims), classes_(classes) {
  DOLBIE_REQUIRE(!examples_.empty(), "dataset needs at least one example");
  DOLBIE_REQUIRE(dims_ >= 1, "dataset needs at least one feature");
  DOLBIE_REQUIRE(classes_ >= 2, "dataset needs at least two classes");
  for (const example& e : examples_) {
    DOLBIE_REQUIRE(e.features.size() == dims_,
                   "example has " << e.features.size() << " features, expected "
                                  << dims_);
    DOLBIE_REQUIRE(e.label >= 0 && e.label < classes_,
                   "label " << e.label << " outside [0, " << classes_ << ")");
  }
}

const example& dataset::at(std::size_t i) const {
  DOLBIE_REQUIRE(i < examples_.size(), "example index out of range");
  return examples_[i];
}

dataset dataset::subset(std::size_t begin, std::size_t count) const {
  DOLBIE_REQUIRE(count >= 1, "subset needs at least one example");
  DOLBIE_REQUIRE(begin + count <= examples_.size(),
                 "subset [" << begin << ", " << begin + count
                            << ") exceeds dataset of " << examples_.size());
  std::vector<example> out(examples_.begin() +
                               static_cast<std::ptrdiff_t>(begin),
                           examples_.begin() +
                               static_cast<std::ptrdiff_t>(begin + count));
  return dataset(std::move(out), dims_, classes_);
}

dataset dataset::gaussian_blobs(std::size_t n_samples, std::size_t dims,
                                int classes, double spread,
                                std::uint64_t seed) {
  DOLBIE_REQUIRE(n_samples >= 1 && dims >= 1 && classes >= 2,
                 "bad blob parameters");
  DOLBIE_REQUIRE(spread > 0.0, "spread must be > 0, got " << spread);
  rng gen(seed);
  // Class centres: deterministic pseudo-corners with unit-ish separation.
  std::vector<std::vector<double>> centres(static_cast<std::size_t>(classes));
  rng centre_gen(seed ^ 0xB10B5ull);
  for (auto& c : centres) {
    c.resize(dims);
    for (double& v : c) v = centre_gen.uniform(-2.0, 2.0);
  }
  std::vector<example> out;
  out.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(gen.uniform_int(0, classes - 1));
    example e;
    e.label = label;
    e.features.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      e.features[d] = centres[static_cast<std::size_t>(label)][d] +
                      gen.gaussian(0.0, spread);
    }
    out.push_back(std::move(e));
  }
  return dataset(std::move(out), dims, classes);
}

dataset dataset::concentric_rings(std::size_t n_samples, int classes,
                                  double noise, std::uint64_t seed) {
  DOLBIE_REQUIRE(n_samples >= 1 && classes >= 2, "bad ring parameters");
  DOLBIE_REQUIRE(noise >= 0.0, "noise must be >= 0, got " << noise);
  rng gen(seed);
  std::vector<example> out;
  out.reserve(n_samples);
  constexpr double kTwoPi = 6.283185307179586;
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(gen.uniform_int(0, classes - 1));
    const double radius = 1.0 + static_cast<double>(label) +
                          gen.gaussian(0.0, noise);
    const double angle = gen.uniform(0.0, kTwoPi);
    example e;
    e.label = label;
    e.features = {radius * std::cos(angle), radius * std::sin(angle)};
    out.push_back(std::move(e));
  }
  return dataset(std::move(out), 2, classes);
}

}  // namespace dolbie::learn
