// Stochastic gradient descent with classical momentum — the optimizer of
// the paper's experiments (SGD, lr 0.1 on CIFAR-10).
#pragma once

#include <vector>

namespace dolbie::learn {

struct sgd_options {
  double learning_rate = 0.1;  ///< the paper's value
  double momentum = 0.0;       ///< 0 = plain SGD
};

/// Applies v <- mu*v - lr*g; params <- params + v.
class sgd {
 public:
  explicit sgd(sgd_options options = {});

  /// One update step; the velocity buffer is sized lazily to the first
  /// gradient and must keep that size afterwards.
  void apply(std::vector<double>& parameters,
             const std::vector<double>& gradient);

  const sgd_options& options() const { return options_; }
  void reset() { velocity_.clear(); }

 private:
  sgd_options options_;
  std::vector<double> velocity_;
};

}  // namespace dolbie::learn
