#include "learn/sgd.h"

#include "common/error.h"

namespace dolbie::learn {

sgd::sgd(sgd_options options) : options_(options) {
  DOLBIE_REQUIRE(options.learning_rate > 0.0,
                 "learning rate must be > 0, got " << options.learning_rate);
  DOLBIE_REQUIRE(options.momentum >= 0.0 && options.momentum < 1.0,
                 "momentum must be in [0, 1), got " << options.momentum);
}

void sgd::apply(std::vector<double>& parameters,
                const std::vector<double>& gradient) {
  DOLBIE_REQUIRE(parameters.size() == gradient.size(),
                 "parameter/gradient size mismatch: " << parameters.size()
                                                      << " vs "
                                                      << gradient.size());
  if (velocity_.empty()) {
    velocity_.assign(parameters.size(), 0.0);
  }
  DOLBIE_REQUIRE(velocity_.size() == parameters.size(),
                 "parameter count changed mid-training");
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    velocity_[i] = options_.momentum * velocity_[i] -
                   options_.learning_rate * gradient[i];
    parameters[i] += velocity_[i];
  }
}

}  // namespace dolbie::learn
