#include "learn/model.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "learn/vec.h"

namespace dolbie::learn {

double classifier::accuracy(const dataset& data) const {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.at(i).features) == data.at(i).label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double classifier::mean_loss(const dataset& data) const {
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<double> scratch;
  return loss_and_gradient(data, all, scratch);
}

// ------------------------------------------------------------- softmax --

softmax_regression::softmax_regression(std::size_t dims, int classes,
                                       std::uint64_t seed)
    : dims_(dims), classes_(classes) {
  DOLBIE_REQUIRE(dims >= 1, "need at least one feature");
  DOLBIE_REQUIRE(classes >= 2, "need at least two classes");
  const std::size_t c = static_cast<std::size_t>(classes);
  params_.resize(c * dims_ + c);
  rng gen(seed);
  const double init = 0.1 / std::sqrt(static_cast<double>(dims_));
  for (std::size_t k = 0; k < c * dims_; ++k) {
    params_[k] = gen.gaussian(0.0, init);
  }
  // Biases start at zero.
}

void softmax_regression::set_parameters(std::span<const double> params) {
  DOLBIE_REQUIRE(params.size() == params_.size(),
                 "parameter size mismatch: " << params.size() << " vs "
                                             << params_.size());
  params_.assign(params.begin(), params.end());
}

void softmax_regression::logits(std::span<const double> features,
                                std::span<double> out) const {
  const std::size_t c = static_cast<std::size_t>(classes_);
  for (std::size_t k = 0; k < c; ++k) {
    const std::span<const double> row(&params_[k * dims_], dims_);
    out[k] = dot(row, features) + params_[c * dims_ + k];
  }
}

double softmax_regression::loss_and_gradient(
    const dataset& data, std::span<const std::size_t> batch,
    std::vector<double>& gradient) const {
  DOLBIE_REQUIRE(!batch.empty(), "empty batch");
  DOLBIE_REQUIRE(data.dims() == dims_ && data.classes() == classes_,
                 "dataset shape mismatch");
  const std::size_t c = static_cast<std::size_t>(classes_);
  gradient.assign(params_.size(), 0.0);
  std::vector<double> probs(c);
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const example& e = data.at(idx);
    logits(e.features, probs);
    softmax_inplace(probs);
    loss += -std::log(std::max(probs[static_cast<std::size_t>(e.label)],
                               1e-300));
    for (std::size_t k = 0; k < c; ++k) {
      const double delta =
          probs[k] - (static_cast<int>(k) == e.label ? 1.0 : 0.0);
      axpy(delta, e.features,
           std::span<double>(&gradient[k * dims_], dims_));
      gradient[c * dims_ + k] += delta;
    }
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  scale(inv, gradient);
  return loss * inv;
}

int softmax_regression::predict(std::span<const double> features) const {
  std::vector<double> z(static_cast<std::size_t>(classes_));
  logits(features, z);
  return static_cast<int>(argmax_index(z));
}

// ----------------------------------------------------------------- MLP --

mlp_classifier::mlp_classifier(std::size_t dims, std::size_t hidden,
                               int classes, std::uint64_t seed)
    : dims_(dims), hidden_(hidden), classes_(classes) {
  DOLBIE_REQUIRE(dims >= 1, "need at least one feature");
  DOLBIE_REQUIRE(hidden >= 1, "need at least one hidden unit");
  DOLBIE_REQUIRE(classes >= 2, "need at least two classes");
  const std::size_t c = static_cast<std::size_t>(classes);
  params_.resize(hidden_ * dims_ + hidden_ + c * hidden_ + c);
  rng gen(seed);
  const double init1 = 1.0 / std::sqrt(static_cast<double>(dims_));
  const double init2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (std::size_t k = 0; k < hidden_ * dims_; ++k) {
    params_[k] = gen.gaussian(0.0, init1);
  }
  for (std::size_t k = 0; k < c * hidden_; ++k) {
    params_[w2_at(0, 0) + k] = gen.gaussian(0.0, init2);
  }
}

std::size_t mlp_classifier::w1_at(std::size_t h, std::size_t d) const {
  return h * dims_ + d;
}
std::size_t mlp_classifier::b1_at(std::size_t h) const {
  return hidden_ * dims_ + h;
}
std::size_t mlp_classifier::w2_at(std::size_t c, std::size_t h) const {
  return hidden_ * dims_ + hidden_ + c * hidden_ + h;
}
std::size_t mlp_classifier::b2_at(std::size_t c) const {
  return hidden_ * dims_ + hidden_ +
         static_cast<std::size_t>(classes_) * hidden_ + c;
}

void mlp_classifier::set_parameters(std::span<const double> params) {
  DOLBIE_REQUIRE(params.size() == params_.size(),
                 "parameter size mismatch: " << params.size() << " vs "
                                             << params_.size());
  params_.assign(params.begin(), params.end());
}

void mlp_classifier::forward(std::span<const double> features,
                             std::span<double> hidden,
                             std::span<double> logits) const {
  for (std::size_t h = 0; h < hidden_; ++h) {
    const std::span<const double> row(&params_[w1_at(h, 0)], dims_);
    hidden[h] = std::tanh(dot(row, features) + params_[b1_at(h)]);
  }
  const std::size_t c = static_cast<std::size_t>(classes_);
  for (std::size_t k = 0; k < c; ++k) {
    const std::span<const double> row(&params_[w2_at(k, 0)], hidden_);
    logits[k] = dot(row, hidden) + params_[b2_at(k)];
  }
}

double mlp_classifier::loss_and_gradient(
    const dataset& data, std::span<const std::size_t> batch,
    std::vector<double>& gradient) const {
  DOLBIE_REQUIRE(!batch.empty(), "empty batch");
  DOLBIE_REQUIRE(data.dims() == dims_ && data.classes() == classes_,
                 "dataset shape mismatch");
  const std::size_t c = static_cast<std::size_t>(classes_);
  gradient.assign(params_.size(), 0.0);
  std::vector<double> hidden(hidden_);
  std::vector<double> probs(c);
  std::vector<double> dhidden(hidden_);
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const example& e = data.at(idx);
    forward(e.features, hidden, probs);
    softmax_inplace(probs);
    loss += -std::log(std::max(probs[static_cast<std::size_t>(e.label)],
                               1e-300));
    // Output layer: dL/dlogit_k = p_k - 1{k == label}.
    std::fill(dhidden.begin(), dhidden.end(), 0.0);
    for (std::size_t k = 0; k < c; ++k) {
      const double delta =
          probs[k] - (static_cast<int>(k) == e.label ? 1.0 : 0.0);
      axpy(delta, hidden,
           std::span<double>(&gradient[w2_at(k, 0)], hidden_));
      gradient[b2_at(k)] += delta;
      axpy(delta, std::span<const double>(&params_[w2_at(k, 0)], hidden_),
           dhidden);
    }
    // Hidden layer: tanh' = 1 - h^2.
    for (std::size_t h = 0; h < hidden_; ++h) {
      const double dpre = dhidden[h] * (1.0 - hidden[h] * hidden[h]);
      axpy(dpre, e.features,
           std::span<double>(&gradient[w1_at(h, 0)], dims_));
      gradient[b1_at(h)] += dpre;
    }
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  scale(inv, gradient);
  return loss * inv;
}

int mlp_classifier::predict(std::span<const double> features) const {
  std::vector<double> hidden(hidden_);
  std::vector<double> z(static_cast<std::size_t>(classes_));
  forward(features, hidden, z);
  return static_cast<int>(argmax_index(z));
}

}  // namespace dolbie::learn
