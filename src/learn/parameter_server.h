// Parameter-server gradient aggregation for synchronous distributed SGD:
// each worker reports the mean gradient over its shard together with its
// shard size; the server combines them weighted by shard size, which
// reconstructs the exact full-batch mean gradient regardless of how the
// batch was partitioned — the key property that lets batch-size tuning
// change *speed* without changing *what is learned* (Sec. III-A).
#pragma once

#include <cstddef>
#include <vector>

namespace dolbie::learn {

/// Accumulates per-worker (shard mean gradient, shard size) contributions.
class parameter_server {
 public:
  explicit parameter_server(std::size_t parameter_count);

  /// Start a fresh aggregation round.
  void begin_round();

  /// Add one worker's contribution: the *mean* gradient over its shard of
  /// `shard_size` examples. Zero-sized shards are ignored.
  void submit(const std::vector<double>& mean_gradient,
              std::size_t shard_size);

  /// Number of examples aggregated so far this round.
  std::size_t examples() const { return examples_; }

  /// The global mean gradient over all submitted examples. Requires at
  /// least one non-empty submission this round.
  const std::vector<double>& aggregate();

 private:
  std::size_t parameter_count_;
  std::vector<double> sum_;  // running sum of shard_size * mean_gradient
  std::vector<double> mean_;
  std::size_t examples_ = 0;
  bool aggregated_ = false;
};

}  // namespace dolbie::learn
