#include "learn/parameter_server.h"

#include "common/error.h"
#include "learn/vec.h"

namespace dolbie::learn {

parameter_server::parameter_server(std::size_t parameter_count)
    : parameter_count_(parameter_count) {
  DOLBIE_REQUIRE(parameter_count >= 1, "need at least one parameter");
  begin_round();
}

void parameter_server::begin_round() {
  sum_.assign(parameter_count_, 0.0);
  examples_ = 0;
  aggregated_ = false;
}

void parameter_server::submit(const std::vector<double>& mean_gradient,
                              std::size_t shard_size) {
  DOLBIE_REQUIRE(!aggregated_,
                 "cannot submit after aggregate(); call begin_round()");
  if (shard_size == 0) return;
  DOLBIE_REQUIRE(mean_gradient.size() == parameter_count_,
                 "gradient has " << mean_gradient.size()
                                 << " entries, expected " << parameter_count_);
  axpy(static_cast<double>(shard_size), mean_gradient, sum_);
  examples_ += shard_size;
}

const std::vector<double>& parameter_server::aggregate() {
  DOLBIE_REQUIRE(examples_ > 0, "no gradients submitted this round");
  mean_ = sum_;
  scale(1.0 / static_cast<double>(examples_), mean_);
  aggregated_ = true;
  return mean_;
}

}  // namespace dolbie::learn
