#include "learn/vec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dolbie::learn {

double dot(std::span<const double> a, std::span<const double> b) {
  DOLBIE_REQUIRE(a.size() == b.size(), "dot: size mismatch " << a.size()
                                                             << " vs "
                                                             << b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DOLBIE_REQUIRE(x.size() == y.size(), "axpy: size mismatch " << x.size()
                                                              << " vs "
                                                              << y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void softmax_inplace(std::span<double> z) {
  DOLBIE_REQUIRE(!z.empty(), "softmax of empty span");
  const double m = *std::max_element(z.begin(), z.end());
  double total = 0.0;
  for (double& v : z) {
    v = std::exp(v - m);
    total += v;
  }
  for (double& v : z) v /= total;
}

std::size_t argmax_index(std::span<const double> z) {
  DOLBIE_REQUIRE(!z.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[best]) best = i;
  }
  return best;
}

double l2_norm(std::span<const double> x) {
  double total = 0.0;
  for (double v : x) total += v * v;
  return std::sqrt(total);
}

}  // namespace dolbie::learn
