// Real synchronous distributed SGD with online batch-size tuning: the
// end-to-end integration of Fig. 2 with an *actual* model instead of the
// learning-curve abstraction in src/ml. Each round:
//
//   1. the policy's batch fractions b_t partition the round's B sampled
//      examples into per-worker shards (largest-remainder rounding),
//   2. every worker computes the true mean gradient over its shard,
//   3. the parameter server aggregates (weighted by shard size — exactly
//      the full-batch mean) and the optimizer updates the model,
//   4. per-worker latency comes from the heterogeneous-cluster model
//      (compute time ~ share * B / gamma_i + transfer of the real
//      parameter vector), and the round latency is the straggler's,
//   5. revealed costs feed the policy for round t+1.
//
// Because the aggregate is the full-batch mean regardless of partitioning,
// every policy trains the same model trajectory (up to floating-point
// reassociation across shard boundaries) and differs only in wall-clock —
// the paper's experimental premise, now demonstrated on real gradients.
#pragma once

#include "common/series.h"
#include "core/policy.h"
#include "learn/model.h"
#include "learn/sgd.h"
#include "ml/cluster.h"

namespace dolbie::obs {
class metrics_registry;
class tracer;
}  // namespace dolbie::obs

namespace dolbie::learn {

struct real_training_options {
  std::size_t rounds = 200;
  std::size_t n_workers = 10;
  std::size_t global_batch = 64;  ///< examples per round
  /// Which catalogue row drives the cluster's compute heterogeneity (the
  /// model trained here is small; the latency profile stands in for the
  /// heavy model the cluster would really be training).
  ml::model_kind latency_profile = ml::model_kind::resnet18;
  ml::cluster_options cluster;
  sgd_options optimizer;
  std::uint64_t seed = 1;
  std::size_t eval_every = 20;  ///< test-accuracy cadence (rounds)

  /// Observability (all optional; null keeps the trainer on the zero-cost
  /// disabled path). Per round the tracer records a "train_round" span on
  /// `trace_lane` with nested "shard_gradients" / "aggregate_and_step"
  /// spans and an "evaluate" span on evaluation rounds; the registry
  /// carries learn.* counters and gauges (loss, latency, accuracy).
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;
};

struct real_training_result {
  series round_latency;   ///< straggler latency per round [s]
  series train_loss;      ///< mini-batch loss per round
  series test_accuracy;   ///< sampled every eval_every rounds
  std::vector<std::size_t> eval_rounds;  ///< rounds of each test_accuracy
  double total_time = 0.0;
  double final_train_accuracy = 0.0;
  double final_test_accuracy = 0.0;

  /// Wall-clock at which sampled test accuracy first reached `target`;
  /// negative when never.
  double time_to_test_accuracy(double target) const;
};

/// Split `total` items proportionally to simplex `fractions` using
/// largest-remainder rounding (ties to the lowest index). The counts sum
/// exactly to `total`. Exposed for tests.
std::vector<std::size_t> partition_batch(const core::allocation& fractions,
                                         std::size_t total);

/// Run the full distributed training. The policy and optimizer are reset
/// first; the model trains in place.
real_training_result train_distributed(core::online_policy& policy,
                                       classifier& model, const dataset& train,
                                       const dataset& test,
                                       const real_training_options& options);

}  // namespace dolbie::learn
