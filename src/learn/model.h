// Differentiable classifiers for the learning substrate. Parameters live
// in one flat vector so the optimizer and parameter server can treat every
// model uniformly (exactly how real parameter-server systems flatten
// tensors for transport).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "learn/dataset.h"

namespace dolbie::learn {

/// A classifier with a flat parameter vector and cross-entropy loss.
class classifier {
 public:
  virtual ~classifier() = default;

  virtual std::size_t parameter_count() const = 0;
  virtual std::span<const double> parameters() const = 0;
  virtual void set_parameters(std::span<const double> params) = 0;

  /// Mean cross-entropy loss over the batch (indices into `data`), with
  /// the mean gradient accumulated into `gradient` (resized and zeroed by
  /// the callee). Returns the loss.
  virtual double loss_and_gradient(const dataset& data,
                                   std::span<const std::size_t> batch,
                                   std::vector<double>& gradient) const = 0;

  /// Predicted class for one feature vector.
  virtual int predict(std::span<const double> features) const = 0;

  /// Fraction of `data` classified correctly.
  double accuracy(const dataset& data) const;

  /// Mean loss over the whole dataset (no gradient).
  double mean_loss(const dataset& data) const;
};

/// Multiclass logistic (softmax) regression: W in R^{C x D}, b in R^C.
/// Convex; the sanity model of the substrate.
class softmax_regression final : public classifier {
 public:
  softmax_regression(std::size_t dims, int classes, std::uint64_t seed);

  std::size_t parameter_count() const override { return params_.size(); }
  std::span<const double> parameters() const override { return params_; }
  void set_parameters(std::span<const double> params) override;
  double loss_and_gradient(const dataset& data,
                           std::span<const std::size_t> batch,
                           std::vector<double>& gradient) const override;
  int predict(std::span<const double> features) const override;

 private:
  void logits(std::span<const double> features, std::span<double> out) const;

  std::size_t dims_;
  int classes_;
  std::vector<double> params_;  // [W row-major (C x D) | b (C)]
};

/// One-hidden-layer MLP with tanh activation: the non-convex workload
/// (needed for e.g. the concentric-rings dataset).
class mlp_classifier final : public classifier {
 public:
  mlp_classifier(std::size_t dims, std::size_t hidden, int classes,
                 std::uint64_t seed);

  std::size_t parameter_count() const override { return params_.size(); }
  std::span<const double> parameters() const override { return params_; }
  void set_parameters(std::span<const double> params) override;
  double loss_and_gradient(const dataset& data,
                           std::span<const std::size_t> batch,
                           std::vector<double>& gradient) const override;
  int predict(std::span<const double> features) const override;

  std::size_t hidden_units() const { return hidden_; }

 private:
  // Layout: [W1 (H x D) | b1 (H) | W2 (C x H) | b2 (C)]
  std::size_t w1_at(std::size_t h, std::size_t d) const;
  std::size_t b1_at(std::size_t h) const;
  std::size_t w2_at(std::size_t c, std::size_t h) const;
  std::size_t b2_at(std::size_t c) const;

  void forward(std::span<const double> features, std::span<double> hidden,
               std::span<double> logits) const;

  std::size_t dims_;
  std::size_t hidden_;
  int classes_;
  std::vector<double> params_;
};

}  // namespace dolbie::learn
