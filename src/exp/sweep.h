// Multi-realization sweeps: run a policy factory across many seeds and
// collect per-round traces — the machinery behind every "over 100
// realizations of processor sampling" figure.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/series.h"
#include "core/policy.h"
#include "ml/trainer.h"

namespace dolbie::exp {

/// Builds a fresh policy for a given worker count.
using policy_factory =
    std::function<std::unique_ptr<core::online_policy>(std::size_t)>;

/// The named factories of the paper's six algorithms with the paper's
/// hyper-parameters (alpha_1 = beta = 0.001, Delta = 5/B, P = D = 5).
/// Order matches the figures: EQU, OGD, ABS, LB-BSP, DOLBIE, OPT.
std::vector<std::pair<std::string, policy_factory>> paper_policy_suite(
    double global_batch = 256.0);

/// Result of sweeping one policy over many training realizations.
struct ml_sweep_result {
  std::string policy;
  std::vector<series> round_latency;     ///< one per realization
  std::vector<series> cumulative_time;   ///< prefix sums, one per realization
  std::vector<double> total_time;
  std::vector<double> total_wait;
  std::vector<double> total_compute;
  std::vector<double> total_comm;
  std::vector<double> decision_seconds;
  std::vector<double> time_to_target;    ///< -1 when target never reached
};

/// Run `realizations` training simulations of one policy, seeds
/// base_seed..base_seed+realizations-1. `accuracy_target` feeds
/// time_to_target (ignored when <= 0). Realizations run in parallel on the
/// default thread pool (DOLBIE_THREADS env override); results are
/// bit-identical at any thread count because realization r depends only on
/// seed base_seed + r. Use exp::parallel_sweep_training directly to pick a
/// thread count or collect per-run timings.
ml_sweep_result sweep_training(const std::string& name,
                               const policy_factory& factory,
                               const ml::trainer_options& base_options,
                               std::size_t realizations,
                               std::uint64_t base_seed,
                               double accuracy_target = -1.0);

}  // namespace dolbie::exp
