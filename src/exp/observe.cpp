#include "exp/observe.h"

#include <fstream>
#include <ostream>

#include "common/error.h"
#include "obs/export.h"

namespace dolbie::exp {
namespace {

obs::tracer_options tracer_options_from(const cli_args& args) {
  obs::tracer_options options;
  const std::string clock = args.get_string("trace-clock", "logical");
  if (clock == "wall") {
    options.clock = obs::clock_kind::wall;
  } else {
    DOLBIE_REQUIRE(clock == "logical",
                   "--trace-clock must be 'logical' or 'wall', got '"
                       << clock << "'");
  }
  options.max_records_per_lane =
      static_cast<std::size_t>(args.get_u64("trace-cap", 0));
  return options;
}

}  // namespace

table metrics_table(const obs::metrics_registry& registry) {
  table t({"metric", "type", "value"});
  for (const obs::metric_row& row : registry.snapshot()) {
    t.add_row({row.name, row.type, row.value});
  }
  return t;
}

observability::observability(const cli_args& args)
    : trace_path_(args.get_string("trace", "")),
      jsonl_path_(args.get_string("trace-jsonl", "")),
      metrics_csv_path_(args.get_string("metrics-csv", "")),
      tracer_(tracer_options_from(args)) {
  tracing_ = !trace_path_.empty() || !jsonl_path_.empty();
  want_metrics_ = args.has("metrics") || !metrics_csv_path_.empty();
}

void observability::finish(std::ostream& os) {
  if (finished_) return;
  finished_ = true;
  if (tracing_) {
    const std::vector<obs::trace_record> records = tracer_.merged();
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      DOLBIE_REQUIRE(out.good(), "cannot open trace file " << trace_path_);
      obs::export_chrome_trace(out, records);
      os << "wrote " << records.size() << " trace records to " << trace_path_
         << " (chrome://tracing)\n";
    }
    if (!jsonl_path_.empty()) {
      std::ofstream out(jsonl_path_);
      DOLBIE_REQUIRE(out.good(), "cannot open trace file " << jsonl_path_);
      obs::export_jsonl(out, records);
      os << "wrote " << records.size() << " trace records to " << jsonl_path_
         << "\n";
    }
    if (tracer_.dropped() > 0) {
      os << "trace cap dropped " << tracer_.dropped() << " records\n";
    }
  }
  if (!want_metrics_) return;
  if (!metrics_csv_path_.empty()) {
    std::ofstream out(metrics_csv_path_);
    DOLBIE_REQUIRE(out.good(),
                   "cannot open metrics file " << metrics_csv_path_);
    metrics_table(registry_).write_csv(out);
    os << "wrote metrics to " << metrics_csv_path_ << "\n";
  } else {
    os << "\n== metrics ==\n";
    metrics_table(registry_).print(os);
  }
}

}  // namespace dolbie::exp
