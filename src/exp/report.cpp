#include "exp/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace dolbie::exp {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DOLBIE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void table::add_row(std::vector<std::string> cells) {
  DOLBIE_REQUIRE(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells for "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void table::write_csv(std::ostream& os) const {
  const auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

namespace {

std::vector<std::size_t> subsample_rounds(std::size_t rounds,
                                          std::size_t max_rows) {
  std::vector<std::size_t> picks;
  if (rounds <= max_rows) {
    for (std::size_t r = 0; r < rounds; ++r) picks.push_back(r);
    return picks;
  }
  if (max_rows <= 1) {
    picks.push_back(rounds - 1);  // show at least the final round
    return picks;
  }
  for (std::size_t k = 0; k < max_rows; ++k) {
    picks.push_back(k * (rounds - 1) / (max_rows - 1));
  }
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  return picks;
}

}  // namespace

void print_series(std::ostream& os, const std::vector<series>& columns,
                  std::size_t max_rows) {
  DOLBIE_REQUIRE(!columns.empty(), "no series to print");
  const std::size_t rounds = columns.front().size();
  for (const series& s : columns) {
    DOLBIE_REQUIRE(s.size() == rounds, "series lengths differ");
  }
  std::vector<std::string> headers{"round"};
  for (const series& s : columns) headers.push_back(s.name());
  table t(std::move(headers));
  for (std::size_t r : subsample_rounds(rounds, max_rows)) {
    std::vector<double> values;
    values.reserve(columns.size());
    for (const series& s : columns) values.push_back(s[r]);
    t.add_row(std::to_string(r + 1), values);
  }
  t.print(os);
}

void print_aggregated(std::ostream& os,
                      const std::vector<stats::aggregated_series>& columns,
                      std::size_t max_rows) {
  DOLBIE_REQUIRE(!columns.empty(), "no series to print");
  const std::size_t rounds = columns.front().mean.size();
  for (const auto& s : columns) {
    DOLBIE_REQUIRE(s.mean.size() == rounds, "series lengths differ");
  }
  std::vector<std::string> headers{"round"};
  for (const auto& s : columns) {
    headers.push_back(s.name + " (mean +/- 95% CI)");
  }
  table t(std::move(headers));
  for (std::size_t r : subsample_rounds(rounds, max_rows)) {
    std::vector<std::string> cells{std::to_string(r + 1)};
    for (const auto& s : columns) {
      cells.push_back(format_double(s.mean[r]) + " +/- " +
                      format_double(s.half_width[r], 2));
    }
    t.add_row(std::move(cells));
  }
  t.print(os);
}

void write_series_csv(std::ostream& os, const std::vector<series>& columns) {
  DOLBIE_REQUIRE(!columns.empty(), "no series to write");
  const std::size_t rounds = columns.front().size();
  os << "round";
  for (const series& s : columns) os << ',' << s.name();
  os << '\n';
  for (std::size_t r = 0; r < rounds; ++r) {
    os << (r + 1);
    for (const series& s : columns) os << ',' << s[r];
    os << '\n';
  }
}

void print_timings(std::ostream& os, const stats::timing_registry& timings,
                   double elapsed_seconds, std::size_t max_rows) {
  const std::vector<stats::run_timing>& runs = timings.runs();
  if (runs.empty()) return;
  table t({"run", "wall [s]", "rounds/s", "stages"});
  for (std::size_t i : subsample_rounds(runs.size(), max_rows)) {
    const stats::run_timing& r = runs[i];
    std::string stages;
    for (const stats::stage_timing& s : r.stages) {
      if (!stages.empty()) stages += "  ";
      stages += s.name + " " + format_double(s.seconds, 3);
    }
    t.add_row({r.label.empty() ? "run " + std::to_string(i) : r.label,
               format_double(r.wall_seconds, 4),
               r.rounds > 0 ? format_double(r.rounds_per_second(), 4) : "-",
               stages.empty() ? "-" : stages});
  }
  t.print(os);
  const double total = timings.total_wall_seconds();
  os << "runs: " << runs.size() << "  summed run wall: "
     << format_double(total, 4) << " s  slowest run: "
     << format_double(timings.max_wall_seconds(), 4) << " s";
  if (timings.total_rounds() > 0 && total > 0.0) {
    os << "  aggregate rounds/s: "
       << format_double(static_cast<double>(timings.total_rounds()) / total,
                        4);
  }
  os << '\n';
  if (elapsed_seconds > 0.0) {
    os << "elapsed: " << format_double(elapsed_seconds, 4)
       << " s  parallel speedup: " << format_double(total / elapsed_seconds, 3)
       << "x\n";
  }
  const std::vector<stats::stage_timing> totals = timings.stage_totals();
  if (!totals.empty()) {
    os << "stage totals:";
    for (const stats::stage_timing& s : totals) {
      os << "  " << s.name << " " << format_double(s.seconds, 4) << " s";
    }
    os << '\n';
  }
}

cli_args::cli_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DOLBIE_REQUIRE(arg.rfind("--", 0) == 0,
                   "unexpected argument '" << arg << "' (use --key=value)");
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

bool cli_args::has(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::string cli_args::get_string(const std::string& key,
                                 const std::string& fallback) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return fallback;
}

std::uint64_t cli_args::get_u64(const std::string& key,
                                std::uint64_t fallback) const {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  std::size_t pos = 0;
  const std::uint64_t parsed = std::stoull(v, &pos);
  // A partial parse ("--listen=127.0.0.1:7101" reading as 127) binds
  // the wrong port silently; refuse trailing garbage instead.
  DOLBIE_REQUIRE(pos == v.size(),
                 "--" << key << "=" << v << " is not a whole number");
  return parsed;
}

double cli_args::get_double(const std::string& key, double fallback) const {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(v, &pos);
  DOLBIE_REQUIRE(pos == v.size(),
                 "--" << key << "=" << v << " is not a number");
  return parsed;
}

}  // namespace dolbie::exp
