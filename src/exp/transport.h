// Transport selection for benches and the daemon client: parses the
// --transport=memory|tcp flag family into a spec and builds the matching
// policy — the in-memory engines (the deterministic default) or a
// dist::cluster_policy driving remote dolbied daemons over TCP.
//
// Flags:
//   --transport=memory|tcp     (default memory)
//   --peers=host:port,...      (tcp only; one entry per worker daemon)
//   --receive-timeout-ms=T     (tcp only; 0 = deterministic single pull)
//   --engine=mw|fd             which protocol realization to run
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "dist/cluster.h"
#include "exp/report.h"

namespace dolbie::exp {

enum class transport_kind { memory, tcp };

struct transport_spec {
  transport_kind kind = transport_kind::memory;
  dist::cluster_mode mode = dist::cluster_mode::master_worker;
  std::vector<net::peer_address> peers;
  std::uint64_t receive_timeout_ms = 0;
};

/// Parse "host:port" (numeric IPv4 + port). Throws invariant_error on a
/// malformed entry — a typo'd peer list must not silently shrink a
/// cluster.
net::peer_address parse_peer(const std::string& entry);

/// Parse a comma-separated peer list ("127.0.0.1:7001,127.0.0.1:7002").
std::vector<net::peer_address> parse_peer_list(const std::string& list);

/// Read the --transport flag family. Throws invariant_error on an unknown
/// transport or engine name, or when --peers accompanies
/// --transport=memory (a misconfiguration worth refusing).
transport_spec transport_from_args(const cli_args& args);

/// Build the policy the spec names: the in-memory MW/FD engine, or a
/// cluster_policy over the listed peers. `metrics` may be null. The
/// in-memory policy is built with a forced (zero-fault) fault plan so
/// it runs the same degraded round machinery the cluster always runs —
/// that is what makes tcp-vs-memory comparisons bit-exact.
std::unique_ptr<core::online_policy> make_transport_policy(
    std::size_t n_workers, const transport_spec& spec,
    obs::metrics_registry* metrics);

}  // namespace dolbie::exp
