// Shared observability wiring for the bench and example binaries: one
// helper that parses the --trace/--metrics family of flags, owns the
// tracer and metrics registry for the run, and writes the requested
// outputs at the end.
//
// Recognized flags (the repo's --key=value convention, see cli_args):
//   --trace=<path>         enable tracing; write Chrome trace JSON to
//                          <path> (open chrome://tracing and load it)
//   --trace-jsonl=<path>   additionally write the merged records as JSONL
//   --trace-clock=<kind>   "logical" (default; deterministic per-lane
//                          ticks, bit-identical at any DOLBIE_THREADS) or
//                          "wall" (steady_clock microseconds)
//   --trace-cap=<n>        keep at most n records per lane (0 = unbounded);
//                          the overflow is counted and reported
//   --metrics              print the metrics snapshot as a table
//   --metrics-csv=<path>   write the metrics snapshot as CSV
//
// A binary that never sees these flags pays only a null-pointer check per
// instrumentation site (bench/micro_overhead pins this below 2%).
#pragma once

#include <iosfwd>
#include <string>

#include "exp/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::exp {

/// Render a registry snapshot as a two-column table (metric, value).
table metrics_table(const obs::metrics_registry& registry);

class observability {
 public:
  explicit observability(const cli_args& args);

  /// Tracer to hand to policy/trainer options; null when --trace and
  /// --trace-jsonl are both absent (the zero-cost disabled path).
  obs::tracer* tracer() { return tracing_ ? &tracer_ : nullptr; }

  /// Registry to hand to policy/trainer options; null when neither
  /// --metrics nor --metrics-csv was given.
  obs::metrics_registry* metrics() {
    return want_metrics_ ? &registry_ : nullptr;
  }

  bool tracing() const { return tracing_; }

  /// Write the requested outputs: the Chrome trace / JSONL files and the
  /// metrics table (to `os`) or CSV. Safe to call when nothing was
  /// requested (does nothing). Idempotent.
  void finish(std::ostream& os);

 private:
  bool tracing_ = false;
  bool want_metrics_ = false;
  bool finished_ = false;
  std::string trace_path_;
  std::string jsonl_path_;
  std::string metrics_csv_path_;
  obs::tracer tracer_;
  obs::metrics_registry registry_;
};

}  // namespace dolbie::exp
