// Parallel, deterministic experiment fan-out.
//
// Every surface here follows one contract: work is indexed by an integer
// slot, each slot derives all of its randomness from its own index (seed =
// base + i, or rng::stream_seed for 2-D grids), and results land in a
// pre-sized vector addressed by that index. The thread pool only changes
// *when* a slot runs, never *what* it computes — so output is bit-identical
// to the serial loop at any thread count (tests/parallel_sweep_test.cpp
// asserts this at 1, 2 and 8 threads; the DOLBIE_THREADS environment
// variable is the CI knob selecting the default).
//
// An optional stats::timing_registry captures per-run wall time, rounds/sec
// and a per-stage breakdown; exp::print_timings renders it and the ported
// bench targets (--timing) report the realized parallel speedup.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "exp/harness.h"
#include "exp/sweep.h"
#include "stats/timing.h"

namespace dolbie::exp {

/// Options shared by every parallel experiment surface.
struct parallel_options {
  /// Total concurrency; 0 selects default_thread_count() (which honors the
  /// DOLBIE_THREADS environment variable), 1 runs the plain serial loop.
  std::size_t threads = 0;
  /// When set, per-run wall-clock metrics are recorded here, slot i for run
  /// i (records are deterministic in layout; the measured times of course
  /// vary run to run).
  stats::timing_registry* timings = nullptr;
};

/// Deterministic parallel map: returns {job(0), ..., job(n-1)}, computed
/// across `options.threads` threads, in index order. When a timing registry
/// is attached, slot i records job i's wall time under label "run i" —
/// jobs wanting richer records (label, rounds, stages) should record into
/// their own registry instead of passing one here.
template <typename T>
std::vector<T> parallel_map(std::size_t n,
                            const std::function<T(std::size_t)>& job,
                            const parallel_options& options = {}) {
  std::vector<std::optional<T>> slots(n);
  if (options.timings != nullptr) options.timings->reserve_slots(n);
  thread_pool pool(options.threads);
  pool.parallel_for(n, [&](std::size_t i) {
    const auto begin = std::chrono::steady_clock::now();
    slots[i] = job(i);
    if (options.timings != nullptr) {
      stats::run_timing t;
      t.label = "run " + std::to_string(i);
      t.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      options.timings->record(i, std::move(t));
    }
  });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Factory for the environment a given run plays against.
using environment_factory =
    std::function<std::unique_ptr<environment>(std::size_t run)>;

/// Factory building the policy for a given run (run index passed so grids
/// can vary the policy per slot; worker count must match the environment).
using run_policy_factory =
    std::function<std::unique_ptr<core::online_policy>(std::size_t run)>;

/// Harness options for a given run, letting grid fan-outs vary rounds,
/// feedback delay or tracking per slot.
using harness_options_factory = std::function<harness_options(std::size_t run)>;

/// Deterministic parallel fan-out of independent harness runs: trace i is
/// make_policy(i) played against make_env(i) under make_options(i) — bit-
/// identical to calling exp::run in a serial loop, at any thread count.
/// Per-run timings (wall, rounds/sec, environment vs decision breakdown)
/// land in parallel.timings when attached.
std::vector<run_trace> run_many(std::size_t runs,
                                const run_policy_factory& make_policy,
                                const environment_factory& make_env,
                                const harness_options_factory& make_options,
                                const parallel_options& parallel = {});

/// Convenience overload: every run plays the same harness options.
std::vector<run_trace> run_many(std::size_t runs,
                                const run_policy_factory& make_policy,
                                const environment_factory& make_env,
                                const harness_options& options = {},
                                const parallel_options& parallel = {});

/// Fixed partition width of run_many_lockstep: runs are grouped into
/// consecutive blocks of this many realizations, each block played through
/// exp::run_lockstep. A pure function of the run index — never of the
/// thread count — so results stay bit-identical at any DOLBIE_THREADS.
inline constexpr std::size_t lockstep_block_size = 16;


/// Parallel port of sweep_training (same seed schedule: realization r uses
/// base_seed + r, exactly what the serial loop did), so the result is
/// bit-identical to exp::sweep_training at any thread count. Realizations
/// fan out across parallel.threads; per-realization timings (wall,
/// rounds/sec, compute/comm/wait/decision stages) land in parallel.timings.
ml_sweep_result parallel_sweep_training(const std::string& name,
                                        const policy_factory& factory,
                                        const ml::trainer_options& base_options,
                                        std::size_t realizations,
                                        std::uint64_t base_seed,
                                        double accuracy_target = -1.0,
                                        const parallel_options& parallel = {});

/// Cross-realization lock-step variant of run_many for DOLBIE sweeps whose
/// runs share cost-family structure: runs are partitioned into consecutive
/// fixed-size blocks (lockstep_block_size), each block played round by
/// round with every realization's Eq. (4) vector computed through one
/// grouped batch evaluation (exp::run_lockstep) — R bisection searches in
/// one lock-step loop instead of R scalar ones. Blocks fan out across
/// parallel.threads. trace[i] is bit-identical to run_many's trace[i] in
/// every recorded series, at any thread count (the block partition depends
/// only on the run index). Requirements: make_policy must produce
/// core::dolbie_policy instances (checked) and every run must share one
/// worker count and the same harness options.
std::vector<run_trace> run_many_lockstep(
    std::size_t runs, const run_policy_factory& make_policy,
    const environment_factory& make_env, const harness_options& options = {},
    const parallel_options& parallel = {});

}  // namespace dolbie::exp
