// Chaos harness: regret under message loss and worker crashes.
//
// Plays both synchronous protocol realizations (and, with
// `include_async`, the two event-driven engines — which instantiate the
// same dist/mw_round.h / fd_round.h state machines) against a synthetic
// environment across a grid of drop rates (and an optional crash
// schedule), all under one deterministic fault seed, and reports the
// cumulative-cost excess of each faulty run over its own clean (zero-drop)
// baseline — the price of degraded rounds in regret terms. The zero-drop
// cell runs the engines' exact clean path, so the grid doubles as a
// zero-fault identity check.
//
// Wired into the fig3 and comm-complexity benches behind the flag family
//   --chaos --fault-seed=N --drop-rate=D | --drop-rates=a,b,c
//   --crash-schedule=node@round[-recover],... --chaos-async
//   --chaos-rounds=T --chaos-workers=N --chaos-jsonl=out.jsonl
//   --chaos-hier --shard-size=S --fanin=F --chaos-no-flat
//   --agg-crash-schedule=agg@round[-recover],...
//   --kill-at=R --checkpoint=DIR --restore=DIR
//
// The last line is the crash-recovery drill (DESIGN.md §12): --kill-at
// stops every cell after R rounds and --checkpoint writes one snapshot
// file per cell wrapping the engine's versioned bytes plus the partial
// cumulative cost; a second invocation with --restore resumes each cell
// from those files and replays the remaining rounds. The resumed grid is
// bit-identical to the uninterrupted one (CI's chaos-smoke leg asserts
// equality of the two JSONL artifacts row by row).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace dolbie::exp {

struct chaos_options {
  std::size_t workers = 30;
  std::size_t rounds = 200;
  /// Environment seed (cost-function processes).
  std::uint64_t seed = 42;
  /// Fault-plan seed (drop/crash rolls), independent of the environment.
  std::uint64_t fault_seed = 1;
  /// Drop-rate grid. A 0.0 entry is always included (the baseline).
  std::vector<double> drop_rates = {0.0, 0.05, 0.2, 0.5};
  /// Crash schedule applied to every faulty cell.
  std::vector<net::crash_window> crashes;
  std::size_t retry_budget = 5;
  synthetic_family family = synthetic_family::affine;
  /// Run the flat synchronous engines (rows "MW"/"FD"). On by default;
  /// switched off (--chaos-no-flat) for large-N grids where the flat FD
  /// engine's n^2 broadcast is intractable and only the hierarchical
  /// rows make sense.
  bool include_flat = true;
  /// Also run the event-driven engines (rows "MW-async"/"FD-async"),
  /// appended after the synchronous rows. Off by default: the sync rows
  /// keep their historical positions.
  bool include_async = false;
  /// Also run the hierarchical shard engines (rows "MW-hier"/"FD-hier",
  /// appended last). This is the scale path: per-node traffic is
  /// O(shard size + log N), so the grid stays tractable at N = 10^5.
  bool include_hierarchical = false;
  /// Sharding knobs for the hierarchical rows (0 = ceil(sqrt(N))).
  std::size_t shard_size = 0;
  std::size_t fanin = 4;
  /// Crash windows over aggregator (tree-node) ids, hierarchical rows only.
  std::vector<net::crash_window> aggregator_crashes;

  /// Crash-recovery drill. kill_at > 0 stops every cell after that many
  /// rounds (the "kill"); checkpoint_path then receives one
  /// <engine>_<rate>.ckpt file per cell — a chaos_checkpoint-framed
  /// snapshot wrapping the engine bytes, the cut round and the partial
  /// cumulative cost. restore_path resumes each cell from those files:
  /// the engine is rebuilt from bytes, the environment fast-forwarded,
  /// and the remaining rounds replayed; the resumed cumulative cost is
  /// bit-identical to the uninterrupted run's.
  std::uint64_t kill_at = 0;
  std::string checkpoint_path;
  std::string restore_path;
};

/// One cell of the chaos grid: engine x drop rate.
struct chaos_row {
  std::string engine;  ///< "MW", "FD", "MW-async" or "FD-async"
  double drop_rate = 0.0;
  double cumulative_cost = 0.0;
  /// cumulative_cost minus the same engine's zero-drop baseline.
  double excess_vs_clean = 0.0;
  dist::fault_report report;
  bool simplex_ok = false;
};

/// Run the full grid (both engines x all drop rates), in parallel, each
/// cell against a fresh identically-seeded environment. Deterministic at
/// any thread count.
std::vector<chaos_row> run_chaos_grid(const chaos_options& options);

void print_chaos_table(std::ostream& os, const std::vector<chaos_row>& rows);

/// One JSON object per row (regret-vs-drop-rate artifact for CI).
void write_chaos_jsonl(std::ostream& os, const chaos_options& options,
                       const std::vector<chaos_row>& rows);

/// True when the command line asks for the chaos pass.
bool chaos_requested(const cli_args& args);

/// Build options from the flag family above (seed defaults to --seed).
chaos_options chaos_options_from_args(const cli_args& args);

/// Convenience: parse, run, print, and write the JSONL artifact if
/// --chaos-jsonl is set.
void run_chaos_from_args(std::ostream& os, const cli_args& args);

}  // namespace dolbie::exp
