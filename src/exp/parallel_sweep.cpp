#include "exp/parallel_sweep.h"

#include <algorithm>

#include "common/error.h"
#include "core/dolbie.h"

namespace dolbie::exp {

namespace {

stats::run_timing harness_timing(const std::string& label,
                                 const run_trace& trace,
                                 std::size_t rounds) {
  stats::run_timing t;
  t.label = label;
  t.wall_seconds = trace.wall_seconds;
  t.rounds = rounds;
  t.stages = {{"environment", trace.environment_seconds},
              {"decision", trace.decision_seconds},
              {"evaluate", trace.wall_seconds - trace.environment_seconds -
                               trace.decision_seconds}};
  return t;
}

}  // namespace

std::vector<run_trace> run_many(std::size_t runs,
                                const run_policy_factory& make_policy,
                                const environment_factory& make_env,
                                const harness_options_factory& make_options,
                                const parallel_options& parallel) {
  if (parallel.timings != nullptr) parallel.timings->reserve_slots(runs);
  std::vector<run_trace> traces(runs);
  thread_pool pool(parallel.threads);
  pool.parallel_for(runs, [&](std::size_t i) {
    auto policy = make_policy(i);
    auto env = make_env(i);
    DOLBIE_REQUIRE(policy != nullptr && env != nullptr,
                   "run_many factories returned null for run " << i);
    const harness_options options = make_options(i);
    traces[i] = run(*policy, *env, options);
    if (parallel.timings != nullptr) {
      parallel.timings->record(
          i, harness_timing("run " + std::to_string(i), traces[i],
                            options.rounds));
    }
  });
  return traces;
}

std::vector<run_trace> run_many(std::size_t runs,
                                const run_policy_factory& make_policy,
                                const environment_factory& make_env,
                                const harness_options& options,
                                const parallel_options& parallel) {
  return run_many(
      runs, make_policy, make_env,
      [&options](std::size_t) { return options; }, parallel);
}

std::vector<run_trace> run_many_lockstep(
    std::size_t runs, const run_policy_factory& make_policy,
    const environment_factory& make_env, const harness_options& options,
    const parallel_options& parallel) {
  if (runs == 0) return {};
  if (parallel.timings != nullptr) parallel.timings->reserve_slots(runs);
  std::vector<run_trace> traces(runs);
  // Consecutive fixed-size blocks: block b owns runs [b*W, min(runs,
  // (b+1)*W)). The partition is a pure function of the run index, so the
  // thread pool only decides when a block runs, never what it computes —
  // the serial==parallel contract every fan-out here follows.
  const std::size_t blocks =
      (runs + lockstep_block_size - 1) / lockstep_block_size;
  thread_pool pool(parallel.threads);
  pool.parallel_for(blocks, [&](std::size_t b) {
    const std::size_t lo = b * lockstep_block_size;
    const std::size_t hi = std::min(runs, lo + lockstep_block_size);
    const std::size_t width = hi - lo;
    std::vector<std::unique_ptr<core::online_policy>> owned_policies(width);
    std::vector<std::unique_ptr<environment>> owned_envs(width);
    std::vector<core::dolbie_policy*> policies(width);
    std::vector<environment*> envs(width);
    for (std::size_t k = 0; k < width; ++k) {
      owned_policies[k] = make_policy(lo + k);
      owned_envs[k] = make_env(lo + k);
      DOLBIE_REQUIRE(owned_policies[k] != nullptr && owned_envs[k] != nullptr,
                     "run_many_lockstep factories returned null for run "
                         << lo + k);
      policies[k] =
          dynamic_cast<core::dolbie_policy*>(owned_policies[k].get());
      DOLBIE_REQUIRE(policies[k] != nullptr,
                     "run_many_lockstep requires DOLBIE policies, run "
                         << lo + k << " built "
                         << owned_policies[k]->name());
      envs[k] = owned_envs[k].get();
    }
    std::vector<run_trace> block_traces = run_lockstep(policies, envs,
                                                       options);
    for (std::size_t k = 0; k < width; ++k) {
      traces[lo + k] = std::move(block_traces[k]);
      if (parallel.timings != nullptr) {
        parallel.timings->record(
            lo + k, harness_timing("run " + std::to_string(lo + k),
                                   traces[lo + k], options.rounds));
      }
    }
  });
  return traces;
}

ml_sweep_result parallel_sweep_training(const std::string& name,
                                        const policy_factory& factory,
                                        const ml::trainer_options& base_options,
                                        std::size_t realizations,
                                        std::uint64_t base_seed,
                                        double accuracy_target,
                                        const parallel_options& parallel) {
  DOLBIE_REQUIRE(realizations >= 1, "need at least one realization");
  using clock = std::chrono::steady_clock;

  // Per-realization slots filled independently, then assembled in index
  // order — the exact layout the serial push_back loop produced.
  struct slot {
    ml::trainer_result result;
    double time_to_target = -1.0;
  };
  std::vector<slot> slots(realizations);
  if (parallel.timings != nullptr) {
    parallel.timings->reserve_slots(realizations);
  }

  thread_pool pool(parallel.threads);
  pool.parallel_for(realizations, [&](std::size_t r) {
    const auto begin = clock::now();
    ml::trainer_options options = base_options;
    // The serial sweep's per-run stream: realization r <-> seed base + r.
    options.seed = base_seed + r;
    options.record_per_worker = false;
    auto policy = factory(options.n_workers);
    slots[r].result = ml::train(*policy, options);
    if (accuracy_target > 0.0) {
      slots[r].time_to_target =
          slots[r].result.time_to_accuracy(options.model, accuracy_target);
    }
    if (parallel.timings != nullptr) {
      const ml::trainer_result& res = slots[r].result;
      stats::run_timing t;
      t.label = name + " r" + std::to_string(r);
      t.wall_seconds =
          std::chrono::duration<double>(clock::now() - begin).count();
      t.rounds = options.rounds;
      // Simulated worker-seconds per phase plus the measured decision wall
      // time — the per-stage view Fig. 11 aggregates.
      t.stages = {{"sim compute", res.total_compute},
                  {"sim comm", res.total_comm},
                  {"sim wait", res.total_wait},
                  {"decision", res.decision_seconds}};
      parallel.timings->record(r, std::move(t));
    }
  });

  ml_sweep_result out;
  out.policy = name;
  for (std::size_t r = 0; r < realizations; ++r) {
    ml::trainer_result& result = slots[r].result;
    if (accuracy_target > 0.0) {
      out.time_to_target.push_back(slots[r].time_to_target);
    }
    series cumulative(name);
    for (double v : result.round_latency.cumulative()) cumulative.push(v);
    result.round_latency.set_name(name);
    out.round_latency.push_back(std::move(result.round_latency));
    out.cumulative_time.push_back(std::move(cumulative));
    out.total_time.push_back(result.total_time);
    out.total_wait.push_back(result.total_wait);
    out.total_compute.push_back(result.total_compute);
    out.total_comm.push_back(result.total_comm);
    out.decision_seconds.push_back(result.decision_seconds);
  }
  return out;
}

}  // namespace dolbie::exp
