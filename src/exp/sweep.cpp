#include "exp/sweep.h"

#include "baselines/abs.h"
#include "baselines/equal.h"
#include "baselines/lbbsp.h"
#include "baselines/ogd.h"
#include "baselines/opt.h"
#include "common/error.h"
#include "core/dolbie.h"
#include "exp/parallel_sweep.h"

namespace dolbie::exp {

std::vector<std::pair<std::string, policy_factory>> paper_policy_suite(
    double global_batch) {
  std::vector<std::pair<std::string, policy_factory>> suite;
  suite.emplace_back("EQU", [](std::size_t n) {
    return std::make_unique<baselines::equal_policy>(n);
  });
  suite.emplace_back("OGD", [](std::size_t n) {
    baselines::ogd_options o;
    o.learning_rate = 0.001;  // the paper's beta
    return std::make_unique<baselines::ogd_policy>(n, o);
  });
  suite.emplace_back("ABS", [](std::size_t n) {
    baselines::abs_options o;
    o.window = 5;  // the paper's P
    return std::make_unique<baselines::abs_policy>(n, o);
  });
  suite.emplace_back("LB-BSP", [global_batch](std::size_t n) {
    baselines::lbbsp_options o;
    o.delta_fraction = 5.0 / global_batch;  // the paper's Delta = 5 samples
    o.patience = 5;                         // the paper's D
    return std::make_unique<baselines::lbbsp_policy>(n, o);
  });
  suite.emplace_back("DOLBIE", [](std::size_t n) {
    core::dolbie_options o;
    o.initial_step = 0.001;  // the paper's alpha_1
    // The experiments use the exact-feasibility clamp (Sec. IV-B's own
    // bound); Eq. (7)'s worst-case schedule is kept for the Theorem-1
    // benches and compared in bench/ablation_stepsize. See DESIGN.md.
    o.rule = core::step_rule::exact_feasibility;
    return std::make_unique<core::dolbie_policy>(n, o);
  });
  suite.emplace_back("OPT", [](std::size_t n) {
    return std::make_unique<baselines::opt_policy>(n);
  });
  return suite;
}

ml_sweep_result sweep_training(const std::string& name,
                               const policy_factory& factory,
                               const ml::trainer_options& base_options,
                               std::size_t realizations,
                               std::uint64_t base_seed,
                               double accuracy_target) {
  // Realizations fan out across the default thread pool (DOLBIE_THREADS
  // env override). Each realization derives everything from its own seed
  // (base + r), so the result is bit-identical to the old serial loop —
  // tests/parallel_sweep_test.cpp holds this path to that contract.
  return parallel_sweep_training(name, factory, base_options, realizations,
                                 base_seed, accuracy_target, {});
}

}  // namespace dolbie::exp
