#include "exp/sweep.h"

#include "baselines/abs.h"
#include "baselines/equal.h"
#include "baselines/lbbsp.h"
#include "baselines/ogd.h"
#include "baselines/opt.h"
#include "common/error.h"
#include "core/dolbie.h"

namespace dolbie::exp {

std::vector<std::pair<std::string, policy_factory>> paper_policy_suite(
    double global_batch) {
  std::vector<std::pair<std::string, policy_factory>> suite;
  suite.emplace_back("EQU", [](std::size_t n) {
    return std::make_unique<baselines::equal_policy>(n);
  });
  suite.emplace_back("OGD", [](std::size_t n) {
    baselines::ogd_options o;
    o.learning_rate = 0.001;  // the paper's beta
    return std::make_unique<baselines::ogd_policy>(n, o);
  });
  suite.emplace_back("ABS", [](std::size_t n) {
    baselines::abs_options o;
    o.window = 5;  // the paper's P
    return std::make_unique<baselines::abs_policy>(n, o);
  });
  suite.emplace_back("LB-BSP", [global_batch](std::size_t n) {
    baselines::lbbsp_options o;
    o.delta_fraction = 5.0 / global_batch;  // the paper's Delta = 5 samples
    o.patience = 5;                         // the paper's D
    return std::make_unique<baselines::lbbsp_policy>(n, o);
  });
  suite.emplace_back("DOLBIE", [](std::size_t n) {
    core::dolbie_options o;
    o.initial_step = 0.001;  // the paper's alpha_1
    // The experiments use the exact-feasibility clamp (Sec. IV-B's own
    // bound); Eq. (7)'s worst-case schedule is kept for the Theorem-1
    // benches and compared in bench/ablation_stepsize. See DESIGN.md.
    o.rule = core::step_rule::exact_feasibility;
    return std::make_unique<core::dolbie_policy>(n, o);
  });
  suite.emplace_back("OPT", [](std::size_t n) {
    return std::make_unique<baselines::opt_policy>(n);
  });
  return suite;
}

ml_sweep_result sweep_training(const std::string& name,
                               const policy_factory& factory,
                               const ml::trainer_options& base_options,
                               std::size_t realizations,
                               std::uint64_t base_seed,
                               double accuracy_target) {
  DOLBIE_REQUIRE(realizations >= 1, "need at least one realization");
  ml_sweep_result out;
  out.policy = name;
  for (std::size_t r = 0; r < realizations; ++r) {
    ml::trainer_options options = base_options;
    options.seed = base_seed + r;
    options.record_per_worker = false;
    auto policy = factory(options.n_workers);
    ml::trainer_result result = ml::train(*policy, options);
    if (accuracy_target > 0.0) {
      out.time_to_target.push_back(
          result.time_to_accuracy(options.model, accuracy_target));
    }
    series cumulative(name);
    for (double v : result.round_latency.cumulative()) cumulative.push(v);
    result.round_latency.set_name(name);
    out.round_latency.push_back(std::move(result.round_latency));
    out.cumulative_time.push_back(std::move(cumulative));
    out.total_time.push_back(result.total_time);
    out.total_wait.push_back(result.total_wait);
    out.total_compute.push_back(result.total_compute);
    out.total_comm.push_back(result.total_comm);
    out.decision_seconds.push_back(result.decision_seconds);
  }
  return out;
}

}  // namespace dolbie::exp
