// Text and CSV reporters. Every bench binary prints the same rows/series
// the corresponding paper figure plots; --csv additionally dumps
// machine-readable files for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/series.h"
#include "stats/aggregate.h"
#include "stats/timing.h"

namespace dolbie::exp {

/// A simple fixed-width text table.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with `precision` significant digits.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` significant digits.
std::string format_double(double v, int precision = 4);

/// Print aligned per-round series side by side, subsampled to at most
/// `max_rows` printed rounds (first/last always included).
void print_series(std::ostream& os, const std::vector<series>& columns,
                  std::size_t max_rows = 25);

/// Print aggregated (mean +/- CI) series side by side, same subsampling.
void print_aggregated(std::ostream& os,
                      const std::vector<stats::aggregated_series>& columns,
                      std::size_t max_rows = 25);

/// Write per-round series as CSV (round, <name>...).
void write_series_csv(std::ostream& os, const std::vector<series>& columns);

/// Render a timing registry collected by a parallel fan-out: up to
/// `max_rows` per-run rows (wall time, rounds/s, per-stage breakdown) plus
/// aggregate lines. `elapsed_seconds` is the observed wall time of the
/// whole fan-out; summed per-run wall time divided by it is the realized
/// parallel speedup, which is printed alongside.
void print_timings(std::ostream& os, const stats::timing_registry& timings,
                   double elapsed_seconds, std::size_t max_rows = 12);

/// Parse a --flag=value style command line. Recognized keys are read with
/// the getters; unrecognized flags are ignored (each binary reads only
/// the keys it documents). Used by every bench binary.
class cli_args {
 public:
  cli_args(int argc, char** argv);

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool has(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace dolbie::exp
