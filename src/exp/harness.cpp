#include "exp/harness.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <utility>

#include "baselines/opt.h"
#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "core/max_acceptable.h"

namespace dolbie::exp {

run_trace run(core::online_policy& policy, environment& env,
              const harness_options& options) {
  DOLBIE_REQUIRE(policy.workers() == env.workers(),
                 "policy configured for " << policy.workers()
                                          << " workers, environment has "
                                          << env.workers());
  DOLBIE_REQUIRE(options.rounds >= 1, "need at least one round");
  using clock = std::chrono::steady_clock;

  const auto run_begin = clock::now();
  policy.reset();
  run_trace trace;
  trace.global_cost.set_name(std::string(policy.name()));
  trace.global_cost.reserve(options.rounds);
  auto* as_dolbie = dynamic_cast<core::dolbie_policy*>(&policy);

  // Ring of (costs, outcome) pairs awaiting delayed delivery. The harness
  // owns the cost vectors, so stale feedback can outlive its round.
  std::deque<std::pair<cost::cost_vector, core::round_outcome>> in_flight;

  // Hoisted round scratch: the views are rebuilt in place each round the
  // cost vector changes, reusing their storage across the loop.
  cost::cost_view view;
  cost::cost_view stale_view;

  for (std::size_t t = 0; t < options.rounds; ++t) {
    const auto env_begin = clock::now();
    cost::cost_vector costs = env.next_round();
    trace.environment_seconds +=
        std::chrono::duration<double>(clock::now() - env_begin).count();
    cost::view_into(costs, view);

    if (policy.clairvoyant()) {
      const auto begin = clock::now();
      policy.preview(view);
      trace.decision_seconds +=
          std::chrono::duration<double>(clock::now() - begin).count();
    }

    core::round_outcome outcome =
        core::evaluate_round(view, policy.current());
    trace.global_cost.push(outcome.global_cost);
    if (options.record_allocations) {
      trace.allocations.push_back(outcome.decision);
    }
    if (options.record_step_sizes && as_dolbie != nullptr) {
      trace.step_sizes.push_back(as_dolbie->step_size());
    }
    if (options.track_regret) {
      const baselines::instantaneous_solution opt =
          baselines::solve_instantaneous(view);
      trace.optimal_cost.push(opt.value);
      trace.regret.record(outcome.global_cost, opt.value, opt.x);
      trace.lipschitz_estimate = std::max(
          trace.lipschitz_estimate, core::estimate_lipschitz(view));
    }

    in_flight.emplace_back(std::move(costs), std::move(outcome));
    if (in_flight.size() <= options.feedback_delay) continue;  // stale yet

    const auto& [stale_costs, stale_outcome] = in_flight.front();
    cost::view_into(stale_costs, stale_view);
    core::round_feedback feedback;
    feedback.costs = &stale_view;
    feedback.local_costs = stale_outcome.local_costs;
    const auto begin = clock::now();
    policy.observe(feedback);
    trace.decision_seconds +=
        std::chrono::duration<double>(clock::now() - begin).count();
    in_flight.pop_front();
  }
  trace.wall_seconds =
      std::chrono::duration<double>(clock::now() - run_begin).count();
  return trace;
}

std::vector<run_trace> run_lockstep(
    std::span<core::dolbie_policy* const> policies,
    std::span<environment* const> envs, const harness_options& options) {
  const std::size_t realizations = policies.size();
  DOLBIE_REQUIRE(realizations >= 1,
                 "lockstep run needs at least one realization");
  DOLBIE_REQUIRE(envs.size() == realizations,
                 "lockstep run has " << realizations << " policies but "
                                     << envs.size() << " environments");
  DOLBIE_REQUIRE(options.rounds >= 1, "need at least one round");
  for (std::size_t r = 0; r < realizations; ++r) {
    DOLBIE_REQUIRE(policies[r] != nullptr && envs[r] != nullptr,
                   "lockstep run got a null policy/environment at slot " << r);
  }
  const std::size_t m = policies[0]->workers();
  for (std::size_t r = 0; r < realizations; ++r) {
    DOLBIE_REQUIRE(policies[r]->workers() == m && envs[r]->workers() == m,
                   "lockstep realizations must share one worker count (slot "
                       << r << " differs from " << m << ")");
  }
  using clock = std::chrono::steady_clock;
  const auto run_begin = clock::now();

  std::vector<run_trace> traces(realizations);
  for (std::size_t r = 0; r < realizations; ++r) {
    policies[r]->reset();
    traces[r].global_cost.set_name(std::string(policies[r]->name()));
    traces[r].global_cost.reserve(options.rounds);
  }

  // Per-realization delayed-feedback rings, exactly as in run(). All
  // realizations enqueue once per round, so readiness is uniform: feedback
  // flows for every realization from round `delay` on.
  std::vector<std::deque<std::pair<cost::cost_vector, core::round_outcome>>>
      in_flight(realizations);

  // Hoisted scratch shared by every round.
  std::vector<cost::cost_view> views(realizations);
  cost::cost_view round_view;  // concatenation of the R stale views
  cost::batch_evaluator batch;
  std::vector<double> x_all(realizations * m);
  std::vector<double> xp_all;
  std::vector<double> group_cost(realizations);
  std::vector<std::size_t> stragglers(realizations);
  double decision_total = 0.0;

  for (std::size_t t = 0; t < options.rounds; ++t) {
    // Environment + evaluation phase: per realization, same order and
    // arithmetic as run() (scalar virtual value calls — bit-identity of the
    // recorded series needs them untouched).
    for (std::size_t r = 0; r < realizations; ++r) {
      run_trace& trace = traces[r];
      const auto env_begin = clock::now();
      cost::cost_vector costs = envs[r]->next_round();
      trace.environment_seconds +=
          std::chrono::duration<double>(clock::now() - env_begin).count();
      cost::view_into(costs, views[r]);
      core::round_outcome outcome =
          core::evaluate_round(views[r], policies[r]->current());
      trace.global_cost.push(outcome.global_cost);
      if (options.record_allocations) {
        trace.allocations.push_back(outcome.decision);
      }
      if (options.record_step_sizes) {
        trace.step_sizes.push_back(policies[r]->step_size());
      }
      if (options.track_regret) {
        const baselines::instantaneous_solution opt =
            baselines::solve_instantaneous(views[r]);
        trace.optimal_cost.push(opt.value);
        trace.regret.record(outcome.global_cost, opt.value, opt.x);
        trace.lipschitz_estimate = std::max(
            trace.lipschitz_estimate, core::estimate_lipschitz(views[r]));
      }
      in_flight[r].emplace_back(std::move(costs), std::move(outcome));
    }
    if (t + 1 <= options.feedback_delay) continue;  // all still stale

    // Observe phase, batched: elect each realization's straggler exactly
    // like observe() (argmax over the stale local costs), gather the
    // current allocations, and run Eq. (4) for all R realizations as
    // groups of one shared lock-step batch call.
    const auto begin = clock::now();
    round_view.clear();
    for (std::size_t r = 0; r < realizations; ++r) {
      const auto& [stale_costs, stale_outcome] = in_flight[r].front();
      for (const auto& c : stale_costs) round_view.push_back(c.get());
      const std::size_t s = argmax(stale_outcome.local_costs);
      stragglers[r] = s;
      group_cost[r] = stale_outcome.local_costs[s];
      const core::allocation& x = policies[r]->current();
      std::copy(x.begin(), x.end(), x_all.begin() + r * m);
    }
    batch.rebind(round_view);
    core::max_acceptable_vector_groups_into(batch, x_all, group_cost,
                                            stragglers, xp_all);
    for (std::size_t r = 0; r < realizations; ++r) {
      policies[r]->observe_prepared(
          stragglers[r], group_cost[r],
          std::span<const double>(xp_all).subspan(r * m, m));
      in_flight[r].pop_front();
    }
    decision_total +=
        std::chrono::duration<double>(clock::now() - begin).count();
  }

  const double wall =
      std::chrono::duration<double>(clock::now() - run_begin).count();
  for (run_trace& trace : traces) {
    trace.decision_seconds =
        decision_total / static_cast<double>(realizations);
    trace.wall_seconds = wall / static_cast<double>(realizations);
  }
  return traces;
}

}  // namespace dolbie::exp
