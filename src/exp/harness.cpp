#include "exp/harness.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <utility>

#include "baselines/opt.h"
#include "common/error.h"
#include "core/dolbie.h"

namespace dolbie::exp {

run_trace run(core::online_policy& policy, environment& env,
              const harness_options& options) {
  DOLBIE_REQUIRE(policy.workers() == env.workers(),
                 "policy configured for " << policy.workers()
                                          << " workers, environment has "
                                          << env.workers());
  DOLBIE_REQUIRE(options.rounds >= 1, "need at least one round");
  using clock = std::chrono::steady_clock;

  const auto run_begin = clock::now();
  policy.reset();
  run_trace trace;
  trace.global_cost.set_name(std::string(policy.name()));
  trace.global_cost.reserve(options.rounds);
  auto* as_dolbie = dynamic_cast<core::dolbie_policy*>(&policy);

  // Ring of (costs, outcome) pairs awaiting delayed delivery. The harness
  // owns the cost vectors, so stale feedback can outlive its round.
  std::deque<std::pair<cost::cost_vector, core::round_outcome>> in_flight;

  // Hoisted round scratch: the views are rebuilt in place each round the
  // cost vector changes, reusing their storage across the loop.
  cost::cost_view view;
  cost::cost_view stale_view;

  for (std::size_t t = 0; t < options.rounds; ++t) {
    const auto env_begin = clock::now();
    cost::cost_vector costs = env.next_round();
    trace.environment_seconds +=
        std::chrono::duration<double>(clock::now() - env_begin).count();
    cost::view_into(costs, view);

    if (policy.clairvoyant()) {
      const auto begin = clock::now();
      policy.preview(view);
      trace.decision_seconds +=
          std::chrono::duration<double>(clock::now() - begin).count();
    }

    core::round_outcome outcome =
        core::evaluate_round(view, policy.current());
    trace.global_cost.push(outcome.global_cost);
    if (options.record_allocations) {
      trace.allocations.push_back(outcome.decision);
    }
    if (options.record_step_sizes && as_dolbie != nullptr) {
      trace.step_sizes.push_back(as_dolbie->step_size());
    }
    if (options.track_regret) {
      const baselines::instantaneous_solution opt =
          baselines::solve_instantaneous(view);
      trace.optimal_cost.push(opt.value);
      trace.regret.record(outcome.global_cost, opt.value, opt.x);
      trace.lipschitz_estimate = std::max(
          trace.lipschitz_estimate, core::estimate_lipschitz(view));
    }

    in_flight.emplace_back(std::move(costs), std::move(outcome));
    if (in_flight.size() <= options.feedback_delay) continue;  // stale yet

    const auto& [stale_costs, stale_outcome] = in_flight.front();
    cost::view_into(stale_costs, stale_view);
    core::round_feedback feedback;
    feedback.costs = &stale_view;
    feedback.local_costs = stale_outcome.local_costs;
    const auto begin = clock::now();
    policy.observe(feedback);
    trace.decision_seconds +=
        std::chrono::duration<double>(clock::now() - begin).count();
    in_flight.pop_front();
  }
  trace.wall_seconds =
      std::chrono::duration<double>(clock::now() - run_begin).count();
  return trace;
}

}  // namespace dolbie::exp
