// Environments: the adversary side of the online game. An environment
// produces the (hidden) cost functions of each round; the harness plays a
// policy against it. Environments are exogenous — they never see decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "cost/time_varying.h"

namespace dolbie::exp {

/// A source of per-round cost functions for N workers.
class environment {
 public:
  virtual ~environment() = default;
  virtual std::size_t workers() const = 0;
  /// Generate the next round's cost functions (one per worker).
  virtual cost::cost_vector next_round() = 0;
};

/// Environment assembled from independent per-worker cost sequences.
class sequence_environment final : public environment {
 public:
  sequence_environment(
      std::vector<std::unique_ptr<cost::cost_sequence>> sequences,
      std::uint64_t seed);

  std::size_t workers() const override { return sequences_.size(); }
  cost::cost_vector next_round() override;

 private:
  std::vector<std::unique_ptr<cost::cost_sequence>> sequences_;
  rng gen_;
};

/// Families of synthetic environments used by the regret and ablation
/// benches and the property tests.
enum class synthetic_family {
  affine,      ///< heterogeneous affine costs (the ML latency family)
  power,       ///< convex power costs (exponent ~2)
  saturating,  ///< concave saturating costs (non-convex max)
  mixed,       ///< one of each family round-robin across workers
};

/// Build a synthetic N-worker environment with process-driven variation.
/// `volatility` scales how fast the costs drift (0 = static environment).
std::unique_ptr<environment> make_synthetic_environment(
    std::size_t n_workers, synthetic_family family, std::uint64_t seed,
    double volatility = 1.0);

}  // namespace dolbie::exp
