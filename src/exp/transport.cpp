#include "exp/transport.h"

#include <chrono>

#include "common/error.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"

namespace dolbie::exp {

net::peer_address parse_peer(const std::string& entry) {
  const std::size_t colon = entry.rfind(':');
  DOLBIE_REQUIRE(colon != std::string::npos && colon > 0 &&
                     colon + 1 < entry.size(),
                 "malformed peer '" << entry << "' (expected host:port)");
  const std::string host = entry.substr(0, colon);
  const std::string port_text = entry.substr(colon + 1);
  std::uint64_t port = 0;
  for (char c : port_text) {
    DOLBIE_REQUIRE(c >= '0' && c <= '9',
                   "malformed port in peer '" << entry << "'");
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    DOLBIE_REQUIRE(port <= 65535, "port out of range in peer '" << entry
                                                                << "'");
  }
  DOLBIE_REQUIRE(port > 0, "port 0 in peer '" << entry << "'");
  return {host, static_cast<std::uint16_t>(port)};
}

std::vector<net::peer_address> parse_peer_list(const std::string& list) {
  std::vector<net::peer_address> peers;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string entry =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!entry.empty()) peers.push_back(parse_peer(entry));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return peers;
}

transport_spec transport_from_args(const cli_args& args) {
  transport_spec spec;
  const std::string kind = args.get_string("transport", "memory");
  if (kind == "memory") {
    spec.kind = transport_kind::memory;
    DOLBIE_REQUIRE(!args.has("peers"),
                   "--peers only applies to --transport=tcp");
  } else if (kind == "tcp") {
    spec.kind = transport_kind::tcp;
    spec.peers = parse_peer_list(args.get_string("peers", ""));
  } else {
    DOLBIE_REQUIRE(false, "unknown transport '" << kind
                                                << "' (memory|tcp)");
  }
  const std::string engine = args.get_string("engine", "mw");
  if (engine == "mw") {
    spec.mode = dist::cluster_mode::master_worker;
  } else if (engine == "fd") {
    spec.mode = dist::cluster_mode::fully_distributed;
  } else {
    DOLBIE_REQUIRE(false, "unknown engine '" << engine << "' (mw|fd)");
  }
  spec.receive_timeout_ms = args.get_u64("receive-timeout-ms", 0);
  return spec;
}

std::unique_ptr<core::online_policy> make_transport_policy(
    std::size_t n_workers, const transport_spec& spec,
    obs::metrics_registry* metrics) {
  if (spec.kind == transport_kind::memory) {
    dist::protocol_options popts;
    popts.metrics = metrics;
    // The cluster engines always run the degraded round machinery (a
    // remote peer can die mid-round), so the in-memory reference used
    // for --check-memory comparisons must run the same arithmetic:
    // force the fault plan on with nothing scheduled. With zero faults
    // every message is delivered, but the degraded FD straggler
    // absorption folds per-sender deltas instead of 1 - sum(claimed) —
    // equal in exact arithmetic, not bit-identical in floats.
    popts.faults.force = true;
    if (spec.mode == dist::cluster_mode::master_worker) {
      return std::make_unique<dist::master_worker_policy>(n_workers, popts);
    }
    return std::make_unique<dist::fully_distributed_policy>(n_workers, popts);
  }
  dist::cluster_options copts;
  copts.mode = spec.mode;
  copts.peers = spec.peers;
  copts.link.receive_timeout =
      std::chrono::milliseconds(spec.receive_timeout_ms);
  copts.metrics = metrics;
  return std::make_unique<dist::cluster_policy>(n_workers, copts);
}

}  // namespace dolbie::exp
