#include "exp/scenario.h"

#include "common/error.h"

namespace dolbie::exp {

sequence_environment::sequence_environment(
    std::vector<std::unique_ptr<cost::cost_sequence>> sequences,
    std::uint64_t seed)
    : sequences_(std::move(sequences)), gen_(seed) {
  DOLBIE_REQUIRE(!sequences_.empty(), "environment needs >= 1 sequence");
  for (const auto& s : sequences_) {
    DOLBIE_REQUIRE(s != nullptr, "environment sequence is null");
  }
}

cost::cost_vector sequence_environment::next_round() {
  cost::cost_vector out;
  out.reserve(sequences_.size());
  for (auto& s : sequences_) out.push_back(s->next(gen_));
  return out;
}

std::unique_ptr<environment> make_synthetic_environment(
    std::size_t n_workers, synthetic_family family, std::uint64_t seed,
    double volatility) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(volatility >= 0.0, "volatility must be >= 0");
  rng setup(seed ^ 0xD01B1Eull);
  std::vector<std::unique_ptr<cost::cost_sequence>> sequences;
  sequences.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    // Heterogeneous base scale per worker, spread over ~20x.
    const double base = setup.uniform(1.0, 20.0);
    const double sigma = 0.05 * volatility * base;
    auto scale = std::make_unique<cost::ar1_process>(
        base, 0.8, sigma, 0.25 * base, 4.0 * base);
    synthetic_family pick = family;
    if (family == synthetic_family::mixed) {
      constexpr synthetic_family cycle[3] = {synthetic_family::affine,
                                             synthetic_family::power,
                                             synthetic_family::saturating};
      pick = cycle[i % 3];
    }
    switch (pick) {
      case synthetic_family::affine: {
        const double intercept_base = setup.uniform(0.0, 0.5);
        auto intercept = std::make_unique<cost::ar1_process>(
            intercept_base, 0.8, 0.02 * volatility, 0.0,
            intercept_base + 0.5);
        sequences.push_back(std::make_unique<cost::affine_sequence>(
            std::move(scale), std::move(intercept)));
        break;
      }
      case synthetic_family::power:
        sequences.push_back(std::make_unique<cost::power_sequence>(
            std::move(scale), setup.uniform(1.5, 2.5),
            setup.uniform(0.0, 0.3)));
        break;
      case synthetic_family::saturating:
        sequences.push_back(std::make_unique<cost::saturating_sequence>(
            std::move(scale), setup.uniform(0.1, 0.5),
            setup.uniform(0.0, 0.3)));
        break;
      case synthetic_family::mixed:
        DOLBIE_REQUIRE(false, "mixed resolved above");
    }
  }
  return std::make_unique<sequence_environment>(std::move(sequences), seed);
}

}  // namespace dolbie::exp
