#include "exp/chaos.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/dolbie.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "shard/hierarchical_engine.h"

namespace dolbie::exp {
namespace {

constexpr const char* kEngineNames[] = {"MW",       "FD",      "MW-async",
                                        "FD-async", "MW-hier", "FD-hier"};

/// True when the kill/checkpoint/restore drill replaces the plain
/// exp::run-driven cells with the resumable manual drive loop.
bool recovery_active(const chaos_options& options) {
  return options.kill_at > 0 || !options.restore_path.empty();
}

/// Per-cell checkpoint file: <dir>/<engine>_<rate with '.' -> 'p'>.ckpt.
std::string cell_checkpoint_file(const std::string& dir, const char* engine,
                                 double rate) {
  std::string key = std::to_string(rate);
  for (char& c : key) {
    if (c == '.') c = 'p';
  }
  return dir + "/" + engine + "_" + key + ".ckpt";
}

/// Write one cell's checkpoint: chaos_checkpoint-framed header, the
/// partial cumulative cost, the cut round, then the engine's own
/// length-prefixed snapshot bytes.
void write_cell_checkpoint(const std::string& path, std::uint64_t workers,
                           double partial_cost, std::uint64_t kill_round,
                           const std::vector<std::uint8_t>& engine_bytes) {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::chaos_checkpoint, workers);
  w.f64(partial_cost);
  w.u64(kill_round);
  w.u64(engine_bytes.size());
  w.raw(engine_bytes.data(), engine_bytes.size());
  std::ofstream out(path, std::ios::binary);
  DOLBIE_REQUIRE(out.good(), "cannot open checkpoint file " << path);
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.bytes().size()));
  DOLBIE_REQUIRE(out.good(), "short write to checkpoint file " << path);
}

struct cell_checkpoint {
  double partial_cost = 0.0;
  std::uint64_t kill_round = 0;
  std::vector<std::uint8_t> engine_bytes;
};

cell_checkpoint read_cell_checkpoint(const std::string& path,
                                     std::uint64_t workers,
                                     std::uint64_t rounds) {
  std::ifstream in(path, std::ios::binary);
  DOLBIE_REQUIRE(in.good(), "cannot open checkpoint file " << path);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  snapshot_reader r(bytes);
  cell_checkpoint ck;
  read_snapshot_header(r, snapshot_kind::chaos_checkpoint, workers);
  ck.partial_cost = r.f64();
  ck.kill_round = r.u64();
  DOLBIE_REQUIRE(ck.kill_round >= 1 && ck.kill_round < rounds,
                 "checkpoint " << path << " was cut at round "
                               << ck.kill_round << ", outside this grid's "
                               << rounds << " rounds");
  const std::uint64_t size = r.u64();
  r.require_count(size, 1);
  const std::uint8_t* data = r.raw(size);
  ck.engine_bytes.assign(data, data + size);
  r.finish();
  return ck;
}

/// The resumable drive loop for a phase-synchronous engine: exactly the
/// sequence run() plays (reset, evaluate the round at current(), observe),
/// restricted to rounds [start, stop). The cost sum accumulates left to
/// right — the same order series::total() folds — so a killed cell's
/// stored partial plus the resumed remainder is bit-identical to the
/// uninterrupted run's total.
template <typename Policy>
void drive_policy_rounds(Policy& policy, environment& env,
                         std::uint64_t start, std::uint64_t stop,
                         chaos_row& row) {
  for (std::uint64_t t = 0; t < start; ++t) {
    (void)env.next_round();  // fast-forward the deterministic cost stream
  }
  for (std::uint64_t t = start; t < stop; ++t) {
    const cost::cost_vector costs = env.next_round();
    const cost::cost_view view = cost::view_of(costs);
    const core::round_outcome outcome =
        core::evaluate_round(view, policy.current());
    row.cumulative_cost += outcome.global_cost;
    core::round_feedback feedback;
    feedback.costs = &view;
    feedback.local_costs = outcome.local_costs;
    policy.observe(feedback);
  }
}

/// Kill/checkpoint/restore orchestration for one phase-synchronous cell.
template <typename Policy>
void run_policy_recovery_cell(Policy& policy, environment& env,
                              const chaos_options& options, double drop_rate,
                              chaos_row& row) {
  policy.reset();
  std::uint64_t start = 0;
  if (!options.restore_path.empty()) {
    const cell_checkpoint ck = read_cell_checkpoint(
        cell_checkpoint_file(options.restore_path, row.engine.c_str(),
                             drop_rate),
        options.workers, options.rounds);
    policy.restore(ck.engine_bytes);
    row.cumulative_cost = ck.partial_cost;
    start = ck.kill_round;
  }
  const std::uint64_t stop =
      options.kill_at > 0
          ? std::min<std::uint64_t>(options.kill_at, options.rounds)
          : options.rounds;
  drive_policy_rounds(policy, env, start, stop, row);
  if (!options.checkpoint_path.empty()) {
    write_cell_checkpoint(
        cell_checkpoint_file(options.checkpoint_path, row.engine.c_str(),
                             drop_rate),
        options.workers, row.cumulative_cost, stop, policy.snapshot());
  }
}

/// Drive one event-driven engine with the harness's accounting: the
/// round-t global cost is evaluated at the allocation the engine holds
/// entering the round, exactly as run() scores a policy's current().
/// Honors the same kill/checkpoint/restore drill as the sync cells.
template <typename Engine>
void run_async_cell(Engine& engine, environment& env,
                    const chaos_options& options, double drop_rate,
                    chaos_row& row) {
  std::uint64_t start = 0;
  if (!options.restore_path.empty()) {
    const cell_checkpoint ck = read_cell_checkpoint(
        cell_checkpoint_file(options.restore_path, row.engine.c_str(),
                             drop_rate),
        options.workers, options.rounds);
    engine.restore(ck.engine_bytes);
    row.cumulative_cost = ck.partial_cost;
    start = ck.kill_round;
  }
  const std::uint64_t stop =
      options.kill_at > 0
          ? std::min<std::uint64_t>(options.kill_at, options.rounds)
          : options.rounds;
  for (std::uint64_t t = 0; t < start; ++t) {
    (void)env.next_round();  // fast-forward the deterministic cost stream
  }
  for (std::uint64_t t = start; t < stop; ++t) {
    const cost::cost_vector costs = env.next_round();
    const cost::cost_view view = cost::view_of(costs);
    const core::round_outcome outcome =
        core::evaluate_round(view, engine.allocation());
    row.cumulative_cost += outcome.global_cost;
    engine.run_round(view);
  }
  if (!options.checkpoint_path.empty()) {
    write_cell_checkpoint(
        cell_checkpoint_file(options.checkpoint_path, row.engine.c_str(),
                             drop_rate),
        options.workers, row.cumulative_cost, stop, engine.snapshot());
  }
  row.report = engine.faults();
  row.simplex_ok = on_simplex(engine.allocation());
}

chaos_row run_cell(const chaos_options& options, std::size_t engine,
                   double drop_rate) {
  net::fault_plan plan;
  plan.seed = options.fault_seed;
  plan.drop_rate = drop_rate;
  plan.crashes = options.crashes;

  dist::protocol_options popts;
  popts.faults = plan;
  popts.retry_budget = options.retry_budget;

  auto env = make_synthetic_environment(options.workers, options.family,
                                        options.seed);
  harness_options hopts;
  hopts.rounds = options.rounds;

  chaos_row row;
  row.drop_rate = drop_rate;
  row.engine = kEngineNames[engine];
  const bool recovery = recovery_active(options);
  if (engine == 0) {
    dist::master_worker_policy policy(options.workers, popts);
    if (recovery) {
      run_policy_recovery_cell(policy, *env, options, drop_rate, row);
    } else {
      const run_trace trace = run(policy, *env, hopts);
      row.cumulative_cost = trace.global_cost.total();
    }
    row.report = policy.faults();
    row.simplex_ok = on_simplex(policy.current());
  } else if (engine == 1) {
    dist::fully_distributed_policy policy(options.workers, popts);
    if (recovery) {
      run_policy_recovery_cell(policy, *env, options, drop_rate, row);
    } else {
      const run_trace trace = run(policy, *env, hopts);
      row.cumulative_cost = trace.global_cost.total();
    }
    row.report = policy.faults();
    row.simplex_ok = on_simplex(policy.current());
  } else if (engine == 2 || engine == 3) {
    dist::async_options aopts;
    aopts.protocol = popts;
    if (engine == 2) {
      dist::async_master_worker e(options.workers, aopts);
      run_async_cell(e, *env, options, drop_rate, row);
    } else {
      dist::async_fully_distributed e(options.workers, aopts);
      run_async_cell(e, *env, options, drop_rate, row);
    }
  } else {
    shard::hierarchical_options sopts;
    sopts.protocol = popts;
    sopts.plan.shard_size = options.shard_size;
    sopts.plan.fanin = options.fanin;
    sopts.mode = engine == 4 ? shard::shard_protocol::master_worker
                             : shard::shard_protocol::fully_distributed;
    sopts.aggregator_crashes = options.aggregator_crashes;
    shard::hierarchical_engine policy(options.workers, sopts);
    if (recovery) {
      run_policy_recovery_cell(policy, *env, options, drop_rate, row);
    } else {
      const run_trace trace = run(policy, *env, hopts);
      row.cumulative_cost = trace.global_cost.total();
    }
    row.report = policy.report();
    row.simplex_ok = on_simplex(policy.current());
  }
  return row;
}

}  // namespace

std::vector<chaos_row> run_chaos_grid(const chaos_options& options) {
  std::vector<double> rates = options.drop_rates;
  if (std::find(rates.begin(), rates.end(), 0.0) == rates.end()) {
    rates.insert(rates.begin(), 0.0);
  }
  std::vector<std::size_t> engines;
  if (options.include_flat) {
    engines.push_back(0);
    engines.push_back(1);
  }
  if (options.include_async) {
    engines.push_back(2);
    engines.push_back(3);
  }
  if (options.include_hierarchical) {
    engines.push_back(4);
    engines.push_back(5);
  }
  // Fail fast on a bad --checkpoint/--restore setup before any cell runs:
  // a grid that dies mid-flight on an unwritable directory or a missing
  // per-cell file wastes the whole sweep and leaves a half-written state
  // directory behind.
  if (!options.checkpoint_path.empty()) {
    DOLBIE_REQUIRE(options.kill_at >= 1 && options.kill_at < options.rounds,
                   "--checkpoint needs --kill-at inside (0, "
                       << options.rounds << ") to know where to cut");
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_path, ec);
    DOLBIE_REQUIRE(!ec, "--checkpoint directory " << options.checkpoint_path
                                                  << " cannot be created: "
                                                  << ec.message());
    // Probe-write: surface a read-only or quota-exhausted directory now.
    const std::string probe =
        (std::filesystem::path(options.checkpoint_path) / ".probe").string();
    {
      std::ofstream out(probe, std::ios::binary | std::ios::trunc);
      out << "probe";
      DOLBIE_REQUIRE(out.good(), "--checkpoint directory "
                                     << options.checkpoint_path
                                     << " is not writable");
    }
    std::filesystem::remove(probe, ec);
  }
  if (!options.restore_path.empty()) {
    DOLBIE_REQUIRE(std::filesystem::is_directory(options.restore_path),
                   "--restore directory " << options.restore_path
                                          << " does not exist");
    for (const std::size_t e : engines) {
      for (const double rate : rates) {
        const std::string path =
            cell_checkpoint_file(options.restore_path, kEngineNames[e], rate);
        DOLBIE_REQUIRE(std::filesystem::exists(path),
                       "--restore is missing the checkpoint for engine "
                           << kEngineNames[e] << " at drop rate " << rate
                           << " (" << path << ")");
      }
    }
  }
  const std::size_t cells = engines.size() * rates.size();
  std::vector<chaos_row> rows = parallel_map<chaos_row>(
      cells, [&](std::size_t cell) {
        return run_cell(options, engines[cell / rates.size()],
                        rates[cell % rates.size()]);
      });
  // Excess over each engine's own zero-drop baseline.
  for (const std::size_t e : engines) {
    double baseline = 0.0;
    for (const chaos_row& row : rows) {
      if (row.engine == kEngineNames[e] && row.drop_rate == 0.0) {
        baseline = row.cumulative_cost;
        break;
      }
    }
    for (chaos_row& row : rows) {
      if (row.engine == kEngineNames[e]) {
        row.excess_vs_clean = row.cumulative_cost - baseline;
      }
    }
  }
  return rows;
}

void print_chaos_table(std::ostream& os, const std::vector<chaos_row>& rows) {
  table t({"engine", "drop", "cum cost", "excess vs clean", "degraded",
           "holds", "failovers", "removed", "retransmits", "simplex"});
  for (const chaos_row& row : rows) {
    t.add_row({row.engine, format_double(row.drop_rate, 2),
               format_double(row.cumulative_cost, 4),
               format_double(row.excess_vs_clean, 4),
               std::to_string(row.report.degraded_rounds),
               std::to_string(row.report.zero_step_holds),
               std::to_string(row.report.straggler_failovers),
               std::to_string(row.report.removed_workers),
               std::to_string(row.report.retransmits),
               row.simplex_ok ? "ok" : "VIOLATED"});
  }
  t.print(os);
}

void write_chaos_jsonl(std::ostream& os, const chaos_options& options,
                       const std::vector<chaos_row>& rows) {
  // Full round-trip precision: the chaos-smoke restore leg compares the
  // resumed grid's costs to the uninterrupted grid's for exact equality.
  const std::streamsize saved =
      os.precision(std::numeric_limits<double>::max_digits10);
  for (const chaos_row& row : rows) {
    os << "{\"engine\":\"" << row.engine << "\""
       << ",\"drop_rate\":" << row.drop_rate
       << ",\"fault_seed\":" << options.fault_seed
       << ",\"workers\":" << options.workers
       << ",\"rounds\":" << options.rounds
       << ",\"cumulative_cost\":" << row.cumulative_cost
       << ",\"excess_vs_clean\":" << row.excess_vs_clean
       << ",\"degraded_rounds\":" << row.report.degraded_rounds
       << ",\"zero_step_holds\":" << row.report.zero_step_holds
       << ",\"straggler_failovers\":" << row.report.straggler_failovers
       << ",\"removed_workers\":" << row.report.removed_workers
       << ",\"aborted_rounds\":" << row.report.aborted_rounds
       << ",\"retransmits\":" << row.report.retransmits
       << ",\"timeouts\":" << row.report.timeouts
       << ",\"simplex_ok\":" << (row.simplex_ok ? "true" : "false")
       << "}\n";
  }
  os.precision(saved);
}

bool chaos_requested(const cli_args& args) {
  return args.has("chaos") || args.has("chaos-hier") ||
         args.has("fault-seed") || args.has("drop-rate") ||
         args.has("drop-rates") || args.has("crash-schedule") ||
         args.has("kill-at") || args.has("restore");
}

chaos_options chaos_options_from_args(const cli_args& args) {
  chaos_options options;
  options.workers = args.get_u64("chaos-workers", 30);
  options.rounds = args.get_u64("chaos-rounds", 200);
  options.seed = args.get_u64("seed", 42);
  options.fault_seed = args.get_u64("fault-seed", 1);
  options.retry_budget = args.get_u64("retry-budget", 5);
  if (args.has("drop-rates")) {
    options.drop_rates.clear();
    std::stringstream ss(args.get_string("drop-rates", ""));
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (token.empty()) continue;
      const double rate = std::stod(token);
      DOLBIE_REQUIRE(rate >= 0.0 && rate < 1.0,
                     "drop rate " << rate << " outside [0, 1)");
      options.drop_rates.push_back(rate);
    }
    DOLBIE_REQUIRE(!options.drop_rates.empty(),
                   "--drop-rates carries no rates");
  } else if (args.has("drop-rate")) {
    options.drop_rates = {0.0, args.get_double("drop-rate", 0.2)};
  }
  const std::string schedule = args.get_string("crash-schedule", "");
  if (!schedule.empty()) {
    options.crashes = net::parse_crash_schedule(schedule);
  }
  options.include_flat = !args.has("chaos-no-flat");
  options.include_async = args.has("chaos-async");
  options.include_hierarchical = args.has("chaos-hier");
  DOLBIE_REQUIRE(options.include_flat || options.include_async ||
                     options.include_hierarchical,
                 "--chaos-no-flat needs --chaos-hier or --chaos-async");
  options.shard_size = args.get_u64("shard-size", 0);
  options.fanin = args.get_u64("fanin", 4);
  const std::string agg_schedule = args.get_string("agg-crash-schedule", "");
  if (!agg_schedule.empty()) {
    options.aggregator_crashes = net::parse_crash_schedule(agg_schedule);
  }
  options.kill_at = args.get_u64("kill-at", 0);
  options.checkpoint_path = args.get_string("checkpoint", "");
  options.restore_path = args.get_string("restore", "");
  if (options.kill_at > 0) {
    DOLBIE_REQUIRE(options.kill_at < options.rounds,
                   "--kill-at=" << options.kill_at
                                << " must fall before the run's "
                                << options.rounds << " rounds");
    DOLBIE_REQUIRE(
        !options.checkpoint_path.empty(),
        "--kill-at without --checkpoint=DIR loses the partial run");
  } else {
    DOLBIE_REQUIRE(options.checkpoint_path.empty(),
                   "--checkpoint needs --kill-at=R to know where to cut");
  }
  DOLBIE_REQUIRE(options.restore_path.empty() || options.kill_at == 0,
                 "--restore resumes a killed run; drop --kill-at/--checkpoint "
                 "on the resuming invocation");
  return options;
}

void run_chaos_from_args(std::ostream& os, const cli_args& args) {
  const chaos_options options = chaos_options_from_args(args);
  os << "\n=== chaos: regret vs drop rate (fault seed "
     << options.fault_seed << ", N=" << options.workers << ", T="
     << options.rounds << ") ===\n\n";
  if (options.kill_at > 0) {
    os << "Crash drill: every cell killed after round " << options.kill_at
       << ", checkpoints under " << options.checkpoint_path << "\n\n";
  }
  if (!options.restore_path.empty()) {
    os << "Crash drill: every cell resumed from " << options.restore_path
       << "\n\n";
  }
  const std::vector<chaos_row> rows = run_chaos_grid(options);
  print_chaos_table(os, rows);
  bool all_ok = true;
  for (const chaos_row& row : rows) all_ok = all_ok && row.simplex_ok;
  os << "\nDegraded rounds hold x_{i,t} for unheard workers; the excess "
        "column is the regret price of those zero steps.\nSimplex "
        "invariant: " << (all_ok ? "held in every cell." : "VIOLATED.")
     << "\n";
  const std::string jsonl = args.get_string("chaos-jsonl", "");
  if (!jsonl.empty()) {
    std::ofstream out(jsonl);
    DOLBIE_REQUIRE(out.good(), "cannot open " << jsonl);
    write_chaos_jsonl(out, options, rows);
    os << "Wrote " << rows.size() << " rows to " << jsonl << "\n";
  }
}

}  // namespace dolbie::exp
