#include "exp/chaos.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "shard/hierarchical_engine.h"

namespace dolbie::exp {
namespace {

constexpr const char* kEngineNames[] = {"MW",       "FD",      "MW-async",
                                        "FD-async", "MW-hier", "FD-hier"};

/// Drive one event-driven engine with the harness's accounting: the
/// round-t global cost is evaluated at the allocation the engine holds
/// entering the round, exactly as run() scores a policy's current().
template <typename Engine>
void run_async_cell(Engine& engine, environment& env, std::size_t rounds,
                    chaos_row& row) {
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = env.next_round();
    const cost::cost_view view = cost::view_of(costs);
    const core::round_outcome outcome =
        core::evaluate_round(view, engine.allocation());
    row.cumulative_cost += outcome.global_cost;
    engine.run_round(view);
  }
  row.report = engine.faults();
  row.simplex_ok = on_simplex(engine.allocation());
}

chaos_row run_cell(const chaos_options& options, std::size_t engine,
                   double drop_rate) {
  net::fault_plan plan;
  plan.seed = options.fault_seed;
  plan.drop_rate = drop_rate;
  plan.crashes = options.crashes;

  dist::protocol_options popts;
  popts.faults = plan;
  popts.retry_budget = options.retry_budget;

  auto env = make_synthetic_environment(options.workers, options.family,
                                        options.seed);
  harness_options hopts;
  hopts.rounds = options.rounds;

  chaos_row row;
  row.drop_rate = drop_rate;
  row.engine = kEngineNames[engine];
  if (engine == 0) {
    dist::master_worker_policy policy(options.workers, popts);
    const run_trace trace = run(policy, *env, hopts);
    row.cumulative_cost = trace.global_cost.total();
    row.report = policy.faults();
    row.simplex_ok = on_simplex(policy.current());
  } else if (engine == 1) {
    dist::fully_distributed_policy policy(options.workers, popts);
    const run_trace trace = run(policy, *env, hopts);
    row.cumulative_cost = trace.global_cost.total();
    row.report = policy.faults();
    row.simplex_ok = on_simplex(policy.current());
  } else if (engine == 2 || engine == 3) {
    dist::async_options aopts;
    aopts.protocol = popts;
    if (engine == 2) {
      dist::async_master_worker e(options.workers, aopts);
      run_async_cell(e, *env, options.rounds, row);
    } else {
      dist::async_fully_distributed e(options.workers, aopts);
      run_async_cell(e, *env, options.rounds, row);
    }
  } else {
    shard::hierarchical_options sopts;
    sopts.protocol = popts;
    sopts.plan.shard_size = options.shard_size;
    sopts.plan.fanin = options.fanin;
    sopts.mode = engine == 4 ? shard::shard_protocol::master_worker
                             : shard::shard_protocol::fully_distributed;
    sopts.aggregator_crashes = options.aggregator_crashes;
    shard::hierarchical_engine policy(options.workers, sopts);
    const run_trace trace = run(policy, *env, hopts);
    row.cumulative_cost = trace.global_cost.total();
    row.report = policy.report();
    row.simplex_ok = on_simplex(policy.current());
  }
  return row;
}

}  // namespace

std::vector<chaos_row> run_chaos_grid(const chaos_options& options) {
  std::vector<double> rates = options.drop_rates;
  if (std::find(rates.begin(), rates.end(), 0.0) == rates.end()) {
    rates.insert(rates.begin(), 0.0);
  }
  std::vector<std::size_t> engines;
  if (options.include_flat) {
    engines.push_back(0);
    engines.push_back(1);
  }
  if (options.include_async) {
    engines.push_back(2);
    engines.push_back(3);
  }
  if (options.include_hierarchical) {
    engines.push_back(4);
    engines.push_back(5);
  }
  const std::size_t cells = engines.size() * rates.size();
  std::vector<chaos_row> rows = parallel_map<chaos_row>(
      cells, [&](std::size_t cell) {
        return run_cell(options, engines[cell / rates.size()],
                        rates[cell % rates.size()]);
      });
  // Excess over each engine's own zero-drop baseline.
  for (const std::size_t e : engines) {
    double baseline = 0.0;
    for (const chaos_row& row : rows) {
      if (row.engine == kEngineNames[e] && row.drop_rate == 0.0) {
        baseline = row.cumulative_cost;
        break;
      }
    }
    for (chaos_row& row : rows) {
      if (row.engine == kEngineNames[e]) {
        row.excess_vs_clean = row.cumulative_cost - baseline;
      }
    }
  }
  return rows;
}

void print_chaos_table(std::ostream& os, const std::vector<chaos_row>& rows) {
  table t({"engine", "drop", "cum cost", "excess vs clean", "degraded",
           "holds", "failovers", "removed", "retransmits", "simplex"});
  for (const chaos_row& row : rows) {
    t.add_row({row.engine, format_double(row.drop_rate, 2),
               format_double(row.cumulative_cost, 4),
               format_double(row.excess_vs_clean, 4),
               std::to_string(row.report.degraded_rounds),
               std::to_string(row.report.zero_step_holds),
               std::to_string(row.report.straggler_failovers),
               std::to_string(row.report.removed_workers),
               std::to_string(row.report.retransmits),
               row.simplex_ok ? "ok" : "VIOLATED"});
  }
  t.print(os);
}

void write_chaos_jsonl(std::ostream& os, const chaos_options& options,
                       const std::vector<chaos_row>& rows) {
  for (const chaos_row& row : rows) {
    os << "{\"engine\":\"" << row.engine << "\""
       << ",\"drop_rate\":" << row.drop_rate
       << ",\"fault_seed\":" << options.fault_seed
       << ",\"workers\":" << options.workers
       << ",\"rounds\":" << options.rounds
       << ",\"cumulative_cost\":" << row.cumulative_cost
       << ",\"excess_vs_clean\":" << row.excess_vs_clean
       << ",\"degraded_rounds\":" << row.report.degraded_rounds
       << ",\"zero_step_holds\":" << row.report.zero_step_holds
       << ",\"straggler_failovers\":" << row.report.straggler_failovers
       << ",\"removed_workers\":" << row.report.removed_workers
       << ",\"aborted_rounds\":" << row.report.aborted_rounds
       << ",\"retransmits\":" << row.report.retransmits
       << ",\"timeouts\":" << row.report.timeouts
       << ",\"simplex_ok\":" << (row.simplex_ok ? "true" : "false")
       << "}\n";
  }
}

bool chaos_requested(const cli_args& args) {
  return args.has("chaos") || args.has("chaos-hier") ||
         args.has("fault-seed") || args.has("drop-rate") ||
         args.has("drop-rates") || args.has("crash-schedule");
}

chaos_options chaos_options_from_args(const cli_args& args) {
  chaos_options options;
  options.workers = args.get_u64("chaos-workers", 30);
  options.rounds = args.get_u64("chaos-rounds", 200);
  options.seed = args.get_u64("seed", 42);
  options.fault_seed = args.get_u64("fault-seed", 1);
  options.retry_budget = args.get_u64("retry-budget", 5);
  if (args.has("drop-rates")) {
    options.drop_rates.clear();
    std::stringstream ss(args.get_string("drop-rates", ""));
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (token.empty()) continue;
      const double rate = std::stod(token);
      DOLBIE_REQUIRE(rate >= 0.0 && rate < 1.0,
                     "drop rate " << rate << " outside [0, 1)");
      options.drop_rates.push_back(rate);
    }
    DOLBIE_REQUIRE(!options.drop_rates.empty(),
                   "--drop-rates carries no rates");
  } else if (args.has("drop-rate")) {
    options.drop_rates = {0.0, args.get_double("drop-rate", 0.2)};
  }
  const std::string schedule = args.get_string("crash-schedule", "");
  if (!schedule.empty()) {
    options.crashes = net::parse_crash_schedule(schedule);
  }
  options.include_flat = !args.has("chaos-no-flat");
  options.include_async = args.has("chaos-async");
  options.include_hierarchical = args.has("chaos-hier");
  DOLBIE_REQUIRE(options.include_flat || options.include_async ||
                     options.include_hierarchical,
                 "--chaos-no-flat needs --chaos-hier or --chaos-async");
  options.shard_size = args.get_u64("shard-size", 0);
  options.fanin = args.get_u64("fanin", 4);
  const std::string agg_schedule = args.get_string("agg-crash-schedule", "");
  if (!agg_schedule.empty()) {
    options.aggregator_crashes = net::parse_crash_schedule(agg_schedule);
  }
  return options;
}

void run_chaos_from_args(std::ostream& os, const cli_args& args) {
  const chaos_options options = chaos_options_from_args(args);
  os << "\n=== chaos: regret vs drop rate (fault seed "
     << options.fault_seed << ", N=" << options.workers << ", T="
     << options.rounds << ") ===\n\n";
  const std::vector<chaos_row> rows = run_chaos_grid(options);
  print_chaos_table(os, rows);
  bool all_ok = true;
  for (const chaos_row& row : rows) all_ok = all_ok && row.simplex_ok;
  os << "\nDegraded rounds hold x_{i,t} for unheard workers; the excess "
        "column is the regret price of those zero steps.\nSimplex "
        "invariant: " << (all_ok ? "held in every cell." : "VIOLATED.")
     << "\n";
  const std::string jsonl = args.get_string("chaos-jsonl", "");
  if (!jsonl.empty()) {
    std::ofstream out(jsonl);
    DOLBIE_REQUIRE(out.good(), "cannot open " << jsonl);
    write_chaos_jsonl(out, options, rows);
    os << "Wrote " << rows.size() << " rows to " << jsonl << "\n";
  }
}

}  // namespace dolbie::exp
