// The generic policy-vs-environment runner: plays an online policy against
// an environment for T rounds, recording the global-cost trace, optional
// per-round regret against the instantaneous optimum, allocation snapshots
// and decision-making wall time.
#pragma once

#include <span>
#include <vector>

#include "common/series.h"
#include "core/policy.h"
#include "core/regret.h"
#include "exp/scenario.h"

namespace dolbie::core {
class dolbie_policy;
}  // namespace dolbie::core

namespace dolbie::exp {

struct harness_options {
  std::size_t rounds = 100;
  /// Solve the instantaneous optimum each round and track dynamic regret
  /// (costs an extra water-level solve per round).
  bool track_regret = false;
  /// Record the full allocation every round (memory: rounds * N doubles).
  bool record_allocations = false;
  /// Record DOLBIE's step size each round when the policy is DOLBIE.
  bool record_step_sizes = false;
  /// Feedback staleness in rounds: at round t the policy observes the
  /// costs (and its own decision) of round t - delay; the first `delay`
  /// rounds deliver no feedback at all. Models the delayed-feedback
  /// setting the paper's introduction motivates ("delayed feedback" in
  /// real systems); 0 = the paper's standard one-round protocol.
  std::size_t feedback_delay = 0;
};

struct run_trace {
  series global_cost;          ///< f_t(x_t) per round
  series optimal_cost;         ///< f_t(x_t^*) per round (when track_regret)
  core::regret_tracker regret; ///< populated when track_regret
  std::vector<core::allocation> allocations;  ///< when record_allocations
  std::vector<double> step_sizes;             ///< when record_step_sizes
  double decision_seconds = 0.0;
  /// Wall time spent generating the environment's cost functions — together
  /// with decision_seconds this is the per-stage breakdown the parallel
  /// sweep's timing registry reports (the rest is evaluation + bookkeeping).
  double environment_seconds = 0.0;
  /// Whole-run wall time (on the thread that played the run).
  double wall_seconds = 0.0;
  double lipschitz_estimate = 0.0;  ///< max over rounds (when track_regret)
};

/// Run `policy` (reset first) against `env` for `options.rounds` rounds.
run_trace run(core::online_policy& policy, environment& env,
              const harness_options& options = {});

/// Lock-step batch-of-realizations runner: plays R same-shaped DOLBIE runs
/// round by round, evaluating every realization's Eq. (4) vector through
/// one grouped batch_evaluator bound over the concatenated round views —
/// all R bisection searches advance in one shared lock-step loop instead of
/// R scalar ones. trace[r] is bit-identical to run(*policies[r], *envs[r],
/// options) in every recorded series (global/optimal cost, allocations,
/// step sizes, regret); only the measured timing fields differ — the
/// decision and wall time of a shared phase are attributed evenly across
/// realizations. Requirements: policies and envs are parallel arrays of one
/// worker count; every policy is reset first.
std::vector<run_trace> run_lockstep(
    std::span<core::dolbie_policy* const> policies,
    std::span<environment* const> envs, const harness_options& options = {});

}  // namespace dolbie::exp
