#include "dist/cluster.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/step_size.h"
#include "dist/fd_round.h"
#include "dist/mw_round.h"
#include "obs/trace.h"

namespace dolbie::dist {

std::vector<int> block_owner_map(std::size_t n, std::size_t n_peers) {
  std::vector<int> owner(n, -1);
  if (n_peers == 0) return owner;
  for (std::size_t w = 0; w < n; ++w) {
    owner[w] = static_cast<int>(w * n_peers / n);
  }
  return owner;
}

cluster_policy::cluster_policy(std::size_t n_workers, cluster_options options)
    : n_(n_workers), options_(std::move(options)) {
  DOLBIE_REQUIRE(n_ >= 1, "cluster needs at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition.assign(n_, 1.0 / static_cast<double>(n_));
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_,
                 "initial partition size "
                     << options_.initial_partition.size()
                     << " != worker count " << n_);
  const bool mw = options_.mode == cluster_mode::master_worker;
  // MW adds the master as node n; FD is workers only. Workers map onto
  // peers in contiguous blocks; the master is always local to the driver.
  const std::size_t n_nodes = mw ? n_ + 1 : n_;
  std::vector<int> owner = block_owner_map(n_, options_.peers.size());
  owner.resize(n_nodes, -1);
  link_ = std::make_unique<net::socket_link>(
      n_nodes, std::move(owner), options_.peers, options_.link,
      options_.metrics);
  flags_.setup(n_, /*all_pairs=*/!mw);
  scratch_.tentative.assign(n_, 0.0);
  counters_.bind(options_.metrics, "cluster", "cluster.alpha",
                 /*faulty=*/true);
  reset();
}

void cluster_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  const double alpha1 =
      options_.initial_step >= 0.0
          ? options_.initial_step
          : core::initial_step_size(options_.initial_partition);
  alpha_ = alpha1;
  alpha_bar_.assign(n_, alpha1);
  link_->reset();
  std::fill(flags_.removed.begin(), flags_.removed.end(), 0);
  fault_report_ = {};
  mirrored_ = {};
  round_ = 0;
}

void cluster_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  if (options_.mode == cluster_mode::master_worker) {
    observe_mw(feedback, round);
  } else {
    observe_fd(feedback, round);
  }
}

void cluster_policy::observe_mw(const core::round_feedback& feedback,
                                std::uint64_t round) {
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  mw_null_timing timing;
  mw_degraded_round<net::socket_delivery, mw_null_timing> flow{
      n_,
      master_id(),
      *feedback.costs,
      feedback.local_costs,
      no_faults_,
      net::socket_delivery{*link_},
      timing,
      tr,
      lane,
      counters_.failover,
      fault_report_,
      worker_x_,
      alpha_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  finish_round(round, outcome, "mw");
  round_span.arg("straggler", static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_next", alpha_);
  counters_.round_complete(alpha_, static_cast<double>(outcome.straggler));
}

void cluster_policy::observe_fd(const core::round_feedback& feedback,
                                std::uint64_t round) {
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  fd_null_timing timing;
  fd_degraded_round<net::socket_delivery, fd_null_timing> flow{
      n_,
      *feedback.costs,
      feedback.local_costs,
      no_faults_,
      net::socket_delivery{*link_},
      timing,
      tr,
      lane,
      counters_.failover,
      fault_report_,
      worker_x_,
      alpha_bar_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  worker_x_.swap(scratch_.next_x);
  finish_round(round, outcome, "fd");
  round_span.arg("straggler", static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_consensus", outcome.consensus_alpha);
  counters_.round_complete(outcome.consensus_alpha,
                           static_cast<double>(outcome.straggler));
}

void cluster_policy::finish_round(std::uint64_t round,
                                  const degraded_outcome& outcome,
                                  const char* category) {
  // No reliable_link underneath — TCP retransmits below the seam — so the
  // transport-stat mirror runs on zeros and only the degraded-round
  // classification and hold accounting are live.
  const net::reliable_stats none;
  finish_degraded_round(outcome, none, options_.tracer, options_.trace_lane,
                        category, round, counters_, fault_report_, mirrored_);
  DOLBIE_REQUIRE(on_simplex(worker_x_),
                 "cluster round " << round
                                  << " left the allocation off the simplex");
  assembled_ = worker_x_;
}

}  // namespace dolbie::dist
