#include "dist/protocol.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/churn.h"
#include "core/step_size.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::dist {

void normalize_options(protocol_options& options, std::size_t n_workers) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options.initial_partition.empty()) {
    options.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options.initial_partition),
                 "initial partition must lie on the simplex");
  net::validate_crash_schedule(options.faults.crashes, n_workers);
}

bool retire_worker_share(std::vector<double>& x, member_flags& flags,
                         core::worker_id id, retirement& out,
                         double target) {
  const std::size_t n = x.size();
  std::size_t heirs = 0;
  for (core::worker_id j = 0; j < n; ++j) {
    if (j != id && flags.removed[j] == 0) ++heirs;
  }
  if (heirs == 0) return false;  // the last worker keeps everything
  flags.removed[id] = 1;
  for (core::worker_id j = 0; j < n; ++j) {
    flags.live[j] = flags.removed[j] ? 0 : 1;
  }
  core::release_share_in_place(x, id, flags.live, target);
  // Conservative re-cap over the surviving shares, read relative to the
  // group's conserved mass (the division is exact at target == 1.0).
  double min_share = 1.0;
  for (core::worker_id j = 0; j < n; ++j) {
    if (flags.removed[j] == 0) {
      min_share = std::min(min_share, x[j] / target);
    }
  }
  out.heirs = heirs;
  out.cap = core::feasible_step_cap(heirs, min_share);
  return true;
}

void engine_counters::bind(obs::metrics_registry* metrics,
                           std::string_view prefix,
                           std::string_view alpha_gauge, bool faulty) {
  if (metrics == nullptr) return;
  if (!prefix.empty()) {
    rounds = &metrics->counter_named(std::string(prefix) + ".rounds");
    alpha = &metrics->gauge_named(std::string(alpha_gauge));
    straggler = &metrics->gauge_named(std::string(prefix) + ".straggler");
  }
  if (faulty) {
    degraded = &metrics->counter_named("dist.degraded_rounds");
    failover = &metrics->counter_named("dist.straggler_failovers");
    retransmits = &metrics->counter_named("net.retransmits");
    timeouts = &metrics->counter_named("net.timeouts");
  }
}

void engine_counters::round_complete(double alpha_value,
                                     double straggler_id) {
  if (rounds == nullptr) return;
  rounds->add(1);
  alpha->set(alpha_value);
  straggler->set(straggler_id);
}

void finish_degraded_round(const degraded_outcome& outcome,
                           const net::reliable_stats& stats,
                           obs::tracer* tracer, std::uint32_t lane,
                           std::string_view category, std::uint64_t round,
                           engine_counters& counters, fault_report& report,
                           net::reliable_stats& mirrored) {
  const bool degraded =
      outcome.holds > 0 || outcome.failovers > 0 || outcome.aborted;
  if (degraded) {
    ++report.degraded_rounds;
    if (outcome.aborted) ++report.aborted_rounds;
    if (counters.degraded != nullptr) counters.degraded->add(1);
    if (tracer != nullptr) {
      tracer->instant(lane, round, "degraded_round", category,
                      {obs::arg_int("holds", outcome.holds),
                       obs::arg_int("aborted", outcome.aborted ? 1 : 0)});
    }
  }
  report.zero_step_holds += outcome.holds;
  if (counters.retransmits != nullptr) {
    counters.retransmits->add(stats.retransmits - mirrored.retransmits);
    counters.timeouts->add(stats.timeouts - mirrored.timeouts);
  }
  mirrored = stats;
  report.retransmits = stats.retransmits;
  report.timeouts = stats.timeouts;
  report.duplicates_discarded = stats.duplicates_discarded;
}

void snapshot_report(snapshot_writer& w, const fault_report& report) {
  w.u64(report.degraded_rounds);
  w.u64(report.straggler_failovers);
  w.u64(report.removed_workers);
  w.u64(report.zero_step_holds);
  w.u64(report.aborted_rounds);
  w.u64(report.retransmits);
  w.u64(report.timeouts);
  w.u64(report.duplicates_discarded);
}

void restore_report(snapshot_reader& r, fault_report& report) {
  report.degraded_rounds = static_cast<std::size_t>(r.u64());
  report.straggler_failovers = static_cast<std::size_t>(r.u64());
  report.removed_workers = static_cast<std::size_t>(r.u64());
  report.zero_step_holds = static_cast<std::size_t>(r.u64());
  report.aborted_rounds = static_cast<std::size_t>(r.u64());
  report.retransmits = static_cast<std::size_t>(r.u64());
  report.timeouts = static_cast<std::size_t>(r.u64());
  report.duplicates_discarded = static_cast<std::size_t>(r.u64());
}

void snapshot_reliable_stats(snapshot_writer& w,
                             const net::reliable_stats& stats) {
  w.u64(stats.retransmits);
  w.u64(stats.timeouts);
  w.u64(stats.deadlines_expired);
  w.u64(stats.duplicates_discarded);
  w.u64(stats.stale_purged);
}

void restore_reliable_stats(snapshot_reader& r, net::reliable_stats& stats) {
  stats.retransmits = static_cast<std::size_t>(r.u64());
  stats.timeouts = static_cast<std::size_t>(r.u64());
  stats.deadlines_expired = static_cast<std::size_t>(r.u64());
  stats.duplicates_discarded = static_cast<std::size_t>(r.u64());
  stats.stale_purged = static_cast<std::size_t>(r.u64());
}

}  // namespace dolbie::dist
