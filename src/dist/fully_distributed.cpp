#include "dist/fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"

namespace dolbie::dist {

fully_distributed_policy::fully_distributed_policy(std::size_t n_workers,
                                                   protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  reset();
}

void fully_distributed_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  const double alpha1 =
      options_.initial_step >= 0.0
          ? options_.initial_step
          : core::initial_step_size(options_.initial_partition);
  alpha_bar_.assign(n_, alpha1);
  net_.reset_traffic();
  last_traffic_.reset();
}

void fully_distributed_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  if (n_ == 1) return;
  net_.reset_traffic();
  const cost::cost_view& costs = *feedback.costs;

  // --- Phase 1: all-to-all broadcast of (l_i, alpha-bar_i) (line 4). ---
  for (net::node_id i = 0; i < n_; ++i) {
    for (net::node_id j = 0; j < n_; ++j) {
      if (j == i) continue;
      net_.send({i, j, net::message_kind::cost_and_step,
                 {feedback.local_costs[i], alpha_bar_[i]}});
    }
  }

  // --- Phases 2-3: every worker independently reconstructs the global
  //     picture from its inbox and updates (lines 5-10). We simulate each
  //     worker's computation with strictly worker-local inputs. ---
  std::vector<double> next_x = worker_x_;
  core::worker_id straggler = 0;     // as computed by worker 0; all agree
  double consensus_alpha = 0.0;      // likewise
  for (net::node_id i = 0; i < n_; ++i) {
    // Reassemble this worker's view: its own scalars plus the broadcasts.
    std::vector<double> l(n_, 0.0);
    std::vector<double> a(n_, 0.0);
    l[i] = feedback.local_costs[i];
    a[i] = alpha_bar_[i];
    for (net::node_id j = 0; j < n_; ++j) {
      if (j == i) continue;
      auto m = net_.receive(i, j);
      DOLBIE_REQUIRE(m.has_value(),
                     "worker " << i << " missed broadcast from " << j);
      l[j] = m->payload[0];
      a[j] = m->payload[1];
    }
    const core::worker_id s = argmax(l);           // line 7
    const double l_t = l[s];
    const double alpha_t = a[argmin(a)];           // line 6 (min consensus)
    if (i == 0) {
      straggler = s;
      consensus_alpha = alpha_t;
    } else {
      DOLBIE_REQUIRE(s == straggler,
                     "straggler consensus diverged at worker " << i);
    }
    if (i == s) continue;  // the straggler acts in phase 4
    const double xp =
        core::max_acceptable_workload(*costs[i], worker_x_[i], l_t);
    next_x[i] = worker_x_[i] + alpha_t * (xp - worker_x_[i]);
    net_.send({i, s, net::message_kind::decision, {next_x[i]}});  // line 9
    // line 10: alpha-bar_i unchanged.
  }
  (void)consensus_alpha;

  // --- Phase 4: the straggler absorbs the remainder and tightens its
  //     local step size (lines 11-13). ---
  double claimed = 0.0;
  for (net::node_id j = 0; j < n_; ++j) {
    if (j == straggler) continue;
    auto m = net_.receive(straggler, j);
    DOLBIE_REQUIRE(m.has_value(),
                   "straggler missed decision from worker " << j);
    claimed += m->payload[0];
  }
  next_x[straggler] = std::max(0.0, 1.0 - claimed);
  alpha_bar_[straggler] = core::next_step_size(alpha_bar_[straggler], n_,
                                               next_x[straggler]);

  worker_x_ = std::move(next_x);
  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
}

}  // namespace dolbie::dist
