#include "dist/fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/step_size.h"
#include "dist/fd_round.h"
#include "net/transport.h"
#include "obs/trace.h"

namespace dolbie::dist {

fully_distributed_policy::fully_distributed_policy(std::size_t n_workers,
                                                   protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers) {
  normalize_options(options_, n_);
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  faulty_ = options_.faults.enabled();
  if (faulty_) {
    net_.attach_faults(options_.faults);
    rel_ = std::make_unique<net::reliable_link>(
        net_, net::reliable_options{options_.retry_budget});
    rel_->attach_tracer(options_.tracer, options_.trace_lane);
    flags_.setup(n_, /*all_pairs=*/true);
    scratch_.tentative.assign(n_, 0.0);
  }
  counters_.bind(options_.metrics, "fd", "fd.alpha_consensus", faulty_);
  reset();
}

void fully_distributed_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  const double alpha1 =
      options_.initial_step >= 0.0
          ? options_.initial_step
          : core::initial_step_size(options_.initial_partition);
  alpha_bar_.assign(n_, alpha1);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(flags_.removed.begin(), flags_.removed.end(), 0);
    fault_report_ = {};
    mirrored_ = {};
  }
}

void fully_distributed_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  if (!faulty_) {
    observe_clean(feedback, round);
  } else {
    observe_faulty(feedback, round);
  }
}

// The exact pre-fault round: best-effort sends, every message required.
// Kept verbatim so zero-fault runs stay bit-identical (allocations and
// traces) and free of any fault-path bookkeeping.
void fully_distributed_policy::observe_clean(
    const core::round_feedback& feedback, std::uint64_t round) {
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  net::direct_delivery wire{net_};
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  // --- Phase 1 (wire): all-to-all broadcast of (l_i, alpha-bar_i)
  //     (line 4). ---
  {
    obs::span sp(tr, lane, round, "phase1.broadcast", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        wire.send({i, j, net::message_kind::cost_and_step,
                   {feedback.local_costs[i], alpha_bar_[i]}});
      }
    }
  }

  // --- Phase 2 (wire): every worker independently reconstructs the global
  //     picture from its inbox, updates, and non-stragglers upload their
  //     decisions to the straggler (lines 5-10). We simulate each worker's
  //     computation with strictly worker-local inputs. ---
  scratch_.next_x = worker_x_;
  core::worker_id straggler = 0;     // as computed by worker 0; all agree
  double consensus_alpha = 0.0;      // likewise
  {
    obs::span sp(tr, lane, round, "phase2.decision_uploads", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      // Reassemble this worker's view: its own scalars plus the broadcasts.
      scratch_.inbox_l.assign(n_, 0.0);
      scratch_.inbox_a.assign(n_, 0.0);
      scratch_.inbox_l[i] = feedback.local_costs[i];
      scratch_.inbox_a[i] = alpha_bar_[i];
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        auto m = wire.receive(i, j);
        DOLBIE_REQUIRE(m.has_value(),
                       "worker " << i << " missed broadcast from " << j);
        scratch_.inbox_l[j] = m->payload[0];
        scratch_.inbox_a[j] = m->payload[1];
      }
      const core::worker_id s = argmax(scratch_.inbox_l);         // line 7
      const double l_t = scratch_.inbox_l[s];
      const double alpha_t =
          scratch_.inbox_a[argmin(scratch_.inbox_a)];  // line 6 (min
                                                       // consensus)
      if (i == 0) {
        straggler = s;
        consensus_alpha = alpha_t;
        if (tr != nullptr) {
          tr->instant(lane, round, "straggler_elected", "fd",
                      {obs::arg_int("worker", s), obs::arg_num("cost", l_t),
                       obs::arg_num("alpha_consensus", alpha_t)});
        }
      } else {
        DOLBIE_REQUIRE(s == straggler,
                       "straggler consensus diverged at worker " << i);
      }
      if (i == s) continue;  // the straggler acts below
      scratch_.next_x[i] =
          decide_next_share(*costs[i], worker_x_[i], l_t, alpha_t);
      wire.send({i, s, net::message_kind::decision,
                 {scratch_.next_x[i]}});  // line 9
      // line 10: alpha-bar_i unchanged.
    }
  }

  // --- Post-phase: the straggler absorbs the remainder and tightens its
  //     local step size (lines 11-13); no further messages. ---
  double claimed = 0.0;
  for (net::node_id j = 0; j < n_; ++j) {
    if (j == straggler) continue;
    auto m = wire.receive(straggler, j);
    DOLBIE_REQUIRE(m.has_value(),
                   "straggler missed decision from worker " << j);
    claimed += m->payload[0];
  }
  scratch_.next_x[straggler] = std::max(0.0, 1.0 - claimed);
  const double alpha_before = alpha_bar_[straggler];
  alpha_bar_[straggler] = core::next_step_size(alpha_bar_[straggler], n_,
                                               scratch_.next_x[straggler]);
  if (tr != nullptr && alpha_bar_[straggler] != alpha_before) {
    tr->instant(lane, round, "alpha_tightened", "fd",
                {obs::arg_int("worker", straggler),
                 obs::arg_num("alpha_bar", alpha_bar_[straggler])});
  }

  // Swap (not move) so next round's `scratch_.next_x = worker_x_` copy
  // reuses the retired buffer instead of allocating a fresh one.
  worker_x_.swap(scratch_.next_x);
  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(straggler));
  round_span.arg("alpha_consensus", consensus_alpha);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  counters_.round_complete(consensus_alpha, static_cast<double>(straggler));
}

// The fault-tolerant round: one instantiation of the shared dist/fd_round.h
// state machine (H_t membership, delta-sum absorption, straggler failover,
// churn retirement) with the timing hooks compiled away.
void fully_distributed_policy::observe_faulty(
    const core::round_feedback& feedback, std::uint64_t round) {
  net_.set_round(round);
  round_traffic_start_ = net_.total_traffic();
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  fd_null_timing timing;
  fd_degraded_round<net::reliable_delivery, fd_null_timing> flow{
      n_,
      *feedback.costs,
      feedback.local_costs,
      options_.faults,
      net::reliable_delivery{*rel_},
      timing,
      tr,
      lane,
      counters_.failover,
      fault_report_,
      worker_x_,
      alpha_bar_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  worker_x_.swap(scratch_.next_x);
  finish_round(round, outcome);
  round_span.arg("straggler", static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_consensus", outcome.consensus_alpha);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  counters_.round_complete(outcome.consensus_alpha,
                           static_cast<double>(outcome.straggler));
}

void fully_distributed_policy::finish_round(std::uint64_t round,
                                            const degraded_outcome& outcome) {
  finish_degraded_round(outcome, rel_->stats(), options_.tracer,
                        options_.trace_lane, "fd", round, counters_,
                        fault_report_, mirrored_);
  DOLBIE_REQUIRE(on_simplex(worker_x_),
                 "degraded FD round " << round
                                      << " left the allocation off the "
                                         "simplex");
  assembled_ = worker_x_;
  const net::traffic_totals totals = net_.total_traffic();
  last_traffic_ = {
      totals.messages_sent - round_traffic_start_.messages_sent,
      totals.bytes_sent - round_traffic_start_.bytes_sent};
}

std::vector<std::uint8_t> fully_distributed_policy::snapshot() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::fully_distributed, n_);
  w.u64(round_);
  for (const double v : worker_x_) w.f64(v);
  for (const double v : alpha_bar_) w.f64(v);
  for (const double v : assembled_) w.f64(v);
  w.u64(last_traffic_.messages_sent);
  w.u64(last_traffic_.bytes_sent);
  net_.snapshot_to(w);
  w.u8(faulty_ ? 1 : 0);
  if (faulty_) {
    for (const std::uint8_t v : flags_.removed) w.u8(v);
    snapshot_report(w, fault_report_);
    snapshot_reliable_stats(w, mirrored_);
    rel_->snapshot_to(w);
  }
  return w.take();
}

void fully_distributed_policy::restore(const std::vector<std::uint8_t>& bytes) {
  reset();
  try {
    snapshot_reader r(bytes);
    read_snapshot_header(r, snapshot_kind::fully_distributed, n_);
    round_ = r.u64();
    for (double& v : worker_x_) v = r.f64();
    for (double& v : alpha_bar_) v = r.f64();
    for (double& v : assembled_) v = r.f64();
    last_traffic_.messages_sent = static_cast<std::size_t>(r.u64());
    last_traffic_.bytes_sent = static_cast<std::size_t>(r.u64());
    net_.restore_from(r);
    const std::uint8_t faulty = r.u8();
    DOLBIE_REQUIRE((faulty != 0) == faulty_,
                   "snapshot fault-path flag does not match this engine");
    if (faulty_) {
      for (std::uint8_t& v : flags_.removed) {
        v = r.u8();
        DOLBIE_REQUIRE(v <= 1, "snapshot membership flag is not 0/1");
      }
      restore_report(r, fault_report_);
      restore_reliable_stats(r, mirrored_);
      rel_->restore_from(r);
    }
    r.finish();
  } catch (...) {
    reset();
    throw;
  }
}

}  // namespace dolbie::dist
