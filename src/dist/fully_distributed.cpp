#include "dist/fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "obs/trace.h"

namespace dolbie::dist {

fully_distributed_policy::fully_distributed_policy(std::size_t n_workers,
                                                   protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  if (options_.metrics != nullptr) {
    rounds_counter_ = &options_.metrics->counter_named("fd.rounds");
    alpha_gauge_ = &options_.metrics->gauge_named("fd.alpha_consensus");
    straggler_gauge_ = &options_.metrics->gauge_named("fd.straggler");
  }
  reset();
}

void fully_distributed_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  const double alpha1 =
      options_.initial_step >= 0.0
          ? options_.initial_step
          : core::initial_step_size(options_.initial_partition);
  alpha_bar_.assign(n_, alpha1);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
}

void fully_distributed_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  // --- Phase 1 (wire): all-to-all broadcast of (l_i, alpha-bar_i)
  //     (line 4). ---
  {
    obs::span sp(tr, lane, round, "phase1.broadcast", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        net_.send({i, j, net::message_kind::cost_and_step,
                   {feedback.local_costs[i], alpha_bar_[i]}});
      }
    }
  }

  // --- Phase 2 (wire): every worker independently reconstructs the global
  //     picture from its inbox, updates, and non-stragglers upload their
  //     decisions to the straggler (lines 5-10). We simulate each worker's
  //     computation with strictly worker-local inputs. ---
  next_x_ = worker_x_;
  core::worker_id straggler = 0;     // as computed by worker 0; all agree
  double consensus_alpha = 0.0;      // likewise
  {
    obs::span sp(tr, lane, round, "phase2.decision_uploads", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      // Reassemble this worker's view: its own scalars plus the broadcasts.
      inbox_l_.assign(n_, 0.0);
      inbox_a_.assign(n_, 0.0);
      inbox_l_[i] = feedback.local_costs[i];
      inbox_a_[i] = alpha_bar_[i];
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        auto m = net_.receive(i, j);
        DOLBIE_REQUIRE(m.has_value(),
                       "worker " << i << " missed broadcast from " << j);
        inbox_l_[j] = m->payload[0];
        inbox_a_[j] = m->payload[1];
      }
      const core::worker_id s = argmax(inbox_l_);    // line 7
      const double l_t = inbox_l_[s];
      const double alpha_t = inbox_a_[argmin(inbox_a_)];  // line 6 (min
                                                          // consensus)
      if (i == 0) {
        straggler = s;
        consensus_alpha = alpha_t;
        if (tr != nullptr) {
          tr->instant(lane, round, "straggler_elected", "fd",
                      {obs::arg_int("worker", s), obs::arg_num("cost", l_t),
                       obs::arg_num("alpha_consensus", alpha_t)});
        }
      } else {
        DOLBIE_REQUIRE(s == straggler,
                       "straggler consensus diverged at worker " << i);
      }
      if (i == s) continue;  // the straggler acts below
      const double xp =
          core::max_acceptable_workload(*costs[i], worker_x_[i], l_t);
      next_x_[i] = worker_x_[i] + alpha_t * (xp - worker_x_[i]);
      net_.send({i, s, net::message_kind::decision, {next_x_[i]}});  // line 9
      // line 10: alpha-bar_i unchanged.
    }
  }

  // --- Post-phase: the straggler absorbs the remainder and tightens its
  //     local step size (lines 11-13); no further messages. ---
  double claimed = 0.0;
  for (net::node_id j = 0; j < n_; ++j) {
    if (j == straggler) continue;
    auto m = net_.receive(straggler, j);
    DOLBIE_REQUIRE(m.has_value(),
                   "straggler missed decision from worker " << j);
    claimed += m->payload[0];
  }
  next_x_[straggler] = std::max(0.0, 1.0 - claimed);
  const double alpha_before = alpha_bar_[straggler];
  alpha_bar_[straggler] = core::next_step_size(alpha_bar_[straggler], n_,
                                               next_x_[straggler]);
  if (tr != nullptr && alpha_bar_[straggler] != alpha_before) {
    tr->instant(lane, round, "alpha_tightened", "fd",
                {obs::arg_int("worker", straggler),
                 obs::arg_num("alpha_bar", alpha_bar_[straggler])});
  }

  // Swap (not move) so next round's `next_x_ = worker_x_` copy reuses the
  // retired buffer instead of allocating a fresh one.
  worker_x_.swap(next_x_);
  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(straggler));
  round_span.arg("alpha_consensus", consensus_alpha);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(consensus_alpha);
    straggler_gauge_->set(static_cast<double>(straggler));
  }
}

}  // namespace dolbie::dist
