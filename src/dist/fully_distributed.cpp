#include "dist/fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "obs/trace.h"

namespace dolbie::dist {

fully_distributed_policy::fully_distributed_policy(std::size_t n_workers,
                                                   protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  faulty_ = options_.faults.enabled();
  if (faulty_) {
    net_.attach_faults(options_.faults);
    rel_ = std::make_unique<net::reliable_link>(
        net_, net::reliable_options{options_.retry_budget});
    rel_->attach_tracer(options_.tracer, options_.trace_lane);
    removed_.assign(n_, 0);
    live_.assign(n_, 0);
    in_h_.assign(n_, 0);
    delivered_.assign(n_ * n_, 0);
    tentative_.assign(n_, 0.0);
  }
  if (options_.metrics != nullptr) {
    rounds_counter_ = &options_.metrics->counter_named("fd.rounds");
    alpha_gauge_ = &options_.metrics->gauge_named("fd.alpha_consensus");
    straggler_gauge_ = &options_.metrics->gauge_named("fd.straggler");
    if (faulty_) {
      degraded_counter_ =
          &options_.metrics->counter_named("dist.degraded_rounds");
      failover_counter_ =
          &options_.metrics->counter_named("dist.straggler_failovers");
      retransmit_counter_ = &options_.metrics->counter_named("net.retransmits");
      timeout_counter_ = &options_.metrics->counter_named("net.timeouts");
    }
  }
  reset();
}

void fully_distributed_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  const double alpha1 =
      options_.initial_step >= 0.0
          ? options_.initial_step
          : core::initial_step_size(options_.initial_partition);
  alpha_bar_.assign(n_, alpha1);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(removed_.begin(), removed_.end(), 0);
    fault_report_ = {};
    mirrored_ = {};
  }
}

void fully_distributed_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  if (!faulty_) {
    observe_clean(feedback, round);
  } else {
    observe_faulty(feedback, round);
  }
}

// The exact pre-fault round: best-effort sends, every message required.
// Kept verbatim so zero-fault runs stay bit-identical (allocations and
// traces) and free of any fault-path bookkeeping.
void fully_distributed_policy::observe_clean(
    const core::round_feedback& feedback, std::uint64_t round) {
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  // --- Phase 1 (wire): all-to-all broadcast of (l_i, alpha-bar_i)
  //     (line 4). ---
  {
    obs::span sp(tr, lane, round, "phase1.broadcast", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        net_.send({i, j, net::message_kind::cost_and_step,
                   {feedback.local_costs[i], alpha_bar_[i]}});
      }
    }
  }

  // --- Phase 2 (wire): every worker independently reconstructs the global
  //     picture from its inbox, updates, and non-stragglers upload their
  //     decisions to the straggler (lines 5-10). We simulate each worker's
  //     computation with strictly worker-local inputs. ---
  next_x_ = worker_x_;
  core::worker_id straggler = 0;     // as computed by worker 0; all agree
  double consensus_alpha = 0.0;      // likewise
  {
    obs::span sp(tr, lane, round, "phase2.decision_uploads", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      // Reassemble this worker's view: its own scalars plus the broadcasts.
      inbox_l_.assign(n_, 0.0);
      inbox_a_.assign(n_, 0.0);
      inbox_l_[i] = feedback.local_costs[i];
      inbox_a_[i] = alpha_bar_[i];
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i) continue;
        auto m = net_.receive(i, j);
        DOLBIE_REQUIRE(m.has_value(),
                       "worker " << i << " missed broadcast from " << j);
        inbox_l_[j] = m->payload[0];
        inbox_a_[j] = m->payload[1];
      }
      const core::worker_id s = argmax(inbox_l_);    // line 7
      const double l_t = inbox_l_[s];
      const double alpha_t = inbox_a_[argmin(inbox_a_)];  // line 6 (min
                                                          // consensus)
      if (i == 0) {
        straggler = s;
        consensus_alpha = alpha_t;
        if (tr != nullptr) {
          tr->instant(lane, round, "straggler_elected", "fd",
                      {obs::arg_int("worker", s), obs::arg_num("cost", l_t),
                       obs::arg_num("alpha_consensus", alpha_t)});
        }
      } else {
        DOLBIE_REQUIRE(s == straggler,
                       "straggler consensus diverged at worker " << i);
      }
      if (i == s) continue;  // the straggler acts below
      const double xp =
          core::max_acceptable_workload(*costs[i], worker_x_[i], l_t);
      next_x_[i] = worker_x_[i] + alpha_t * (xp - worker_x_[i]);
      net_.send({i, s, net::message_kind::decision, {next_x_[i]}});  // line 9
      // line 10: alpha-bar_i unchanged.
    }
  }

  // --- Post-phase: the straggler absorbs the remainder and tightens its
  //     local step size (lines 11-13); no further messages. ---
  double claimed = 0.0;
  for (net::node_id j = 0; j < n_; ++j) {
    if (j == straggler) continue;
    auto m = net_.receive(straggler, j);
    DOLBIE_REQUIRE(m.has_value(),
                   "straggler missed decision from worker " << j);
    claimed += m->payload[0];
  }
  next_x_[straggler] = std::max(0.0, 1.0 - claimed);
  const double alpha_before = alpha_bar_[straggler];
  alpha_bar_[straggler] = core::next_step_size(alpha_bar_[straggler], n_,
                                               next_x_[straggler]);
  if (tr != nullptr && alpha_bar_[straggler] != alpha_before) {
    tr->instant(lane, round, "alpha_tightened", "fd",
                {obs::arg_int("worker", straggler),
                 obs::arg_num("alpha_bar", alpha_bar_[straggler])});
  }

  // Swap (not move) so next round's `next_x_ = worker_x_` copy reuses the
  // retired buffer instead of allocating a fresh one.
  worker_x_.swap(next_x_);
  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(straggler));
  round_span.arg("alpha_consensus", consensus_alpha);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(consensus_alpha);
    straggler_gauge_->set(static_cast<double>(straggler));
  }
}

void fully_distributed_policy::retire_worker(core::worker_id id,
                                             std::uint64_t round) {
  std::size_t heirs = 0;
  for (core::worker_id j = 0; j < n_; ++j) {
    if (j != id && removed_[j] == 0) ++heirs;
  }
  if (heirs == 0) return;  // the last worker keeps everything
  removed_[id] = 1;
  for (core::worker_id j = 0; j < n_; ++j) live_[j] = removed_[j] ? 0 : 1;
  core::release_share_in_place(worker_x_, id, live_);
  // Every survivor re-caps its local step against the shrunk worker set —
  // the decentralized analogue of dolbie_policy::remove_worker. The min
  // consensus then propagates the tightest cap.
  double min_share = 1.0;
  for (core::worker_id j = 0; j < n_; ++j) {
    if (removed_[j] == 0) min_share = std::min(min_share, worker_x_[j]);
  }
  const double cap = core::feasible_step_cap(heirs, min_share);
  for (core::worker_id j = 0; j < n_; ++j) {
    if (removed_[j] == 0) alpha_bar_[j] = std::min(alpha_bar_[j], cap);
  }
  ++fault_report_.removed_workers;
  if (options_.tracer != nullptr) {
    options_.tracer->instant(
        options_.trace_lane, round, "worker_removed", "fd",
        {obs::arg_int("worker", id), obs::arg_int("survivors", heirs),
         obs::arg_num("alpha_cap", cap)});
  }
}

// The fault-tolerant round. The round's participant set H_t is the set of
// live workers whose broadcast reached every polling receiver within the
// retry budget; everyone agrees on H_t (a membership-oracle shortcut —
// simulating the real agreement subprotocol round-trip would add wire
// phases without changing the allocation arithmetic). Election and the
// consensus step minimize over H_t only: min over a subset >= min over
// all workers, so the consensus alpha stays inside every Eq. 7 cap and
// feasibility is untouched. Workers outside H_t hold x_{i,t}.
//
// Degraded absorption: the straggler cannot compute 1 - sum(claimed)
// because holders never upload their shares (the privacy property). On
// this path decisions carry {x_{i,t+1}, x_{i,t}} and the straggler
// absorbs via x_s - sum(x_new - x_old): total mass is conserved without
// the straggler learning any holder's share.
void fully_distributed_policy::observe_faulty(
    const core::round_feedback& feedback, std::uint64_t round) {
  net_.set_round(round);
  round_traffic_start_ = net_.total_traffic();
  const cost::cost_view& costs = *feedback.costs;
  const net::fault_plan& plan = options_.faults;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  for (core::worker_id i = 0; i < n_; ++i) {
    if (removed_[i] == 0 && plan.permanently_down(i, round)) {
      retire_worker(i, round);
    }
  }

  std::size_t holds = 0;
  std::size_t live_count = 0;
  for (core::worker_id i = 0; i < n_; ++i) {
    live_[i] = (removed_[i] == 0 && !plan.down(i, round)) ? 1 : 0;
    if (live_[i] != 0) {
      ++live_count;
    } else if (removed_[i] == 0) {
      ++holds;  // temporarily down
    }
  }
  std::size_t failovers = 0;
  bool aborted = false;
  core::worker_id s_final = 0;
  double consensus_alpha = 0.0;

  rel_->begin_round(round);
  next_x_ = worker_x_;

  // --- Phase 1: live workers (including mid-round crashers, whose
  //     transport completes) broadcast (l_i, alpha-bar_i). ---
  {
    obs::span sp(tr, lane, round, "phase1.broadcast", "fd");
    for (net::node_id i = 0; i < n_; ++i) {
      if (live_[i] == 0) continue;
      for (net::node_id j = 0; j < n_; ++j) {
        if (j == i || live_[j] == 0) continue;
        rel_->send({i, j, net::message_kind::cost_and_step,
                    {feedback.local_costs[i], alpha_bar_[i]}});
      }
    }
  }

  // Delivery resolution: every polling receiver (live, still computing)
  // drains its inbox; a sender enters H_t only if all of them heard it.
  inbox_l_.assign(n_, 0.0);
  inbox_a_.assign(n_, 0.0);
  std::fill(delivered_.begin(), delivered_.end(), 0);
  for (net::node_id j = 0; j < n_; ++j) {
    if (live_[j] == 0 || plan.crashed_during(j, round)) continue;
    for (net::node_id i = 0; i < n_; ++i) {
      if (i == j || live_[i] == 0) continue;
      auto m = rel_->receive(j, i);
      if (m.has_value()) {
        delivered_[j * n_ + i] = 1;
        inbox_l_[i] = m->payload[0];  // consistent across receivers
        inbox_a_[i] = m->payload[1];
      }
    }
  }
  std::size_t h_count = 0;
  for (net::node_id i = 0; i < n_; ++i) {
    in_h_[i] = live_[i];
    if (live_[i] == 0) continue;
    for (net::node_id j = 0; j < n_; ++j) {
      if (j == i || live_[j] == 0 || plan.crashed_during(j, round)) continue;
      if (delivered_[j * n_ + i] == 0) {
        in_h_[i] = 0;
        break;
      }
    }
    if (in_h_[i] != 0) {
      ++h_count;
      inbox_l_[i] = feedback.local_costs[i];
      inbox_a_[i] = alpha_bar_[i];
    }
  }
  for (core::worker_id i = 0; i < n_; ++i) {
    if (live_[i] != 0 && in_h_[i] == 0 && !plan.crashed_during(i, round)) {
      ++holds;  // excluded from the round: broadcast lost past budget
    }
    if (live_[i] != 0 && plan.crashed_during(i, round)) {
      ++holds;  // sent its broadcast, then stopped computing
    }
  }

  if (h_count == 0) {
    aborted = true;
  } else {
    // --- Election over H_t: straggler by max cost, step by min consensus
    //     (both with lowest-index tie-breaking, as in the clean path). ---
    core::worker_id s = n_;
    double alpha_t = 1.0;
    for (core::worker_id i = 0; i < n_; ++i) {
      if (in_h_[i] == 0) continue;
      if (s == n_ || inbox_l_[i] > inbox_l_[s]) s = i;
      alpha_t = std::min(alpha_t, inbox_a_[i]);
    }
    s_final = s;
    consensus_alpha = alpha_t;
    if (tr != nullptr) {
      tr->instant(lane, round, "straggler_elected", "fd",
                  {obs::arg_int("worker", s),
                   obs::arg_num("cost", inbox_l_[s]),
                   obs::arg_num("alpha_consensus", alpha_t)});
    }

    // --- Phase 2: movers (in H_t, still computing, not the straggler)
    //     update locally and upload {x_new, x_old} to the straggler. ---
    {
      obs::span sp(tr, lane, round, "phase2.decision_uploads", "fd");
      for (net::node_id i = 0; i < n_; ++i) {
        if (in_h_[i] == 0 || i == s || plan.crashed_during(i, round)) {
          continue;
        }
        const double xp = core::max_acceptable_workload(
            *costs[i], worker_x_[i], inbox_l_[s]);
        tentative_[i] = worker_x_[i] + alpha_t * (xp - worker_x_[i]);
        rel_->send({i, s, net::message_kind::decision,
                    {tentative_[i], worker_x_[i]}});
      }
    }

    // A straggler that crashed mid-round cannot absorb: re-elect the
    // next-highest cost in H_t that is still computing, and movers
    // re-upload there. The new straggler discards its own tentative move
    // (its share is derived, not decided).
    if (plan.crashed_during(s, round)) {
      core::worker_id s2 = n_;
      for (core::worker_id i = 0; i < n_; ++i) {
        if (in_h_[i] == 0 || i == s || plan.crashed_during(i, round)) {
          continue;
        }
        if (s2 == n_ || inbox_l_[i] > inbox_l_[s2]) s2 = i;
      }
      if (s2 == n_) {
        aborted = true;
      } else {
        ++failovers;
        ++fault_report_.straggler_failovers;
        if (failover_counter_ != nullptr) failover_counter_->add(1);
        if (tr != nullptr) {
          tr->instant(lane, round, "straggler_failover", "fd",
                      {obs::arg_int("from", s), obs::arg_int("to", s2),
                       obs::arg_num("cost", inbox_l_[s2])});
        }
        obs::span sp(tr, lane, round, "phase2.failover_resend", "fd");
        for (net::node_id i = 0; i < n_; ++i) {
          if (in_h_[i] == 0 || i == s || i == s2 ||
              plan.crashed_during(i, round)) {
            continue;
          }
          rel_->send({i, s2, net::message_kind::decision,
                      {tentative_[i], worker_x_[i]}});
        }
        s_final = s2;
      }
    }

    if (!aborted) {
      // --- Post-phase: the straggler absorbs via the delta sum. A mover
      //     whose decision never arrived rolls back to x_{i,t}. ---
      double delta = 0.0;
      for (net::node_id i = 0; i < n_; ++i) {
        if (in_h_[i] == 0 || i == s || i == s_final ||
            plan.crashed_during(i, round)) {
          continue;
        }
        auto m = rel_->receive(s_final, i);
        if (m.has_value()) {
          next_x_[i] = tentative_[i];
          delta += m->payload[0] - m->payload[1];
        } else {
          ++holds;  // decision lost past budget: the mover rolls back
        }
      }
      const double raw = worker_x_[s_final] - delta;
      next_x_[s_final] = std::max(0.0, raw);
      if (raw < 0.0) {
        // alpha ran ahead of the binding Eq. 7 cap (its source went
        // unheard this round): rescale onto the simplex.
        double total = 0.0;
        for (double v : next_x_) total += v;
        for (double& v : next_x_) v /= total;
        if (tr != nullptr) {
          tr->instant(lane, round, "renormalized", "fd",
                      {obs::arg_num("total", total)});
        }
      }
      const double alpha_before = alpha_bar_[s_final];
      alpha_bar_[s_final] = core::next_step_size(alpha_bar_[s_final], n_,
                                                 next_x_[s_final]);
      if (tr != nullptr && alpha_bar_[s_final] != alpha_before) {
        tr->instant(lane, round, "alpha_tightened", "fd",
                    {obs::arg_int("worker", s_final),
                     obs::arg_num("alpha_bar", alpha_bar_[s_final])});
      }
    }
  }

  if (aborted) {
    next_x_ = worker_x_;  // every worker holds
  }
  worker_x_.swap(next_x_);
  finish_round(round, holds, failovers, aborted);
  round_span.arg("straggler", static_cast<std::uint64_t>(s_final));
  round_span.arg("alpha_consensus", consensus_alpha);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(consensus_alpha);
    straggler_gauge_->set(static_cast<double>(s_final));
  }
}

void fully_distributed_policy::finish_round(std::uint64_t round,
                                            std::size_t holds,
                                            std::size_t failovers,
                                            bool aborted) {
  const bool degraded = holds > 0 || failovers > 0 || aborted;
  if (degraded) {
    ++fault_report_.degraded_rounds;
    if (aborted) ++fault_report_.aborted_rounds;
    if (degraded_counter_ != nullptr) degraded_counter_->add(1);
    if (options_.tracer != nullptr) {
      options_.tracer->instant(options_.trace_lane, round, "degraded_round",
                               "fd",
                               {obs::arg_int("holds", holds),
                                obs::arg_int("aborted", aborted ? 1 : 0)});
    }
  }
  fault_report_.zero_step_holds += holds;
  const net::reliable_stats& st = rel_->stats();
  if (retransmit_counter_ != nullptr) {
    retransmit_counter_->add(st.retransmits - mirrored_.retransmits);
    timeout_counter_->add(st.timeouts - mirrored_.timeouts);
  }
  mirrored_ = st;
  fault_report_.retransmits = st.retransmits;
  fault_report_.timeouts = st.timeouts;
  fault_report_.duplicates_discarded = st.duplicates_discarded;

  DOLBIE_REQUIRE(on_simplex(worker_x_),
                 "degraded FD round " << round
                                      << " left the allocation off the "
                                         "simplex");
  assembled_ = worker_x_;
  const net::traffic_totals totals = net_.total_traffic();
  last_traffic_ = {
      totals.messages_sent - round_traffic_start_.messages_sent,
      totals.bytes_sent - round_traffic_start_.bytes_sent};
}

}  // namespace dolbie::dist
