// DOLBIE over a real cluster: the PR 5 round state machines instantiated
// with the socket-backed delivery policy (net/socket_delivery.h).
//
// Deployment model: this process — the driver — runs the protocol logic
// for every node, exactly as the simulation engines do; remote `dolbied`
// worker daemons host the message channels, so every protocol message
// crosses TCP under the ownership rule documented in socket_delivery.h.
// The state machines are the *same templates* the in-memory engines
// instantiate (dist/mw_round.h, dist/fd_round.h) with the fault plan
// disabled: a healthy cluster reproduces the clean path's iterates bit
// for bit (the zero-fault ≡ clean invariant the tests pin), and a dead or
// slow daemon surfaces as a nullopt receive that the degraded-round
// machinery — built for lossy simulation — absorbs unchanged: holds,
// straggler failover, abort. No cluster-specific protocol logic exists.
#pragma once

#include <memory>
#include <vector>

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/reliable.h"
#include "net/socket_delivery.h"

namespace dolbie::dist {

/// Which protocol realization the cluster runs.
enum class cluster_mode { master_worker, fully_distributed };

struct cluster_options {
  cluster_mode mode = cluster_mode::master_worker;
  /// Initial partition x_1; empty means uniform.
  core::allocation initial_partition;
  /// Initial step size alpha_1; negative selects the paper's safe
  /// initialization (core::initial_step_size).
  double initial_step = -1.0;
  /// Channel hosts. Empty runs every link over process-local queues (the
  /// degenerate single-process cluster — useful for tests and smoke
  /// runs); otherwise workers are assigned to peers in contiguous blocks
  /// and the master (MW mode) stays local to the driver.
  std::vector<net::peer_address> peers;
  net::socket_link_options link;
  obs::metrics_registry* metrics = nullptr;
  obs::tracer* tracer = nullptr;
  std::uint32_t trace_lane = 0;
};

/// Deterministic block assignment of `n` workers onto `n_peers` hosts:
/// worker w lives on peer w * n_peers / n. Shared by the driver and the
/// transport flag parsing so both sides agree without configuration.
std::vector<int> block_owner_map(std::size_t n, std::size_t n_peers);

class cluster_policy final : public core::online_policy {
 public:
  /// Connects to every peer up front (socket_link's connect_with_retry);
  /// throws net::transport_error when a peer never comes up.
  cluster_policy(std::size_t n_workers, cluster_options options);

  std::string_view name() const override {
    return options_.mode == cluster_mode::master_worker ? "DOLBIE-CLUSTER-MW"
                                                        : "DOLBIE-CLUSTER-FD";
  }
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  /// Cumulative degradation accounting (nonzero only when daemons died or
  /// timed out mid-run).
  const fault_report& faults() const { return fault_report_; }
  const net::socket_link_stats& link_stats() const { return link_->stats(); }
  net::socket_link& link() { return *link_; }

 private:
  net::node_id master_id() const { return n_; }
  void observe_mw(const core::round_feedback& feedback, std::uint64_t round);
  void observe_fd(const core::round_feedback& feedback, std::uint64_t round);
  void finish_round(std::uint64_t round, const degraded_outcome& outcome,
                    const char* category);

  std::size_t n_;
  cluster_options options_;
  net::fault_plan no_faults_;  // disabled: the wire is the only fault source
  std::unique_ptr<net::socket_link> link_;

  std::vector<double> worker_x_;
  double alpha_ = 0.0;             // MW master step size
  std::vector<double> alpha_bar_;  // FD per-worker step bounds
  core::allocation assembled_;

  round_scratch scratch_;
  member_flags flags_;
  fault_report fault_report_;
  std::uint64_t round_ = 0;
  engine_counters counters_;
  net::reliable_stats mirrored_;
};

}  // namespace dolbie::dist
