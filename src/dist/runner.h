// Side-by-side runner for the three DOLBIE realizations (sequential
// reference, master-worker protocol, fully-distributed protocol). Drives
// all three with the same cost stream and reports the maximum allocation
// divergence plus each protocol's per-round traffic — the evidence behind
// the Section IV-C complexity table and the equivalence tests.
#pragma once

#include <functional>

#include "cost/cost_function.h"
#include "dist/protocol.h"
#include "net/network.h"

namespace dolbie::dist {

/// Produces the cost functions of the next round (one per worker).
using round_generator = std::function<cost::cost_vector()>;

struct equivalence_report {
  /// max over rounds and workers of |x_mw - x_seq| and |x_fd - x_seq|.
  double max_divergence_master_worker = 0.0;
  double max_divergence_fully_distributed = 0.0;
  /// Traffic of the final round of each protocol.
  net::traffic_totals master_worker_traffic;
  net::traffic_totals fully_distributed_traffic;
  std::size_t rounds = 0;
};

/// Run all three realizations for `rounds` rounds on the same cost stream.
///
/// When `options.tracer` is set, the three realizations trace on three
/// consecutive lanes: sequential on `options.trace_lane`, master-worker on
/// `trace_lane + 1`, fully-distributed on `trace_lane + 2`.
equivalence_report run_equivalence(std::size_t n_workers, std::size_t rounds,
                                   const round_generator& generate,
                                   protocol_options options = {});

}  // namespace dolbie::dist
