#include "dist/round_timing.h"

#include "common/error.h"

namespace dolbie::dist {

round_timing estimate_round_timing(std::size_t n_workers,
                                   const net::link_delay_model& link,
                                   std::size_t payload_bytes) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  round_timing out;
  if (n_workers == 1) return out;  // no communication at all
  const std::size_t n = n_workers;

  // Master-worker: four sequential hub phases.
  out.master_worker_seconds =
      link.serialized_time(n, payload_bytes) +        // cost uploads
      link.serialized_time(n, payload_bytes) +        // round-info downloads
      link.serialized_time(n - 1, payload_bytes) +    // decision uploads
      link.message_time(payload_bytes);               // assignment
  out.master_worker_messages = 3 * n;

  // Fully-distributed: the broadcast phase is limited by each NIC pushing
  // (and pulling) N-1 messages; the decision phase by the straggler's
  // incast of N-1 messages.
  out.fully_distributed_seconds =
      link.serialized_time(n - 1, payload_bytes) +    // broadcast (per NIC)
      link.serialized_time(n - 1, payload_bytes);     // straggler incast
  out.fully_distributed_messages = n * n - 1;
  return out;
}

}  // namespace dolbie::dist
