// Wall-clock estimate of one protocol round under each DOLBIE realization,
// combining the Section IV-C message counts with a link delay model.
//
// Master-worker (Algorithm 1) — four sequential phases through the master:
//   1. N local-cost uploads         (incast at the master)
//   2. N round-info downloads       (outcast from the master)
//   3. N-1 decision uploads         (incast at the master)
//   4. 1 assignment download
//
// Fully-distributed (Algorithm 2) — two phases, no hub:
//   1. all-to-all broadcast: every NIC pushes and pulls N-1 messages
//   2. N-1 decision uploads         (incast at the straggler)
//
// So MW pays more phases (latency-bound regime) while FD pays O(N^2) total
// bytes (bandwidth-bound regime at large N) — the bench/protocol_timing
// binary sweeps the crossover.
#pragma once

#include <cstddef>

#include "net/delay_model.h"

namespace dolbie::dist {

struct round_timing {
  double master_worker_seconds = 0.0;
  double fully_distributed_seconds = 0.0;
  std::size_t master_worker_messages = 0;
  std::size_t fully_distributed_messages = 0;
};

/// Estimate one round's communication wall-clock for both realizations.
/// `payload_bytes` is the encoded size of one scalar-carrying message
/// (net/codec: 20-byte header + 8 per scalar; protocol messages carry at
/// most 3 scalars — we use the 2-scalar average of 36 bytes by default).
round_timing estimate_round_timing(std::size_t n_workers,
                                   const net::link_delay_model& link,
                                   std::size_t payload_bytes = 36);

}  // namespace dolbie::dist
