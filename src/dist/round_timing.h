// Wall-clock estimate of one protocol round under each DOLBIE realization,
// combining the Section IV-C message counts with a link delay model.
//
// Master-worker (Algorithm 1) — four sequential phases through the master:
//   1. N local-cost uploads         (incast at the master)
//   2. N round-info downloads       (outcast from the master)
//   3. N-1 decision uploads         (incast at the master)
//   4. 1 assignment download
//
// Fully-distributed (Algorithm 2) — two phases, no hub:
//   1. all-to-all broadcast: every NIC pushes and pulls N-1 messages
//   2. N-1 decision uploads         (incast at the straggler)
//
// So MW pays more phases (latency-bound regime) while FD pays O(N^2) total
// bytes (bandwidth-bound regime at large N) — the bench/protocol_timing
// binary sweeps the crossover.
#pragma once

#include <chrono>
#include <cstddef>

#include "net/delay_model.h"

namespace dolbie::dist {

/// Wall-clock deadline for the socket transport's real-timer mode. The
/// simulated timing models price rounds in *virtual* time (a poll-miss is
/// the retransmission timer); when the same round machines drive a real
/// cluster, receive loops instead spin until a `wall_deadline` expires.
/// `unbounded()` (the default) never expires — the deterministic
/// single-pull mode — so the virtual-time semantics are the zero-timeout
/// special case of the real-timer mode, not a separate code path.
class wall_deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// Never expires — receive degenerates to one deterministic pull.
  static wall_deadline unbounded() { return wall_deadline(); }

  /// Expires `timeout` from now (zero or negative: already expired).
  static wall_deadline after(std::chrono::milliseconds timeout) {
    wall_deadline d;
    d.bounded_ = true;
    d.at_ = clock::now() + timeout;
    return d;
  }

  bool bounded() const { return bounded_; }
  bool expired() const { return bounded_ && clock::now() >= at_; }

  /// Time left before expiry, clamped at zero; unbounded deadlines report
  /// the maximum representable wait.
  std::chrono::milliseconds remaining() const {
    if (!bounded_) return std::chrono::milliseconds::max();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

 private:
  bool bounded_ = false;
  clock::time_point at_{};
};

struct round_timing {
  double master_worker_seconds = 0.0;
  double fully_distributed_seconds = 0.0;
  std::size_t master_worker_messages = 0;
  std::size_t fully_distributed_messages = 0;
};

/// Estimate one round's communication wall-clock for both realizations.
/// `payload_bytes` is the encoded size of one scalar-carrying message
/// (net/codec: 20-byte header + 8 per scalar; protocol messages carry at
/// most 3 scalars — we use the 2-scalar average of 36 bytes by default).
round_timing estimate_round_timing(std::size_t n_workers,
                                   const net::link_delay_model& link,
                                   std::size_t payload_bytes = 36);

}  // namespace dolbie::dist
