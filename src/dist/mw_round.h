// Master-worker (Alg. 1) round state machine of the unified protocol core.
//
// `mw_degraded_round` is the fault-tolerant round — reliable delivery with
// bounded retransmit, degraded completion, straggler failover and churn
// retirement — written once as pure transitions over a delivery policy
// (net/transport.h) and a timing model. The synchronous engine
// (dist/master_worker.h) instantiates it with `mw_null_timing` (every hook
// compiles away, so the flow is byte-for-byte the pre-refactor sync path:
// same rolls, same traces, same allocations); the asynchronous engine
// (dist/async_master_worker.h) instantiates it with a deadline-arithmetic
// timing model that prices each delivery in virtual time from
// `Delivery::last_receive_attempts()`.
//
// Degraded-round semantics (shared by both instantiations):
//
//   * a worker the master does not hear from (down, crashed mid-round, or
//     lost past the retry budget) takes a zero-length Eq. 5 step — it
//     holds x_{i,t}, and the straggler's Eq. 6 remainder accounts for it
//     at its current share, which the master legitimately tracks;
//   * a worker's decision commits only when the master confirms receipt
//     (the pull-model ack); unconfirmed decisions roll back to x_{i,t};
//   * the round itself commits when the straggler adopts its assignment.
//     If the elected straggler is unreachable, the master re-elects the
//     next-highest heard cost deterministically; if no candidate is
//     reachable the whole round aborts (every worker holds).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "core/types.h"
#include "cost/batch.h"
#include "cost/cost_function.h"
#include "dist/protocol.h"
#include "net/fault_plan.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::dist {

/// The Eq. 4/5 update every realization shares: solve for the maximum
/// acceptable workload x'_{i,t} at the revealed global cost and move an
/// alpha-fraction towards it. Kept as one inline kernel so all call sites
/// use the identical floating-point evaluation order.
inline double decide_next_share(const cost::cost_function& cost, double x,
                                double global_cost, double alpha) {
  const double xp = core::max_acceptable_workload(cost, x, global_cost);
  return x + alpha * (xp - x);
}

/// Timing model that compiles to nothing — the synchronous engine's
/// instantiation, which must stay bit-identical to the pre-refactor path.
struct mw_null_timing {
  void round_begin() {}
  void on_send() {}
  void phase1_silent(core::worker_id) {}
  void phase1_delivered(core::worker_id, std::size_t) {}
  void phase1_lost(core::worker_id) {}
  void phase1_done() {}
  void info_sent(core::worker_id) {}
  void info_abandoned(core::worker_id) {}
  void info_delivered(core::worker_id, std::size_t) {}
  void straggler_ready(core::worker_id) {}
  void info_lost(core::worker_id) {}
  void decision_sent(core::worker_id) {}
  void decision_delivered(core::worker_id, std::size_t) {}
  void decision_lost(core::worker_id) {}
  void decisions_done() {}
  void assignment_delivered(std::size_t) {}
  void assignment_lost() {}
};

/// What stage_upload learned: how many workers the master heard this
/// round, and the max heard cost (the shard's l_t contribution — equal to
/// the elected straggler's cost, comparison for comparison).
struct mw_stage_result {
  std::size_t heard = 0;
  double max_cost = 0.0;
};

/// One fault-tolerant Alg. 1 round over `Delivery` (a net/transport.h
/// policy) and `Timing` (mw_null_timing, or the async deadline model).
/// Thin reference aggregate: constructing one per round is allocation-free.
///
/// The round is split into two stages around the global-cost consensus so
/// the hierarchical layer (src/shard) can interpose a reduction-tree
/// round between them: `stage_upload` runs membership + phase 1 (cost
/// uploads), `stage_commit(l_t)` runs phases 2-4 against a supplied
/// global cost. `run()` composes them with l_t = the local max and adopts
/// the Eq. 7 step-size candidate — byte-for-byte the flat round.
template <class Delivery, class Timing>
struct mw_degraded_round {
  std::size_t n;
  net::node_id master;
  const cost::cost_view& costs;
  std::span<const double> locals;
  const net::fault_plan& plan;
  Delivery wire;
  Timing& timing;
  obs::tracer* tr;
  std::uint32_t lane;
  obs::counter* failover_counter;
  fault_report& report;
  std::vector<double>& x;      ///< the allocation, updated in place
  double& alpha;               ///< the master's step size
  round_scratch& scratch;
  member_flags& flags;
  /// Total workload this worker group conserves (Eq. 6 remainder base and
  /// renormalization target). 1.0 for the flat protocol — the paper's
  /// simplex; a shard's slice of it under the hierarchical layer.
  double target = 1.0;
  /// Worker count for the Eq. 7 step-size candidate; 0 = use `n`. The
  /// hierarchical layer passes the global N: feasible_step_cap decreases
  /// in the worker count, so the global cap is safe within every shard.
  std::size_t cap_workers = 0;
  /// Optional SoA evaluator bound over `costs`. When set, phase 3 computes
  /// every Eq. 4 solve through one batched pass (cost/batch.h — kernels
  /// bit-identical to the scalar path by construction) instead of one
  /// virtual inverse_max per worker. Null keeps the scalar path verbatim
  /// (the flat engines' instantiation).
  const cost::batch_evaluator* batch = nullptr;

  void retire(core::worker_id id, std::uint64_t round) {
    retirement r;
    if (!retire_worker_share(x, flags, id, r, target)) return;
    alpha = std::min(alpha, r.cap);
    ++report.removed_workers;
    // The retired worker's links never carry traffic again; reclaim their
    // buffers (accounting-neutral — see network::retire_node).
    wire.retire_node(id);
    if (tr != nullptr) {
      tr->instant(lane, round, "worker_removed", "mw",
                  {obs::arg_int("worker", id),
                   obs::arg_int("survivors", r.heirs),
                   obs::arg_num("alpha", alpha)});
    }
  }

  /// Stage 1 of the split round: membership (churn retirement, liveness)
  /// and the phase-1 cost uploads. On a wholly silent round the abort is
  /// recorded in `out` and the allocation is already restored.
  mw_stage_result stage_upload(std::uint64_t round, degraded_outcome& out) {
    // Membership: permanent crashes retire through the shared churn math
    // before the round starts.
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.removed[i] == 0 && plan.permanently_down(i, round)) {
        retire(i, round);
      }
    }
    timing.round_begin();

    scratch.start_x = x;
    for (core::worker_id i = 0; i < n; ++i) {
      flags.live[i] = (flags.removed[i] == 0 && !plan.down(i, round)) ? 1 : 0;
      if (flags.live[i] == 0 && flags.removed[i] == 0) {
        ++out.holds;  // temporarily down
        timing.phase1_silent(i);
      }
    }

    wire.begin_round(round);

    // --- Phase 1: live workers (including mid-round crashers, whose
    //     transport completes) upload their local costs. ---
    scratch.inbox_l.assign(n, 0.0);
    mw_stage_result res;
    {
      obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.live[i] == 0) continue;
        wire.send({i, master, net::message_kind::local_cost, {locals[i]}});
        timing.on_send();
      }
      std::fill(flags.heard.begin(), flags.heard.end(), 0);
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.live[i] == 0) continue;
        auto m = wire.receive(master, i);
        if (m.has_value()) {
          flags.heard[i] = 1;
          ++res.heard;
          scratch.inbox_l[i] = m->payload[0];
          timing.phase1_delivered(i, wire.last_receive_attempts());
        } else {
          ++out.holds;  // unheard past budget: excluded from the round
          timing.phase1_lost(i);
        }
      }
    }
    timing.phase1_done();

    if (res.heard == 0) {
      // Nobody reached the master: the round aborts, every worker holds.
      out.aborted = true;
      x = scratch.start_x;
      return res;
    }
    // Max heard cost: the same ascending-index strict-greater scan the
    // phase-2 election runs, so the value is bit-identical to the elected
    // straggler's cost.
    core::worker_id top = n;
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.heard[i] != 0 &&
          (top == n || scratch.inbox_l[i] > scratch.inbox_l[top])) {
        top = i;
      }
    }
    res.max_cost = scratch.inbox_l[top];
    return res;
  }

  /// Stage 2: phases 2-4 against the supplied global cost (the shard's
  /// own max on the flat path, the tree consensus under the hierarchical
  /// layer). Leaves the Eq. 7 candidate in `out.alpha_candidate` — the
  /// caller decides whether to adopt it (flat) or min-reduce it (tree).
  void stage_commit(std::uint64_t round, double l_t, degraded_outcome& out) {
    // --- Phase 2: elect over the heard set, broadcast round info. ---
    core::worker_id s = n;
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.heard[i] != 0 &&
          (s == n || scratch.inbox_l[i] > scratch.inbox_l[s])) {
        s = i;
      }
    }
    out.straggler = s;
    if (tr != nullptr) {
      tr->instant(lane, round, "straggler_elected", "mw",
                  {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
    }
    {
      obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.heard[i] == 0) continue;
        wire.send(make_round_info(master, i, l_t, alpha, i != s));
        timing.on_send();
        timing.info_sent(i);
      }
    }

    // --- Phase 3: reachable non-stragglers compute tentative decisions
    //     and upload them. A worker that crashed mid-round or missed its
    //     round info holds x_{i,t}. ---
    {
      obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
      std::fill(flags.decided.begin(), flags.decided.end(), 0);
      if (batch != nullptr) {
        // Every round info decoded below carries exactly (l_t, alpha) —
        // payload doubles round-trip the wire bit-exactly — so the blend
        // can use this one precomputed Eq. 4 vector for all workers.
        scratch.xp.resize(n);
        batch->max_acceptable(x, l_t, out.straggler, scratch.xp);
      }
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.heard[i] == 0) continue;
        if (plan.crashed_during(i, round)) {
          if (i != s) ++out.holds;  // died after its phase-1 upload
          timing.info_abandoned(i);
          continue;
        }
        // Every reachable worker consumes its round info — the straggler
        // included, or the stale message would alias the assignment it
        // pulls from the same link in phase 4.
        auto m = wire.receive(i, master);
        const std::size_t k_info = wire.last_receive_attempts();
        if (i == s) {  // the straggler waits for its assignment
          if (m.has_value()) {
            timing.info_delivered(i, k_info);
            timing.straggler_ready(i);
          } else {
            timing.info_lost(i);
          }
          continue;
        }
        if (!m.has_value()) {
          ++out.holds;  // round info lost past budget: zero step
          timing.info_lost(i);
          continue;
        }
        timing.info_delivered(i, k_info);
        const round_info info = decode_round_info(*m);
        scratch.tentative[i] =
            batch == nullptr
                ? decide_next_share(*costs[i], x[i], info.l_t, info.alpha)
                : x[i] + info.alpha * (scratch.xp[i] - x[i]);
        wire.send(
            {i, master, net::message_kind::decision, {scratch.tentative[i]}});
        timing.on_send();
        timing.decision_sent(i);
        flags.decided[i] = 1;
      }
    }

    // --- Phase 4: commit confirmed decisions, assign the remainder with
    //     deterministic straggler failover. ---
    {
      obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.decided[i] == 0) continue;
        auto m = wire.receive(master, i);
        if (m.has_value()) {
          x[i] = m->payload[0];
          timing.decision_delivered(i, wire.last_receive_attempts());
        } else {
          flags.decided[i] = 0;  // never acked: the worker rolls back
          ++out.holds;
          timing.decision_lost(i);
        }
      }
      timing.decisions_done();

      bool clamped = false;
      const auto try_assign = [&](core::worker_id cand) -> bool {
        // The straggler's share is derived, not decided: revert any move
        // the candidate committed as a non-straggler before re-deriving.
        const double saved = x[cand];
        x[cand] = scratch.start_x[cand];
        double claimed = 0.0;
        for (core::worker_id j = 0; j < n; ++j) {
          if (j != cand) claimed += x[j];
        }
        const double raw = target - claimed;
        const double next = std::max(0.0, raw);
        wire.send({master, cand, net::message_kind::assignment, {next}});
        timing.on_send();
        auto m = wire.receive(cand, master);
        if (!m.has_value()) {
          x[cand] = saved;  // unreachable: keep its committed move
          timing.assignment_lost();
          return false;
        }
        timing.assignment_delivered(wire.last_receive_attempts());
        x[cand] = m->payload[0];
        clamped = raw < 0.0;
        return true;
      };

      bool assigned = false;
      if (!plan.crashed_during(s, round)) assigned = try_assign(s);
      if (!assigned) {
        // Failover chain: next-highest heard cost among workers that are
        // still running, lowest index on ties; reuse flags.heard to mark
        // exhausted candidates.
        core::worker_id prev = s;
        for (;;) {
          core::worker_id cand = n;
          for (core::worker_id i = 0; i < n; ++i) {
            if (i == s || flags.heard[i] == 0 ||
                plan.crashed_during(i, round)) {
              continue;
            }
            if (cand == n || scratch.inbox_l[i] > scratch.inbox_l[cand]) {
              cand = i;
            }
          }
          if (cand == n) break;
          flags.heard[cand] = 0;  // consumed as a candidate
          ++out.failovers;
          ++report.straggler_failovers;
          if (failover_counter != nullptr) failover_counter->add(1);
          if (tr != nullptr) {
            tr->instant(lane, round, "straggler_failover", "mw",
                        {obs::arg_int("from", prev), obs::arg_int("to", cand),
                         obs::arg_num("cost", scratch.inbox_l[cand])});
          }
          if (try_assign(cand)) {
            assigned = true;
            out.straggler = cand;
            break;
          }
          prev = cand;
        }
      }
      if (!assigned) {
        out.aborted = true;
        x = scratch.start_x;
      } else {
        if (clamped) {
          // The remainder went negative: alpha ran ahead of the binding
          // Eq. 7 cap (its source went unheard in a degraded round).
          // Rescale onto the group's mass like the sequential reference.
          // (scale == total exactly when target == 1.0, so the flat
          // division is untouched bit for bit.)
          double total = 0.0;
          for (double v : x) total += v;
          const double scale = total / target;
          for (double& v : x) v /= scale;
          if (tr != nullptr) {
            tr->instant(lane, round, "renormalized", "mw",
                        {obs::arg_num("total", total)});
          }
        }
        // Conservative re-cap from the realized straggler share (Eq. 7
        // with the full worker count — a superset bound stays safe).
        const std::size_t ncap = cap_workers == 0 ? n : cap_workers;
        out.alpha_candidate = core::next_step_size(alpha, ncap,
                                                   x[out.straggler]);
      }
    }
  }

  degraded_outcome run(std::uint64_t round) {
    degraded_outcome out;
    const mw_stage_result up = stage_upload(round, out);
    if (out.aborted) return out;
    stage_commit(round, up.max_cost, out);
    if (!out.aborted) alpha = out.alpha_candidate;
    return out;
  }
};

}  // namespace dolbie::dist
