// Master-worker (Alg. 1) round state machine of the unified protocol core.
//
// `mw_degraded_round` is the fault-tolerant round — reliable delivery with
// bounded retransmit, degraded completion, straggler failover and churn
// retirement — written once as pure transitions over a delivery policy
// (net/transport.h) and a timing model. The synchronous engine
// (dist/master_worker.h) instantiates it with `mw_null_timing` (every hook
// compiles away, so the flow is byte-for-byte the pre-refactor sync path:
// same rolls, same traces, same allocations); the asynchronous engine
// (dist/async_master_worker.h) instantiates it with a deadline-arithmetic
// timing model that prices each delivery in virtual time from
// `Delivery::last_receive_attempts()`.
//
// Degraded-round semantics (shared by both instantiations):
//
//   * a worker the master does not hear from (down, crashed mid-round, or
//     lost past the retry budget) takes a zero-length Eq. 5 step — it
//     holds x_{i,t}, and the straggler's Eq. 6 remainder accounts for it
//     at its current share, which the master legitimately tracks;
//   * a worker's decision commits only when the master confirms receipt
//     (the pull-model ack); unconfirmed decisions roll back to x_{i,t};
//   * the round itself commits when the straggler adopts its assignment.
//     If the elected straggler is unreachable, the master re-elects the
//     next-highest heard cost deterministically; if no candidate is
//     reachable the whole round aborts (every worker holds).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "core/types.h"
#include "cost/cost_function.h"
#include "dist/protocol.h"
#include "net/fault_plan.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::dist {

/// The Eq. 4/5 update every realization shares: solve for the maximum
/// acceptable workload x'_{i,t} at the revealed global cost and move an
/// alpha-fraction towards it. Kept as one inline kernel so all call sites
/// use the identical floating-point evaluation order.
inline double decide_next_share(const cost::cost_function& cost, double x,
                                double global_cost, double alpha) {
  const double xp = core::max_acceptable_workload(cost, x, global_cost);
  return x + alpha * (xp - x);
}

/// Timing model that compiles to nothing — the synchronous engine's
/// instantiation, which must stay bit-identical to the pre-refactor path.
struct mw_null_timing {
  void round_begin() {}
  void on_send() {}
  void phase1_silent(core::worker_id) {}
  void phase1_delivered(core::worker_id, std::size_t) {}
  void phase1_lost(core::worker_id) {}
  void phase1_done() {}
  void info_sent(core::worker_id) {}
  void info_abandoned(core::worker_id) {}
  void info_delivered(core::worker_id, std::size_t) {}
  void straggler_ready(core::worker_id) {}
  void info_lost(core::worker_id) {}
  void decision_sent(core::worker_id) {}
  void decision_delivered(core::worker_id, std::size_t) {}
  void decision_lost(core::worker_id) {}
  void decisions_done() {}
  void assignment_delivered(std::size_t) {}
  void assignment_lost() {}
};

/// One fault-tolerant Alg. 1 round over `Delivery` (a net/transport.h
/// policy) and `Timing` (mw_null_timing, or the async deadline model).
/// Thin reference aggregate: constructing one per round is allocation-free.
template <class Delivery, class Timing>
struct mw_degraded_round {
  std::size_t n;
  net::node_id master;
  const cost::cost_view& costs;
  std::span<const double> locals;
  const net::fault_plan& plan;
  Delivery wire;
  Timing& timing;
  obs::tracer* tr;
  std::uint32_t lane;
  obs::counter* failover_counter;
  fault_report& report;
  std::vector<double>& x;      ///< the allocation, updated in place
  double& alpha;               ///< the master's step size
  round_scratch& scratch;
  member_flags& flags;

  void retire(core::worker_id id, std::uint64_t round) {
    retirement r;
    if (!retire_worker_share(x, flags, id, r)) return;
    alpha = std::min(alpha, r.cap);
    ++report.removed_workers;
    if (tr != nullptr) {
      tr->instant(lane, round, "worker_removed", "mw",
                  {obs::arg_int("worker", id),
                   obs::arg_int("survivors", r.heirs),
                   obs::arg_num("alpha", alpha)});
    }
  }

  degraded_outcome run(std::uint64_t round) {
    // Membership: permanent crashes retire through the shared churn math
    // before the round starts.
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.removed[i] == 0 && plan.permanently_down(i, round)) {
        retire(i, round);
      }
    }
    timing.round_begin();

    scratch.start_x = x;
    degraded_outcome out;
    for (core::worker_id i = 0; i < n; ++i) {
      flags.live[i] = (flags.removed[i] == 0 && !plan.down(i, round)) ? 1 : 0;
      if (flags.live[i] == 0 && flags.removed[i] == 0) {
        ++out.holds;  // temporarily down
        timing.phase1_silent(i);
      }
    }

    wire.begin_round(round);

    // --- Phase 1: live workers (including mid-round crashers, whose
    //     transport completes) upload their local costs. ---
    scratch.inbox_l.assign(n, 0.0);
    std::size_t heard_count = 0;
    {
      obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.live[i] == 0) continue;
        wire.send({i, master, net::message_kind::local_cost, {locals[i]}});
        timing.on_send();
      }
      std::fill(flags.heard.begin(), flags.heard.end(), 0);
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.live[i] == 0) continue;
        auto m = wire.receive(master, i);
        if (m.has_value()) {
          flags.heard[i] = 1;
          ++heard_count;
          scratch.inbox_l[i] = m->payload[0];
          timing.phase1_delivered(i, wire.last_receive_attempts());
        } else {
          ++out.holds;  // unheard past budget: excluded from the round
          timing.phase1_lost(i);
        }
      }
    }
    timing.phase1_done();

    if (heard_count == 0) {
      // Nobody reached the master: the round aborts, every worker holds.
      out.aborted = true;
      x = scratch.start_x;
      return out;
    }

    // --- Phase 2: elect over the heard set, broadcast round info. ---
    core::worker_id s = n;
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.heard[i] != 0 &&
          (s == n || scratch.inbox_l[i] > scratch.inbox_l[s])) {
        s = i;
      }
    }
    const double l_t = scratch.inbox_l[s];
    out.straggler = s;
    if (tr != nullptr) {
      tr->instant(lane, round, "straggler_elected", "mw",
                  {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
    }
    {
      obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.heard[i] == 0) continue;
        wire.send(make_round_info(master, i, l_t, alpha, i != s));
        timing.on_send();
        timing.info_sent(i);
      }
    }

    // --- Phase 3: reachable non-stragglers compute tentative decisions
    //     and upload them. A worker that crashed mid-round or missed its
    //     round info holds x_{i,t}. ---
    {
      obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
      std::fill(flags.decided.begin(), flags.decided.end(), 0);
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.heard[i] == 0) continue;
        if (plan.crashed_during(i, round)) {
          if (i != s) ++out.holds;  // died after its phase-1 upload
          timing.info_abandoned(i);
          continue;
        }
        // Every reachable worker consumes its round info — the straggler
        // included, or the stale message would alias the assignment it
        // pulls from the same link in phase 4.
        auto m = wire.receive(i, master);
        const std::size_t k_info = wire.last_receive_attempts();
        if (i == s) {  // the straggler waits for its assignment
          if (m.has_value()) {
            timing.info_delivered(i, k_info);
            timing.straggler_ready(i);
          } else {
            timing.info_lost(i);
          }
          continue;
        }
        if (!m.has_value()) {
          ++out.holds;  // round info lost past budget: zero step
          timing.info_lost(i);
          continue;
        }
        timing.info_delivered(i, k_info);
        const round_info info = decode_round_info(*m);
        scratch.tentative[i] =
            decide_next_share(*costs[i], x[i], info.l_t, info.alpha);
        wire.send(
            {i, master, net::message_kind::decision, {scratch.tentative[i]}});
        timing.on_send();
        timing.decision_sent(i);
        flags.decided[i] = 1;
      }
    }

    // --- Phase 4: commit confirmed decisions, assign the remainder with
    //     deterministic straggler failover. ---
    {
      obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.decided[i] == 0) continue;
        auto m = wire.receive(master, i);
        if (m.has_value()) {
          x[i] = m->payload[0];
          timing.decision_delivered(i, wire.last_receive_attempts());
        } else {
          flags.decided[i] = 0;  // never acked: the worker rolls back
          ++out.holds;
          timing.decision_lost(i);
        }
      }
      timing.decisions_done();

      bool clamped = false;
      const auto try_assign = [&](core::worker_id cand) -> bool {
        // The straggler's share is derived, not decided: revert any move
        // the candidate committed as a non-straggler before re-deriving.
        const double saved = x[cand];
        x[cand] = scratch.start_x[cand];
        double claimed = 0.0;
        for (core::worker_id j = 0; j < n; ++j) {
          if (j != cand) claimed += x[j];
        }
        const double raw = 1.0 - claimed;
        const double next = std::max(0.0, raw);
        wire.send({master, cand, net::message_kind::assignment, {next}});
        timing.on_send();
        auto m = wire.receive(cand, master);
        if (!m.has_value()) {
          x[cand] = saved;  // unreachable: keep its committed move
          timing.assignment_lost();
          return false;
        }
        timing.assignment_delivered(wire.last_receive_attempts());
        x[cand] = m->payload[0];
        clamped = raw < 0.0;
        return true;
      };

      bool assigned = false;
      if (!plan.crashed_during(s, round)) assigned = try_assign(s);
      if (!assigned) {
        // Failover chain: next-highest heard cost among workers that are
        // still running, lowest index on ties; reuse flags.heard to mark
        // exhausted candidates.
        core::worker_id prev = s;
        for (;;) {
          core::worker_id cand = n;
          for (core::worker_id i = 0; i < n; ++i) {
            if (i == s || flags.heard[i] == 0 ||
                plan.crashed_during(i, round)) {
              continue;
            }
            if (cand == n || scratch.inbox_l[i] > scratch.inbox_l[cand]) {
              cand = i;
            }
          }
          if (cand == n) break;
          flags.heard[cand] = 0;  // consumed as a candidate
          ++out.failovers;
          ++report.straggler_failovers;
          if (failover_counter != nullptr) failover_counter->add(1);
          if (tr != nullptr) {
            tr->instant(lane, round, "straggler_failover", "mw",
                        {obs::arg_int("from", prev), obs::arg_int("to", cand),
                         obs::arg_num("cost", scratch.inbox_l[cand])});
          }
          if (try_assign(cand)) {
            assigned = true;
            out.straggler = cand;
            break;
          }
          prev = cand;
        }
      }
      if (!assigned) {
        out.aborted = true;
        x = scratch.start_x;
      } else {
        if (clamped) {
          // The remainder went negative: alpha ran ahead of the binding
          // Eq. 7 cap (its source went unheard in a degraded round).
          // Rescale onto the simplex like the sequential reference.
          double total = 0.0;
          for (double v : x) total += v;
          for (double& v : x) v /= total;
          if (tr != nullptr) {
            tr->instant(lane, round, "renormalized", "mw",
                        {obs::arg_num("total", total)});
          }
        }
        // Conservative re-cap from the realized straggler share (Eq. 7
        // with the full worker count — a superset bound stays safe).
        alpha = core::next_step_size(alpha, n, x[out.straggler]);
      }
    }
    return out;
  }
};

}  // namespace dolbie::dist
