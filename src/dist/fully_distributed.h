// DOLBIE, fully-distributed realization (Algorithm 2) as peer state
// machines over the simulated network — no master, no single point of
// failure, decisions shared only with the straggler.
//
// Per round — two wire phases (round_timing.h), then local absorption:
//   phase 1  every worker broadcasts cost_and_step(l_i, alpha-bar_i)
//            to every other worker                         N(N-1) msgs
//   phase 2  every worker independently computes l_t, the consensus step
//            alpha_t = min_j alpha-bar_j and the straggler s_t (worker-list
//            tie-breaking) from the broadcast data; non-stragglers update
//            x_i locally and send decision(x_i) to the straggler only,
//            keeping alpha-bar_i                              N-1 msgs
//   (local)  the straggler absorbs the remainder and tightens its local
//            step size by Eq. (8) — no messages
//
// Total N^2 - 1 messages per round — the O(N^2) of Section IV-C. A
// non-straggler never learns the other workers' decisions, matching the
// paper's privacy argument.
//
// The produced iterates are bit-identical to core::dolbie_policy (asserted
// by tests/dist_equivalence_test).
//
// Fault tolerance: with `protocol_options::faults` enabled the round is
// one instantiation of the unified protocol core's dist/fd_round.h state
// machine (shared with the asynchronous engine) over net::reliable_link —
// degraded completion via the participant set H_t, delta-sum absorption,
// deterministic straggler failover and churn retirement. See
// DESIGN.md §8-9.
#pragma once

#include <memory>

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::dist {

class fully_distributed_policy final : public core::online_policy {
 public:
  fully_distributed_policy(std::size_t n_workers,
                           protocol_options options = {});

  std::string_view name() const override { return "DOLBIE-FD"; }
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  /// Local step sizes alpha-bar_{i,t+1} (for tests of the consensus rule).
  const std::vector<double>& local_step_sizes() const { return alpha_bar_; }

  /// Traffic of the most recent round (for the comm-complexity bench).
  const net::traffic_totals& last_round_traffic() const {
    return last_traffic_;
  }

  /// Cumulative fault/degradation accounting (all zero on the clean path).
  const fault_report& faults() const { return fault_report_; }

  /// The underlying transport, exposed so fault-injection tests can
  /// schedule deterministic drops (network::inject_drop) on specific
  /// links. Production callers have no business poking it.
  net::network& transport() { return net_; }

  /// Serialize the complete cross-round state (iterate, per-worker step
  /// bounds, round index, membership, channels, reliable-link sequencing,
  /// fault-roll cursors) into versioned snapshot bytes; restore rebuilds
  /// it so the continuation is bit-identical to the uninterrupted run.
  /// Restore throws invariant_error on corrupt or mismatched bytes,
  /// leaving the engine reset.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

 private:
  void observe_clean(const core::round_feedback& feedback,
                     std::uint64_t round);
  void observe_faulty(const core::round_feedback& feedback,
                      std::uint64_t round);
  void finish_round(std::uint64_t round, const degraded_outcome& outcome);

  std::size_t n_;
  protocol_options options_;
  net::network net_;

  // Worker-local state.
  std::vector<double> worker_x_;
  std::vector<double> alpha_bar_;

  core::allocation assembled_;
  net::traffic_totals last_traffic_;

  // Round scratch shared with the protocol core (dist/protocol.h), kept
  // as a member so the per-round (and, for the inbox pair, per-worker)
  // loops reuse their storage instead of allocating: scratch_.next_x is
  // the round's x_{t+1} under construction; inbox_l/inbox_a are the
  // (l_j, alpha-bar_j) view each worker reassembles from its inbox.
  round_scratch scratch_;

  // Fault-tolerant path (engaged only when options_.faults is enabled;
  // the clean path never touches any of this).
  bool faulty_ = false;
  std::unique_ptr<net::reliable_link> rel_;
  member_flags flags_;
  net::traffic_totals round_traffic_start_;
  fault_report fault_report_;

  // Observability (unbound when options_.metrics is unset).
  std::uint64_t round_ = 0;
  engine_counters counters_;
  net::reliable_stats mirrored_;  // last stats already mirrored to metrics
};

}  // namespace dolbie::dist
