// DOLBIE, fully-distributed realization (Algorithm 2) as peer state
// machines over the simulated network — no master, no single point of
// failure, decisions shared only with the straggler.
//
// Per round — two wire phases (round_timing.h), then local absorption:
//   phase 1  every worker broadcasts cost_and_step(l_i, alpha-bar_i)
//            to every other worker                         N(N-1) msgs
//   phase 2  every worker independently computes l_t, the consensus step
//            alpha_t = min_j alpha-bar_j and the straggler s_t (worker-list
//            tie-breaking) from the broadcast data; non-stragglers update
//            x_i locally and send decision(x_i) to the straggler only,
//            keeping alpha-bar_i                              N-1 msgs
//   (local)  the straggler absorbs the remainder and tightens its local
//            step size by Eq. (8) — no messages
//
// Total N^2 - 1 messages per round — the O(N^2) of Section IV-C. A
// non-straggler never learns the other workers' decisions, matching the
// paper's privacy argument.
//
// The produced iterates are bit-identical to core::dolbie_policy (asserted
// by tests/dist_equivalence_test).
//
// Fault tolerance: with `protocol_options::faults` enabled the round runs
// over net::reliable_link and completes in degraded mode when messages are
// lost past the retry budget. The round's participant set H_t is the set
// of workers whose broadcast reached every polling receiver — election and
// the consensus step minimize over H_t only (min over a subset upper-bounds
// the min over all, so Eq. 7 feasibility is preserved); workers outside
// H_t hold x_{i,t}. On this path decisions carry {x_{i,t+1}, x_{i,t}} so
// the straggler can absorb via the delta sum without learning the holders'
// shares — a deliberate, documented relaxation of the clean path's
// single-scalar privacy. A straggler that crashed mid-round is re-elected
// deterministically and movers re-upload. See DESIGN.md §8.
#pragma once

#include <memory>

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::dist {

class fully_distributed_policy final : public core::online_policy {
 public:
  fully_distributed_policy(std::size_t n_workers,
                           protocol_options options = {});

  std::string_view name() const override { return "DOLBIE-FD"; }
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  /// Local step sizes alpha-bar_{i,t+1} (for tests of the consensus rule).
  const std::vector<double>& local_step_sizes() const { return alpha_bar_; }

  /// Traffic of the most recent round (for the comm-complexity bench).
  const net::traffic_totals& last_round_traffic() const {
    return last_traffic_;
  }

  /// Cumulative fault/degradation accounting (all zero on the clean path).
  const fault_report& faults() const { return fault_report_; }

  /// The underlying transport, exposed so fault-injection tests can
  /// schedule deterministic drops (network::inject_drop) on specific
  /// links. Production callers have no business poking it.
  net::network& transport() { return net_; }

 private:
  void observe_clean(const core::round_feedback& feedback,
                     std::uint64_t round);
  void observe_faulty(const core::round_feedback& feedback,
                      std::uint64_t round);
  void retire_worker(core::worker_id id, std::uint64_t round);
  void finish_round(std::uint64_t round, std::size_t holds,
                    std::size_t failovers, bool aborted);

  std::size_t n_;
  protocol_options options_;
  net::network net_;

  // Worker-local state.
  std::vector<double> worker_x_;
  std::vector<double> alpha_bar_;

  // Round scratch, kept as members so the per-round (and, for the inbox
  // pair, per-worker) loops reuse their storage instead of allocating:
  // next_x_ is the round's x_{t+1} under construction; inbox_l_/inbox_a_
  // are the (l_j, alpha-bar_j) view each worker reassembles from its inbox.
  std::vector<double> next_x_;
  std::vector<double> inbox_l_;
  std::vector<double> inbox_a_;

  core::allocation assembled_;
  net::traffic_totals last_traffic_;

  // Fault-tolerant path (engaged only when options_.faults is enabled;
  // the clean path never touches any of this).
  bool faulty_ = false;
  std::unique_ptr<net::reliable_link> rel_;
  std::vector<std::uint8_t> removed_;    // permanent membership
  std::vector<std::uint8_t> live_;       // per-round scratch
  std::vector<std::uint8_t> in_h_;       // round participant set H_t
  std::vector<std::uint8_t> delivered_;  // n*n broadcast delivery bitmap
  std::vector<double> tentative_;        // movers' tentative decisions
  net::traffic_totals round_traffic_start_;
  fault_report fault_report_;

  // Observability (null when options_.metrics is unset).
  std::uint64_t round_ = 0;
  obs::counter* rounds_counter_ = nullptr;
  obs::gauge* alpha_gauge_ = nullptr;
  obs::gauge* straggler_gauge_ = nullptr;
  obs::counter* degraded_counter_ = nullptr;
  obs::counter* failover_counter_ = nullptr;
  obs::counter* retransmit_counter_ = nullptr;
  obs::counter* timeout_counter_ = nullptr;
  net::reliable_stats mirrored_;  // last stats already mirrored to metrics
};

}  // namespace dolbie::dist
