#include "dist/async_master_worker.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "sim/event_queue.h"

namespace dolbie::dist {

async_master_worker::async_master_worker(std::size_t n_workers,
                                         async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  if (options_.protocol.initial_partition.empty()) {
    options_.protocol.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.protocol.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.protocol.initial_partition),
                 "initial partition must lie on the simplex");
  x_ = options_.protocol.initial_partition;
  reset();
}

void async_master_worker::reset() {
  x_ = options_.protocol.initial_partition;
  alpha_ = options_.protocol.initial_step >= 0.0
               ? options_.protocol.initial_step
               : core::initial_step_size(x_);
}

async_round_result async_master_worker::run_round(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize =
      static_cast<double>(options_.payload_bytes) /
      options_.link.bytes_per_second;

  // --- shared simulation state (single-threaded; events mutate it in
  //     deterministic order) ---
  struct master_state {
    std::size_t costs_received = 0;
    std::vector<double> l;
    std::size_t decisions_received = 0;
    double claimed = 0.0;
    core::worker_id straggler = 0;
    double l_t = 0.0;
  } master;
  master.l.assign(n, 0.0);

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::size_t messages = 0;

  // Forward declarations of the event handlers as std::functions so they
  // can schedule each other.
  std::function<void(core::worker_id)> on_cost_arrival;
  std::function<void(core::worker_id)> on_round_info;
  std::function<void(core::worker_id)> on_decision_arrival;
  std::function<void()> on_assignment_arrival;

  on_cost_arrival = [&](core::worker_id i) {
    master.l[i] = locals_[i];
    if (++master.costs_received < n) return;
    // Last upload in: identify the straggler, broadcast round info. The
    // master's NIC serializes the N downloads back-to-back.
    master.straggler = argmax(master.l);
    master.l_t = master.l[master.straggler];
    for (core::worker_id j = 0; j < n; ++j) {
      ++messages;
      queue.schedule_in(static_cast<double>(j) * serialize + msg_time,
                        [&, j] { on_round_info(j); });
    }
  };

  on_round_info = [&](core::worker_id i) {
    if (i == master.straggler) return;  // straggler waits for assignment
    // Local decision computation, then upload.
    queue.schedule_in(options_.compute_delay, [&, i] {
      const double xp = core::max_acceptable_workload(*costs[i], x_[i],
                                                      master.l_t);
      next_x[i] = x_[i] + alpha_ * (xp - x_[i]);
      ready_at[i] = queue.now();  // holds its next-round share now
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id i) {
    master.claimed += next_x[i];
    if (++master.decisions_received < n - 1) return;
    ++messages;
    queue.schedule_in(msg_time, [&] { on_assignment_arrival(); });
  };

  on_assignment_arrival = [&] {
    next_x[master.straggler] = std::max(0.0, 1.0 - master.claimed);
    ready_at[master.straggler] = queue.now();
  };

  // Kick off: worker i finishes its round-t compute at time l_i and
  // uploads its local cost.
  for (core::worker_id i = 0; i < n; ++i) {
    ++messages;
    queue.schedule(locals_[i] + msg_time, [&, i] { on_cost_arrival(i); });
  }
  result.events = queue.run_to_completion();

  // Commit the round exactly as the synchronous realizations do.
  alpha_ = core::next_step_size(alpha_, n, next_x[master.straggler]);
  x_ = std::move(next_x);

  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

}  // namespace dolbie::dist
