#include "dist/async_master_worker.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "sim/event_queue.h"

namespace dolbie::dist {

async_master_worker::async_master_worker(std::size_t n_workers,
                                         async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  if (options_.protocol.initial_partition.empty()) {
    options_.protocol.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.protocol.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.protocol.initial_partition),
                 "initial partition must lie on the simplex");
  x_ = options_.protocol.initial_partition;
  faulty_ = options_.protocol.faults.enabled();
  reset();
}

void async_master_worker::reset() {
  x_ = options_.protocol.initial_partition;
  alpha_ = options_.protocol.initial_step >= 0.0
               ? options_.protocol.initial_step
               : core::initial_step_size(x_);
  round_ = 0;
  if (faulty_) {
    const std::size_t nodes = x_.size() + 1;  // workers + master
    removed_.assign(x_.size(), 0);
    attempts_.assign(nodes * nodes, 0);
    report_ = {};
  }
}

std::size_t async_master_worker::attempts_to_deliver(std::size_t from,
                                                     std::size_t to) {
  const net::fault_plan& plan = options_.protocol.faults;
  const std::size_t idx = from * (x_.size() + 1) + to;
  for (std::size_t k = 1; k <= options_.protocol.retry_budget + 1; ++k) {
    const std::uint64_t attempt = attempts_[idx]++;
    if (!plan.roll_drop(from, to, attempt)) return k;
  }
  return 0;
}

async_round_result async_master_worker::run_round(
    const cost::cost_view& costs) {
  const std::uint64_t round = round_++;
  if (!faulty_) return run_round_clean(costs);
  return run_round_faulty(costs, round);
}

async_round_result async_master_worker::run_round_clean(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize =
      static_cast<double>(options_.payload_bytes) /
      options_.link.bytes_per_second;

  // --- shared simulation state (single-threaded; events mutate it in
  //     deterministic order) ---
  struct master_state {
    std::size_t costs_received = 0;
    std::vector<double> l;
    std::size_t decisions_received = 0;
    double claimed = 0.0;
    core::worker_id straggler = 0;
    double l_t = 0.0;
  } master;
  master.l.assign(n, 0.0);

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::size_t messages = 0;

  // Forward declarations of the event handlers as std::functions so they
  // can schedule each other.
  std::function<void(core::worker_id)> on_cost_arrival;
  std::function<void(core::worker_id)> on_round_info;
  std::function<void(core::worker_id)> on_decision_arrival;
  std::function<void()> on_assignment_arrival;

  on_cost_arrival = [&](core::worker_id i) {
    master.l[i] = locals_[i];
    if (++master.costs_received < n) return;
    // Last upload in: identify the straggler, broadcast round info. The
    // master's NIC serializes the N downloads back-to-back.
    master.straggler = argmax(master.l);
    master.l_t = master.l[master.straggler];
    for (core::worker_id j = 0; j < n; ++j) {
      ++messages;
      queue.schedule_in(static_cast<double>(j) * serialize + msg_time,
                        [&, j] { on_round_info(j); });
    }
  };

  on_round_info = [&](core::worker_id i) {
    if (i == master.straggler) return;  // straggler waits for assignment
    // Local decision computation, then upload.
    queue.schedule_in(options_.compute_delay, [&, i] {
      const double xp = core::max_acceptable_workload(*costs[i], x_[i],
                                                      master.l_t);
      next_x[i] = x_[i] + alpha_ * (xp - x_[i]);
      ready_at[i] = queue.now();  // holds its next-round share now
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id i) {
    master.claimed += next_x[i];
    if (++master.decisions_received < n - 1) return;
    ++messages;
    queue.schedule_in(msg_time, [&] { on_assignment_arrival(); });
  };

  on_assignment_arrival = [&] {
    next_x[master.straggler] = std::max(0.0, 1.0 - master.claimed);
    ready_at[master.straggler] = queue.now();
  };

  // Kick off: worker i finishes its round-t compute at time l_i and
  // uploads its local cost.
  for (core::worker_id i = 0; i < n; ++i) {
    ++messages;
    queue.schedule(locals_[i] + msg_time, [&, i] { on_cost_arrival(i); });
  }
  result.events = queue.run_to_completion();

  // Commit the round exactly as the synchronous realizations do.
  alpha_ = core::next_step_size(alpha_, n, next_x[master.straggler]);
  x_ = std::move(next_x);

  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

// Deadline-synchronized fault-tolerant round. Round deadlines re-impose a
// barrier structure on the asynchronous execution — a receiver cannot act
// before its per-phase deadline when a message might still be in flight —
// so the timing here is computed phase by phase with direct arithmetic
// over arrival times instead of an event queue. The allocation semantics
// mirror the synchronous engine's degraded mode exactly.
async_round_result async_master_worker::run_round_faulty(
    const cost::cost_view& costs, std::uint64_t round) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");
  const net::fault_plan& plan = options_.protocol.faults;
  const std::size_t budget = options_.protocol.retry_budget;
  const net::node_id master = n;

  async_round_result result;
  std::size_t losses = 0;  // deliveries abandoned past the budget

  // Permanent crashes retire before the round starts.
  for (core::worker_id i = 0; i < n; ++i) {
    if (removed_[i] != 0 || !plan.permanently_down(i, round)) continue;
    std::size_t heirs = 0;
    for (core::worker_id j = 0; j < n; ++j) {
      if (j != i && removed_[j] == 0) ++heirs;
    }
    if (heirs == 0) continue;
    removed_[i] = 1;
    std::vector<std::uint8_t> live_mask(n, 0);
    for (core::worker_id j = 0; j < n; ++j) {
      live_mask[j] = removed_[j] ? 0 : 1;
    }
    core::release_share_in_place(x_, i, live_mask);
    double min_share = 1.0;
    for (core::worker_id j = 0; j < n; ++j) {
      if (removed_[j] == 0) min_share = std::min(min_share, x_[j]);
    }
    alpha_ = std::min(alpha_, core::feasible_step_cap(heirs, min_share));
    ++report_.removed_workers;
  }

  cost::evaluate_into(costs, x_, locals_);
  for (core::worker_id i = 0; i < n; ++i) {
    if (removed_[i] == 0) {
      result.compute_duration = std::max(result.compute_duration, locals_[i]);
    }
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize = static_cast<double>(options_.payload_bytes) /
                           options_.link.bytes_per_second;
  const double timeout = options_.retransmit_timeout < 0.0
                             ? 4.0 * msg_time
                             : options_.retransmit_timeout;
  // How long a receiver waits before declaring an expected message lost.
  const double patience =
      static_cast<double>(budget + 1) * timeout + msg_time;

  std::vector<std::uint8_t> live(n, 0);
  std::size_t holds = 0;
  for (core::worker_id i = 0; i < n; ++i) {
    live[i] = (removed_[i] == 0 && !plan.down(i, round)) ? 1 : 0;
    if (live[i] == 0 && removed_[i] == 0) ++holds;
  }
  std::size_t failovers = 0;
  bool aborted = false;
  core::worker_id s_final = 0;

  std::vector<double> next_x = x_;
  double clock = 0.0;  // end of the last completed phase

  // --- Phase 1: live workers upload their local costs; the master's
  //     deadline covers the slowest expected message. ---
  std::vector<std::uint8_t> heard(n, 0);
  std::vector<double> l(n, 0.0);
  std::size_t heard_count = 0;
  double phase1_end = result.compute_duration;
  for (core::worker_id i = 0; i < n; ++i) {
    if (removed_[i] != 0) continue;
    if (live[i] == 0) {
      // Master waits out a full deadline for a silent worker.
      phase1_end = std::max(phase1_end, patience);
      continue;
    }
    ++result.messages;
    const std::size_t k = attempts_to_deliver(i, master);
    if (k > 0) {
      heard[i] = 1;
      ++heard_count;
      l[i] = locals_[i];
      result.retransmits += k - 1;
      phase1_end = std::max(
          phase1_end,
          locals_[i] + static_cast<double>(k - 1) * timeout + msg_time);
    } else {
      result.retransmits += budget;
      ++losses;
      ++holds;
      phase1_end = std::max(phase1_end, locals_[i] + patience);
    }
  }
  clock = phase1_end;

  if (heard_count == 0) {
    aborted = true;
  } else {
    // --- Election over the heard set. ---
    core::worker_id s = n;
    for (core::worker_id i = 0; i < n; ++i) {
      if (heard[i] != 0 && (s == n || l[i] > l[s])) s = i;
    }
    s_final = s;

    // --- Phases 2+3: round info out (NIC-serialized), decisions back.
    //     A worker whose info or decision is lost past the budget holds. ---
    std::vector<std::uint8_t> decided(n, 0);
    std::vector<double> tentative(n, 0.0);
    double phase3_end = clock;
    std::size_t position = 0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (heard[i] == 0) continue;
      const double depart =
          clock + static_cast<double>(position++) * serialize;
      ++result.messages;
      const std::size_t k_info = attempts_to_deliver(master, i);
      if (plan.crashed_during(i, round)) {
        // Sent its cost, then stopped computing: counts as a hold (unless
        // it is the straggler, which the failover below handles).
        if (k_info > 0) result.retransmits += k_info - 1;
        if (k_info == 0) {
          result.retransmits += budget;
          ++losses;
        }
        if (i != s) ++holds;
        phase3_end = std::max(phase3_end, depart + patience);
        continue;
      }
      if (k_info == 0) {
        result.retransmits += budget;
        ++losses;
        if (i != s) ++holds;
        phase3_end = std::max(phase3_end, depart + patience);
        continue;
      }
      result.retransmits += k_info - 1;
      const double info_at =
          depart + static_cast<double>(k_info - 1) * timeout + msg_time;
      if (i == s) {
        phase3_end = std::max(phase3_end, info_at);
        continue;  // straggler waits for its assignment
      }
      const double xp =
          core::max_acceptable_workload(*costs[i], x_[i], l[s]);
      tentative[i] = x_[i] + alpha_ * (xp - x_[i]);
      ++result.messages;
      const std::size_t k_dec = attempts_to_deliver(i, master);
      const double sent_at = info_at + options_.compute_delay;
      if (k_dec > 0) {
        result.retransmits += k_dec - 1;
        decided[i] = 1;
        next_x[i] = tentative[i];
        phase3_end = std::max(
            phase3_end,
            sent_at + static_cast<double>(k_dec - 1) * timeout + msg_time);
      } else {
        result.retransmits += budget;
        ++losses;
        ++holds;  // the worker rolls back its unconfirmed decision
        phase3_end = std::max(phase3_end, sent_at + patience);
      }
    }
    clock = phase3_end;

    // --- Phase 4: assign the remainder with deterministic failover. ---
    bool clamped = false;
    const auto try_assign = [&](core::worker_id cand) -> bool {
      const double saved = next_x[cand];
      next_x[cand] = x_[cand];
      double claimed = 0.0;
      for (core::worker_id j = 0; j < n; ++j) {
        if (j != cand) claimed += next_x[j];
      }
      const double raw = 1.0 - claimed;
      ++result.messages;
      const std::size_t k_assign = attempts_to_deliver(master, cand);
      if (k_assign == 0) {
        result.retransmits += budget;
        ++losses;
        clock += patience;
        next_x[cand] = saved;
        return false;
      }
      result.retransmits += k_assign - 1;
      ++result.messages;
      const std::size_t k_confirm = attempts_to_deliver(cand, master);
      if (k_confirm == 0) {
        result.retransmits += budget;
        ++losses;
        clock += patience;
        next_x[cand] = saved;
        return false;
      }
      result.retransmits += k_confirm - 1;
      clock += static_cast<double>(k_assign + k_confirm - 2) * timeout +
               2.0 * msg_time;
      next_x[cand] = std::max(0.0, raw);
      clamped = raw < 0.0;
      return true;
    };

    bool assigned = false;
    if (!plan.crashed_during(s, round)) assigned = try_assign(s);
    if (!assigned) {
      for (;;) {
        core::worker_id cand = n;
        for (core::worker_id i = 0; i < n; ++i) {
          if (i == s || heard[i] == 0 || plan.crashed_during(i, round)) {
            continue;
          }
          if (cand == n || l[i] > l[cand]) cand = i;
        }
        if (cand == n) break;
        heard[cand] = 0;  // consumed as a candidate
        ++failovers;
        ++report_.straggler_failovers;
        ++result.straggler_failovers;
        if (try_assign(cand)) {
          assigned = true;
          s_final = cand;
          break;
        }
      }
    }
    if (!assigned) {
      aborted = true;
    } else {
      if (clamped) {
        double total = 0.0;
        for (double v : next_x) total += v;
        for (double& v : next_x) v /= total;
      }
      alpha_ = core::next_step_size(alpha_, n, next_x[s_final]);
    }
  }

  if (aborted) {
    next_x = x_;  // every worker holds
    ++report_.aborted_rounds;
  }
  x_ = std::move(next_x);
  DOLBIE_REQUIRE(on_simplex(x_),
                 "degraded async-MW round " << round
                                            << " left the allocation off "
                                               "the simplex");

  result.zero_step_holds = holds;
  result.aborted = aborted;
  result.degraded = holds > 0 || failovers > 0 || aborted;
  if (result.degraded) ++report_.degraded_rounds;
  report_.zero_step_holds += holds;
  report_.retransmits += result.retransmits;
  report_.timeouts += result.retransmits + losses;

  result.next_allocation = x_;
  result.round_duration = std::max(clock, result.compute_duration);
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

}  // namespace dolbie::dist
