#include "dist/async_master_worker.h"

#include <algorithm>
#include <functional>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/step_size.h"
#include "dist/mw_round.h"
#include "net/transport.h"
#include "sim/event_queue.h"

namespace dolbie::dist {
namespace {

// Deadline-arithmetic timing model for the shared MW round state machine.
// Round deadlines re-impose a barrier structure on the asynchronous
// execution — a receiver cannot act before its per-phase deadline when a
// message might still be in flight — so virtual time advances phase by
// phase: each delivery that took k transmissions lands at
// (k - 1) * timeout + msg_time after its departure, and a message lost
// past the retry budget costs the receiver its full patience window.
struct mw_deadline_timing {
  double msg_time = 0.0;
  double serialize = 0.0;
  double timeout = 0.0;
  double patience = 0.0;
  double compute_delay = 0.0;
  std::span<const double> locals;
  const std::vector<std::uint8_t>* removed = nullptr;

  double compute_duration = 0.0;
  double clock = 0.0;
  double phase1_end = 0.0;
  double phase3_end = 0.0;
  std::vector<double> depart;   // round_info departure times
  std::vector<double> info_at;  // round_info arrival times
  std::vector<double> sent_at;  // decision departure times
  std::size_t position = 0;     // master-NIC serialization slot
  std::size_t messages = 0;

  void round_begin() {
    const std::size_t n = locals.size();
    for (std::size_t i = 0; i < n; ++i) {
      if ((*removed)[i] == 0) {
        compute_duration = std::max(compute_duration, locals[i]);
      }
    }
    phase1_end = compute_duration;
    depart.assign(n, 0.0);
    info_at.assign(n, 0.0);
    sent_at.assign(n, 0.0);
  }
  void on_send() { ++messages; }
  // Master waits out a full deadline for a silent worker.
  void phase1_silent(core::worker_id) {
    phase1_end = std::max(phase1_end, patience);
  }
  void phase1_delivered(core::worker_id i, std::size_t k) {
    phase1_end = std::max(
        phase1_end,
        locals[i] + static_cast<double>(k - 1) * timeout + msg_time);
  }
  void phase1_lost(core::worker_id i) {
    phase1_end = std::max(phase1_end, locals[i] + patience);
  }
  void phase1_done() {
    clock = phase1_end;
    phase3_end = clock;
  }
  // The master's NIC serializes the round_info downloads back-to-back.
  void info_sent(core::worker_id i) {
    depart[i] = clock + static_cast<double>(position++) * serialize;
  }
  void info_abandoned(core::worker_id i) {
    phase3_end = std::max(phase3_end, depart[i] + patience);
  }
  void info_delivered(core::worker_id i, std::size_t k) {
    info_at[i] =
        depart[i] + static_cast<double>(k - 1) * timeout + msg_time;
  }
  void straggler_ready(core::worker_id i) {
    phase3_end = std::max(phase3_end, info_at[i]);
  }
  void info_lost(core::worker_id i) {
    phase3_end = std::max(phase3_end, depart[i] + patience);
  }
  void decision_sent(core::worker_id i) {
    sent_at[i] = info_at[i] + compute_delay;
  }
  void decision_delivered(core::worker_id i, std::size_t k) {
    phase3_end = std::max(
        phase3_end,
        sent_at[i] + static_cast<double>(k - 1) * timeout + msg_time);
  }
  void decision_lost(core::worker_id i) {
    phase3_end = std::max(phase3_end, sent_at[i] + patience);
  }
  void decisions_done() { clock = phase3_end; }
  void assignment_delivered(std::size_t k) {
    clock += static_cast<double>(k - 1) * timeout + msg_time;
  }
  void assignment_lost() { clock += patience; }
};

}  // namespace

async_master_worker::async_master_worker(std::size_t n_workers,
                                         async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  normalize_options(options_.protocol, n_workers);
  x_ = options_.protocol.initial_partition;
  faulty_ = options_.protocol.faults.enabled();
  if (faulty_) {
    net_ = std::make_unique<net::network>(n_workers + 1);  // + the master
    net_->attach_faults(options_.protocol.faults);
    net_->attach_tracer(options_.protocol.tracer, options_.protocol.trace_lane);
    rel_ = std::make_unique<net::reliable_link>(
        *net_, net::reliable_options{options_.protocol.retry_budget});
    rel_->attach_tracer(options_.protocol.tracer, options_.protocol.trace_lane);
    flags_.setup(n_workers, /*all_pairs=*/false);
    scratch_.tentative.assign(n_workers, 0.0);
  }
  counters_.bind(options_.protocol.metrics, "", "", faulty_);
  reset();
}

void async_master_worker::reset() {
  x_ = options_.protocol.initial_partition;
  alpha_ = options_.protocol.initial_step >= 0.0
               ? options_.protocol.initial_step
               : core::initial_step_size(x_);
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(flags_.removed.begin(), flags_.removed.end(), 0);
    report_ = {};
    mirrored_ = {};
  }
}

async_round_result async_master_worker::run_round(
    const cost::cost_view& costs) {
  const std::uint64_t round = round_++;
  if (!faulty_) return run_round_clean(costs);
  return run_round_faulty(costs, round);
}

async_round_result async_master_worker::run_round_clean(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize =
      static_cast<double>(options_.payload_bytes) /
      options_.link.bytes_per_second;

  // --- shared simulation state (single-threaded; events mutate it in
  //     deterministic order) ---
  struct master_state {
    std::size_t costs_received = 0;
    std::vector<double> l;
    std::size_t decisions_received = 0;
    double claimed = 0.0;
    core::worker_id straggler = 0;
    double l_t = 0.0;
  } master;
  master.l.assign(n, 0.0);

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::size_t messages = 0;

  // Forward declarations of the event handlers as std::functions so they
  // can schedule each other.
  std::function<void(core::worker_id)> on_cost_arrival;
  std::function<void(core::worker_id)> on_round_info;
  std::function<void(core::worker_id)> on_decision_arrival;
  std::function<void()> on_assignment_arrival;

  on_cost_arrival = [&](core::worker_id i) {
    master.l[i] = locals_[i];
    if (++master.costs_received < n) return;
    // Last upload in: identify the straggler, broadcast round info. The
    // master's NIC serializes the N downloads back-to-back.
    master.straggler = argmax(master.l);
    master.l_t = master.l[master.straggler];
    for (core::worker_id j = 0; j < n; ++j) {
      ++messages;
      queue.schedule_in(static_cast<double>(j) * serialize + msg_time,
                        [&, j] { on_round_info(j); });
    }
  };

  on_round_info = [&](core::worker_id i) {
    if (i == master.straggler) return;  // straggler waits for assignment
    // Local decision computation, then upload.
    queue.schedule_in(options_.compute_delay, [&, i] {
      next_x[i] = decide_next_share(*costs[i], x_[i], master.l_t, alpha_);
      ready_at[i] = queue.now();  // holds its next-round share now
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id i) {
    master.claimed += next_x[i];
    if (++master.decisions_received < n - 1) return;
    ++messages;
    queue.schedule_in(msg_time, [&] { on_assignment_arrival(); });
  };

  on_assignment_arrival = [&] {
    next_x[master.straggler] = std::max(0.0, 1.0 - master.claimed);
    ready_at[master.straggler] = queue.now();
  };

  // Kick off: worker i finishes its round-t compute at time l_i and
  // uploads its local cost.
  for (core::worker_id i = 0; i < n; ++i) {
    ++messages;
    queue.schedule(locals_[i] + msg_time, [&, i] { on_cost_arrival(i); });
  }
  result.events = queue.run_to_completion();

  // Commit the round exactly as the synchronous realizations do.
  alpha_ = core::next_step_size(alpha_, n, next_x[master.straggler]);
  x_ = std::move(next_x);

  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

// Deadline-synchronized fault-tolerant round: the shared dist/mw_round.h
// state machine over this engine's private reliable link, with the
// deadline timing model pricing each delivery. The allocation semantics
// are the synchronous engine's degraded mode by construction (identical
// transitions, identical fault-roll stream).
async_round_result async_master_worker::run_round_faulty(
    const cost::cost_view& costs, std::uint64_t round) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  // Locals are evaluated at the pre-retirement allocation — the same
  // feedback the synchronous harness computes at current() before
  // observe() — so sync-vs-async bit-identity covers churn rounds too.
  cost::evaluate_into(costs, x_, locals_);
  if (n == 1) {
    result.compute_duration = locals_[0];
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  net_->set_round(round);
  const net::reliable_stats before = rel_->stats();
  obs::tracer* tr = options_.protocol.tracer;
  const std::uint32_t lane = options_.protocol.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double timeout = options_.retransmit_timeout < 0.0
                             ? 4.0 * msg_time
                             : options_.retransmit_timeout;
  mw_deadline_timing timing;
  timing.msg_time = msg_time;
  timing.serialize = static_cast<double>(options_.payload_bytes) /
                     options_.link.bytes_per_second;
  timing.timeout = timeout;
  // How long a receiver waits before declaring an expected message lost.
  timing.patience =
      static_cast<double>(options_.protocol.retry_budget + 1) * timeout +
      msg_time;
  timing.compute_delay = options_.compute_delay;
  timing.locals = locals_;
  timing.removed = &flags_.removed;

  mw_degraded_round<net::reliable_delivery, mw_deadline_timing> flow{
      n,
      n,  // the master occupies node id N
      costs,
      locals_,
      options_.protocol.faults,
      net::reliable_delivery{*rel_},
      timing,
      tr,
      lane,
      counters_.failover,
      report_,
      x_,
      alpha_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  finish_degraded_round(outcome, rel_->stats(), tr, lane, "mw", round,
                        counters_, report_, mirrored_);
  DOLBIE_REQUIRE(on_simplex(x_),
                 "degraded async-MW round " << round
                                            << " left the allocation off "
                                               "the simplex");

  result.next_allocation = x_;
  result.messages = timing.messages;
  result.retransmits = rel_->stats().retransmits - before.retransmits;
  result.zero_step_holds = outcome.holds;
  result.straggler_failovers = outcome.failovers;
  result.aborted = outcome.aborted;
  result.degraded =
      outcome.holds > 0 || outcome.failovers > 0 || outcome.aborted;
  result.compute_duration = timing.compute_duration;
  result.round_duration = std::max(timing.clock, timing.compute_duration);
  result.protocol_duration = result.round_duration - result.compute_duration;
  round_span.arg("straggler",
                 static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages", static_cast<std::uint64_t>(timing.messages));
  return result;
}

std::vector<std::uint8_t> async_master_worker::snapshot() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::async_master_worker, x_.size());
  w.f64(alpha_);
  w.u64(round_);
  for (const double v : x_) w.f64(v);
  w.u8(faulty_ ? 1 : 0);
  if (faulty_) {
    for (const std::uint8_t v : flags_.removed) w.u8(v);
    snapshot_report(w, report_);
    snapshot_reliable_stats(w, mirrored_);
    net_->snapshot_to(w);
    rel_->snapshot_to(w);
  }
  return w.take();
}

void async_master_worker::restore(const std::vector<std::uint8_t>& bytes) {
  reset();
  try {
    snapshot_reader r(bytes);
    read_snapshot_header(r, snapshot_kind::async_master_worker, x_.size());
    alpha_ = r.f64();
    round_ = r.u64();
    for (double& v : x_) v = r.f64();
    const std::uint8_t faulty = r.u8();
    DOLBIE_REQUIRE((faulty != 0) == faulty_,
                   "snapshot fault-path flag does not match this engine");
    if (faulty_) {
      for (std::uint8_t& v : flags_.removed) {
        v = r.u8();
        DOLBIE_REQUIRE(v <= 1, "snapshot membership flag is not 0/1");
      }
      restore_report(r, report_);
      restore_reliable_stats(r, mirrored_);
      net_->restore_from(r);
      rel_->restore_from(r);
    }
    r.finish();
  } catch (...) {
    reset();
    throw;
  }
}

}  // namespace dolbie::dist
