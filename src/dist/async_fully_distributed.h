// Event-driven (asynchronous) execution of Algorithm 2.
//
// Counterpart of async_master_worker for the fully-distributed protocol:
// every worker finishes its round-t computation at its own local-cost
// time, broadcasts (l_i, alpha-bar_i) to all peers (its NIC serializes the
// N-1 sends), updates as soon as its *own* inbox is complete, and sends
// its decision to the straggler; the round ends when the straggler has
// absorbed the remainder and every worker holds its next share.
//
// Two phases instead of four: less latency exposure, more total bytes —
// the same trade-off round_timing.h models analytically, now measured on
// an actual event schedule. The produced iterates are bit-identical to
// the sequential reference.
#pragma once

#include "core/policy.h"
#include "dist/async_master_worker.h"  // async_options, async_round_result

namespace dolbie::dist {

/// Asynchronous Algorithm-2 engine. Stateful across rounds (x_t,
/// alpha-bar_t), mirroring fully_distributed_policy.
class async_fully_distributed {
 public:
  async_fully_distributed(std::size_t n_workers, async_options options = {});

  std::size_t workers() const { return x_.size(); }
  const core::allocation& allocation() const { return x_; }
  const std::vector<double>& local_step_sizes() const { return alpha_bar_; }

  /// Simulate one full round under the given revealed cost functions.
  async_round_result run_round(const cost::cost_view& costs);

  void reset();

 private:
  async_options options_;
  core::allocation x_;
  std::vector<double> alpha_bar_;
  // Round scratch (the phase-0 local costs), reused across run_round calls.
  std::vector<double> locals_;
};

}  // namespace dolbie::dist
