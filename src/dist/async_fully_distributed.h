// Event-driven (asynchronous) execution of Algorithm 2.
//
// Counterpart of async_master_worker for the fully-distributed protocol:
// every worker finishes its round-t computation at its own local-cost
// time, broadcasts (l_i, alpha-bar_i) to all peers (its NIC serializes the
// N-1 sends), updates as soon as its *own* inbox is complete, and sends
// its decision to the straggler; the round ends when the straggler has
// absorbed the remainder and every worker holds its next share.
//
// Two phases instead of four: less latency exposure, more total bytes —
// the same trade-off round_timing.h models analytically, now measured on
// an actual event schedule. The produced iterates are bit-identical to
// the sequential reference.
//
// Fault tolerance: with `protocol.faults` enabled the engine runs the
// unified protocol core's dist/fd_round.h state machine — the exact same
// transitions as the synchronous engine's degraded mode (participant set
// H_t, min-consensus over H_t, delta-sum absorption, straggler failover,
// churn retirement), over an internal net::network + net::reliable_link
// pair — instantiated with a deadline-arithmetic timing model. Degraded
// iterates are bit-identical to the synchronous engine under the same
// fault plan; only the clock differs. The clean path is untouched
// (bit-identical timing and allocations).
#pragma once

#include <memory>

#include "core/policy.h"
#include "dist/async_master_worker.h"  // async_options, async_round_result

namespace dolbie::dist {

/// Asynchronous Algorithm-2 engine. Stateful across rounds (x_t,
/// alpha-bar_t), mirroring fully_distributed_policy.
class async_fully_distributed {
 public:
  async_fully_distributed(std::size_t n_workers, async_options options = {});

  std::size_t workers() const { return x_.size(); }
  const core::allocation& allocation() const { return x_; }
  const std::vector<double>& local_step_sizes() const { return alpha_bar_; }

  /// Simulate one full round under the given revealed cost functions.
  async_round_result run_round(const cost::cost_view& costs);

  /// Cumulative fault/degradation accounting (all zero on the clean path).
  /// Mirrored into protocol.metrics (when attached) as the same
  /// dist.*/net.* counters the synchronous engines publish.
  const fault_report& faults() const { return report_; }

  void reset();

  /// Serialize the complete cross-round state (iterate, per-worker step
  /// bounds, round index, membership, channels, reliable-link sequencing,
  /// fault-roll cursors) into versioned snapshot bytes; restore rebuilds
  /// it so the continuation is bit-identical to the uninterrupted run.
  /// Restore throws invariant_error on corrupt or mismatched bytes,
  /// leaving the engine reset.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

 private:
  async_round_result run_round_clean(const cost::cost_view& costs);
  async_round_result run_round_faulty(const cost::cost_view& costs,
                                      std::uint64_t round);

  async_options options_;
  core::allocation x_;
  std::vector<double> alpha_bar_;
  // Round scratch (the phase-0 local costs), reused across run_round calls.
  std::vector<double> locals_;

  // Fault-tolerant path (engaged only when options_.protocol.faults is
  // enabled; the clean path never touches any of this). The engine owns a
  // private network + reliable link so the shared round state machine
  // consumes the identical fault-roll stream as the synchronous engine.
  bool faulty_ = false;
  std::uint64_t round_ = 0;
  std::unique_ptr<net::network> net_;
  std::unique_ptr<net::reliable_link> rel_;
  round_scratch scratch_;
  member_flags flags_;
  engine_counters counters_;
  fault_report report_;
  net::reliable_stats mirrored_;
};

}  // namespace dolbie::dist
