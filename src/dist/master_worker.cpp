#include "dist/master_worker.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "obs/trace.h"

namespace dolbie::dist {

master_worker_policy::master_worker_policy(std::size_t n_workers,
                                           protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers + 1) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  faulty_ = options_.faults.enabled();
  if (faulty_) {
    net_.attach_faults(options_.faults);
    rel_ = std::make_unique<net::reliable_link>(
        net_, net::reliable_options{options_.retry_budget});
    rel_->attach_tracer(options_.tracer, options_.trace_lane);
    removed_.assign(n_, 0);
    live_.assign(n_, 0);
    heard_.assign(n_, 0);
    decided_.assign(n_, 0);
    tentative_.assign(n_, 0.0);
  }
  if (options_.metrics != nullptr) {
    rounds_counter_ = &options_.metrics->counter_named("mw.rounds");
    alpha_gauge_ = &options_.metrics->gauge_named("mw.alpha");
    straggler_gauge_ = &options_.metrics->gauge_named("mw.straggler");
    if (faulty_) {
      degraded_counter_ =
          &options_.metrics->counter_named("dist.degraded_rounds");
      failover_counter_ =
          &options_.metrics->counter_named("dist.straggler_failovers");
      retransmit_counter_ = &options_.metrics->counter_named("net.retransmits");
      timeout_counter_ = &options_.metrics->counter_named("net.timeouts");
    }
  }
  reset();
}

void master_worker_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  alpha_ = options_.initial_step >= 0.0
               ? options_.initial_step
               : core::initial_step_size(options_.initial_partition);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(removed_.begin(), removed_.end(), 0);
    fault_report_ = {};
    mirrored_ = {};
  }
}

void master_worker_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  if (!faulty_) {
    observe_clean(feedback, round);
  } else {
    observe_faulty(feedback, round);
  }
}

// The exact pre-fault round: best-effort sends, every message required.
// Kept verbatim so zero-fault runs stay bit-identical (allocations and
// traces) and free of any fault-path bookkeeping.
void master_worker_policy::observe_clean(const core::round_feedback& feedback,
                                         std::uint64_t round) {
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  // --- Phase 1: each worker sends its local cost to the master (l.4);
  //     the master drains the incast. ---
  master_l_.assign(n_, 0.0);
  {
    obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      net_.send({i, master_id(), net::message_kind::local_cost,
                 {feedback.local_costs[i]}});
    }
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = net_.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(), "master missed cost from worker " << i);
      master_l_[i] = m->payload[0];
    }
  }

  // --- Phase 2: the master aggregates, identifies the straggler and
  //     broadcasts round info (lines 9-12). ---
  const core::worker_id s = argmax(master_l_);
  const double l_t = master_l_[s];
  if (tr != nullptr) {
    tr->instant(lane, round, "straggler_elected", "mw",
                {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
  }
  {
    obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      net_.send({master_id(), i, net::message_kind::round_info,
                 {l_t, alpha_, i == s ? 0.0 : 1.0}});
    }
  }

  // --- Phase 3: non-stragglers update locally and upload decisions
  //     (lines 5-7). Each worker touches only its own cost function. ---
  {
    obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = net_.receive(i, master_id());
      DOLBIE_REQUIRE(m.has_value(), "worker " << i << " missed round info");
      const double global_cost = m->payload[0];
      const double alpha = m->payload[1];
      const bool non_straggler = m->payload[2] != 0.0;
      if (!non_straggler) continue;  // straggler waits for its assignment
      const double xp = core::max_acceptable_workload(*costs[i], worker_x_[i],
                                                      global_cost);
      worker_x_[i] = worker_x_[i] + alpha * (xp - worker_x_[i]);
      net_.send({i, master_id(), net::message_kind::decision, {worker_x_[i]}});
    }
  }

  // --- Phase 4: the master computes the straggler's remainder, informs it,
  //     tightens the step size (lines 13-16), and the straggler adopts its
  //     assignment (line 8). ---
  {
    obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
    double claimed = 0.0;
    for (net::node_id i = 0; i < n_; ++i) {
      if (i == s) continue;
      auto m = net_.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(),
                     "master missed decision from worker " << i);
      claimed += m->payload[0];
    }
    const double straggler_next = std::max(0.0, 1.0 - claimed);
    net_.send(
        {master_id(), s, net::message_kind::assignment, {straggler_next}});
    alpha_ = core::next_step_size(alpha_, n_, straggler_next);

    auto m = net_.receive(s, master_id());
    DOLBIE_REQUIRE(m.has_value(), "straggler missed its assignment");
    worker_x_[s] = m->payload[0];
  }

  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(s));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(alpha_);
    straggler_gauge_->set(static_cast<double>(s));
  }
}

void master_worker_policy::retire_worker(core::worker_id id,
                                         std::uint64_t round) {
  std::size_t heirs = 0;
  for (core::worker_id j = 0; j < n_; ++j) {
    if (j != id && removed_[j] == 0) ++heirs;
  }
  if (heirs == 0) return;  // the last worker keeps everything
  removed_[id] = 1;
  for (core::worker_id j = 0; j < n_; ++j) live_[j] = removed_[j] ? 0 : 1;
  core::release_share_in_place(worker_x_, id, live_);
  // Conservative re-cap over the surviving shares — the engine-side
  // analogue of dolbie_policy::remove_worker's alpha re-cap.
  double min_share = 1.0;
  for (core::worker_id j = 0; j < n_; ++j) {
    if (removed_[j] == 0) min_share = std::min(min_share, worker_x_[j]);
  }
  alpha_ = std::min(alpha_, core::feasible_step_cap(heirs, min_share));
  ++fault_report_.removed_workers;
  if (options_.tracer != nullptr) {
    options_.tracer->instant(
        options_.trace_lane, round, "worker_removed", "mw",
        {obs::arg_int("worker", id), obs::arg_int("survivors", heirs),
         obs::arg_num("alpha", alpha_)});
  }
}

// The fault-tolerant round: reliable delivery with bounded retransmit,
// round deadlines, degraded completion and straggler failover. Semantics:
//
//   * a worker the master does not hear from (down, crashed mid-round, or
//     lost past the retry budget) takes a zero-length Eq. 5 step — it
//     holds x_{i,t}, and the straggler's Eq. 6 remainder accounts for it
//     at its current share, which the master legitimately tracks;
//   * a worker's decision commits only when the master confirms receipt
//     (the pull-model ack); unconfirmed decisions roll back to x_{i,t};
//   * the round itself commits when the straggler adopts its assignment.
//     If the elected straggler is unreachable, the master re-elects the
//     next-highest heard cost deterministically; if no candidate is
//     reachable the whole round aborts (every worker holds).
void master_worker_policy::observe_faulty(const core::round_feedback& feedback,
                                          std::uint64_t round) {
  net_.set_round(round);
  round_traffic_start_ = net_.total_traffic();
  const cost::cost_view& costs = *feedback.costs;
  const net::fault_plan& plan = options_.faults;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  // Membership: permanent crashes retire through the shared churn math
  // before the round starts.
  for (core::worker_id i = 0; i < n_; ++i) {
    if (removed_[i] == 0 && plan.permanently_down(i, round)) {
      retire_worker(i, round);
    }
  }

  round_start_x_ = worker_x_;
  std::size_t holds = 0;  // worker-rounds defaulting to x_{i,t}
  for (core::worker_id i = 0; i < n_; ++i) {
    live_[i] = (removed_[i] == 0 && !plan.down(i, round)) ? 1 : 0;
    if (live_[i] == 0 && removed_[i] == 0) ++holds;  // temporarily down
  }
  std::size_t failovers = 0;
  bool aborted = false;
  core::worker_id s_final = 0;

  rel_->begin_round(round);

  // --- Phase 1: live workers (including mid-round crashers, whose
  //     transport completes) upload their local costs. ---
  master_l_.assign(n_, 0.0);
  std::size_t heard_count = 0;
  {
    obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      if (live_[i] == 0) continue;
      rel_->send({i, master_id(), net::message_kind::local_cost,
                  {feedback.local_costs[i]}});
    }
    std::fill(heard_.begin(), heard_.end(), 0);
    for (net::node_id i = 0; i < n_; ++i) {
      if (live_[i] == 0) continue;
      auto m = rel_->receive(master_id(), i);
      if (m.has_value()) {
        heard_[i] = 1;
        ++heard_count;
        master_l_[i] = m->payload[0];
      } else {
        ++holds;  // unheard past budget: excluded from the round
      }
    }
  }

  if (heard_count == 0) {
    // Nobody reached the master: the round aborts, every worker holds.
    aborted = true;
    worker_x_ = round_start_x_;
  } else {
    // --- Phase 2: elect over the heard set, broadcast round info. ---
    core::worker_id s = n_;
    for (core::worker_id i = 0; i < n_; ++i) {
      if (heard_[i] != 0 && (s == n_ || master_l_[i] > master_l_[s])) s = i;
    }
    const double l_t = master_l_[s];
    s_final = s;
    if (tr != nullptr) {
      tr->instant(lane, round, "straggler_elected", "mw",
                  {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
    }
    {
      obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
      for (net::node_id i = 0; i < n_; ++i) {
        if (heard_[i] == 0) continue;
        rel_->send({master_id(), i, net::message_kind::round_info,
                    {l_t, alpha_, i == s ? 0.0 : 1.0}});
      }
    }

    // --- Phase 3: reachable non-stragglers compute tentative decisions
    //     and upload them. A worker that crashed mid-round or missed its
    //     round info holds x_{i,t}. ---
    {
      obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
      std::fill(decided_.begin(), decided_.end(), 0);
      for (net::node_id i = 0; i < n_; ++i) {
        if (heard_[i] == 0) continue;
        if (plan.crashed_during(i, round)) {
          if (i != s) ++holds;  // died after its phase-1 upload
          continue;
        }
        // Every reachable worker consumes its round info — the straggler
        // included, or the stale message would alias the assignment it
        // pulls from the same link in phase 4.
        auto m = rel_->receive(i, master_id());
        if (i == s) continue;  // the straggler waits for its assignment
        if (!m.has_value()) {
          ++holds;  // round info lost past budget: zero step
          continue;
        }
        const double xp = core::max_acceptable_workload(
            *costs[i], worker_x_[i], m->payload[0]);
        tentative_[i] = worker_x_[i] + m->payload[1] * (xp - worker_x_[i]);
        rel_->send(
            {i, master_id(), net::message_kind::decision, {tentative_[i]}});
        decided_[i] = 1;
      }
    }

    // --- Phase 4: commit confirmed decisions, assign the remainder with
    //     deterministic straggler failover. ---
    {
      obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
      for (net::node_id i = 0; i < n_; ++i) {
        if (decided_[i] == 0) continue;
        auto m = rel_->receive(master_id(), i);
        if (m.has_value()) {
          worker_x_[i] = m->payload[0];
        } else {
          decided_[i] = 0;  // never acked: the worker rolls back
          ++holds;
        }
      }

      bool clamped = false;
      const auto try_assign = [&](core::worker_id cand) -> bool {
        // The straggler's share is derived, not decided: revert any move
        // the candidate committed as a non-straggler before re-deriving.
        const double saved = worker_x_[cand];
        worker_x_[cand] = round_start_x_[cand];
        double claimed = 0.0;
        for (core::worker_id j = 0; j < n_; ++j) {
          if (j != cand) claimed += worker_x_[j];
        }
        const double raw = 1.0 - claimed;
        const double next = std::max(0.0, raw);
        rel_->send(
            {master_id(), cand, net::message_kind::assignment, {next}});
        auto m = rel_->receive(cand, master_id());
        if (!m.has_value()) {
          worker_x_[cand] = saved;  // unreachable: keep its committed move
          return false;
        }
        worker_x_[cand] = m->payload[0];
        clamped = raw < 0.0;
        return true;
      };

      bool assigned = false;
      if (!plan.crashed_during(s, round)) assigned = try_assign(s);
      if (!assigned) {
        // Failover chain: next-highest heard cost among workers that are
        // still running, lowest index on ties; reuse heard_ to mark
        // exhausted candidates.
        core::worker_id prev = s;
        for (;;) {
          core::worker_id cand = n_;
          for (core::worker_id i = 0; i < n_; ++i) {
            if (i == s || heard_[i] == 0 || plan.crashed_during(i, round)) {
              continue;
            }
            if (cand == n_ || master_l_[i] > master_l_[cand]) cand = i;
          }
          if (cand == n_) break;
          heard_[cand] = 0;  // consumed as a candidate
          ++failovers;
          ++fault_report_.straggler_failovers;
          if (failover_counter_ != nullptr) failover_counter_->add(1);
          if (tr != nullptr) {
            tr->instant(lane, round, "straggler_failover", "mw",
                        {obs::arg_int("from", prev), obs::arg_int("to", cand),
                         obs::arg_num("cost", master_l_[cand])});
          }
          if (try_assign(cand)) {
            assigned = true;
            s_final = cand;
            break;
          }
          prev = cand;
        }
      }
      if (!assigned) {
        aborted = true;
        worker_x_ = round_start_x_;
      } else {
        if (clamped) {
          // The remainder went negative: alpha ran ahead of the binding
          // Eq. 7 cap (its source went unheard in a degraded round).
          // Rescale onto the simplex like the sequential reference.
          double total = 0.0;
          for (double v : worker_x_) total += v;
          for (double& v : worker_x_) v /= total;
          if (tr != nullptr) {
            tr->instant(lane, round, "renormalized", "mw",
                        {obs::arg_num("total", total)});
          }
        }
        // Conservative re-cap from the realized straggler share (Eq. 7
        // with the full worker count — a superset bound stays safe).
        alpha_ = core::next_step_size(alpha_, n_, worker_x_[s_final]);
      }
    }
  }

  finish_round(round, holds, failovers, aborted, s_final);
  round_span.arg("straggler", static_cast<std::uint64_t>(s_final));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(alpha_);
    straggler_gauge_->set(static_cast<double>(s_final));
  }
}

void master_worker_policy::finish_round(std::uint64_t round, std::size_t holds,
                                        std::size_t failovers, bool aborted,
                                        core::worker_id straggler) {
  (void)straggler;
  const bool degraded = holds > 0 || failovers > 0 || aborted;
  if (degraded) {
    ++fault_report_.degraded_rounds;
    if (aborted) ++fault_report_.aborted_rounds;
    if (degraded_counter_ != nullptr) degraded_counter_->add(1);
    if (options_.tracer != nullptr) {
      options_.tracer->instant(options_.trace_lane, round, "degraded_round",
                               "mw",
                               {obs::arg_int("holds", holds),
                                obs::arg_int("aborted", aborted ? 1 : 0)});
    }
  }
  fault_report_.zero_step_holds += holds;
  const net::reliable_stats& st = rel_->stats();
  if (retransmit_counter_ != nullptr) {
    retransmit_counter_->add(st.retransmits - mirrored_.retransmits);
    timeout_counter_->add(st.timeouts - mirrored_.timeouts);
  }
  mirrored_ = st;
  fault_report_.retransmits = st.retransmits;
  fault_report_.timeouts = st.timeouts;
  fault_report_.duplicates_discarded = st.duplicates_discarded;

  DOLBIE_REQUIRE(on_simplex(worker_x_),
                 "degraded MW round " << round
                                      << " left the allocation off the "
                                         "simplex");
  assembled_ = worker_x_;
  const net::traffic_totals totals = net_.total_traffic();
  last_traffic_ = {
      totals.messages_sent - round_traffic_start_.messages_sent,
      totals.bytes_sent - round_traffic_start_.bytes_sent};
}

}  // namespace dolbie::dist
