#include "dist/master_worker.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "obs/trace.h"

namespace dolbie::dist {

master_worker_policy::master_worker_policy(std::size_t n_workers,
                                           protocol_options options)
    : n_(n_workers), options_(std::move(options)), net_(n_workers + 1) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  if (options_.initial_partition.empty()) {
    options_.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.initial_partition),
                 "initial partition must lie on the simplex");
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  if (options_.metrics != nullptr) {
    rounds_counter_ = &options_.metrics->counter_named("mw.rounds");
    alpha_gauge_ = &options_.metrics->gauge_named("mw.alpha");
    straggler_gauge_ = &options_.metrics->gauge_named("mw.straggler");
  }
  reset();
}

void master_worker_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  alpha_ = options_.initial_step >= 0.0
               ? options_.initial_step
               : core::initial_step_size(options_.initial_partition);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
}

void master_worker_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  // --- Phase 1: each worker sends its local cost to the master (l.4);
  //     the master drains the incast. ---
  master_l_.assign(n_, 0.0);
  {
    obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      net_.send({i, master_id(), net::message_kind::local_cost,
                 {feedback.local_costs[i]}});
    }
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = net_.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(), "master missed cost from worker " << i);
      master_l_[i] = m->payload[0];
    }
  }

  // --- Phase 2: the master aggregates, identifies the straggler and
  //     broadcasts round info (lines 9-12). ---
  const core::worker_id s = argmax(master_l_);
  const double l_t = master_l_[s];
  if (tr != nullptr) {
    tr->instant(lane, round, "straggler_elected", "mw",
                {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
  }
  {
    obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      net_.send({master_id(), i, net::message_kind::round_info,
                 {l_t, alpha_, i == s ? 0.0 : 1.0}});
    }
  }

  // --- Phase 3: non-stragglers update locally and upload decisions
  //     (lines 5-7). Each worker touches only its own cost function. ---
  {
    obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = net_.receive(i, master_id());
      DOLBIE_REQUIRE(m.has_value(), "worker " << i << " missed round info");
      const double global_cost = m->payload[0];
      const double alpha = m->payload[1];
      const bool non_straggler = m->payload[2] != 0.0;
      if (!non_straggler) continue;  // straggler waits for its assignment
      const double xp = core::max_acceptable_workload(*costs[i], worker_x_[i],
                                                      global_cost);
      worker_x_[i] = worker_x_[i] + alpha * (xp - worker_x_[i]);
      net_.send({i, master_id(), net::message_kind::decision, {worker_x_[i]}});
    }
  }

  // --- Phase 4: the master computes the straggler's remainder, informs it,
  //     tightens the step size (lines 13-16), and the straggler adopts its
  //     assignment (line 8). ---
  {
    obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
    double claimed = 0.0;
    for (net::node_id i = 0; i < n_; ++i) {
      if (i == s) continue;
      auto m = net_.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(),
                     "master missed decision from worker " << i);
      claimed += m->payload[0];
    }
    const double straggler_next = std::max(0.0, 1.0 - claimed);
    net_.send(
        {master_id(), s, net::message_kind::assignment, {straggler_next}});
    alpha_ = core::next_step_size(alpha_, n_, straggler_next);

    auto m = net_.receive(s, master_id());
    DOLBIE_REQUIRE(m.has_value(), "straggler missed its assignment");
    worker_x_[s] = m->payload[0];
  }

  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(s));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  if (rounds_counter_ != nullptr) {
    rounds_counter_->add(1);
    alpha_gauge_->set(alpha_);
    straggler_gauge_->set(static_cast<double>(s));
  }
}

}  // namespace dolbie::dist
