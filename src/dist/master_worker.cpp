#include "dist/master_worker.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/step_size.h"
#include "dist/mw_round.h"
#include "net/transport.h"
#include "obs/trace.h"

namespace dolbie::dist {

master_worker_policy::master_worker_policy(std::size_t n_workers,
                                           protocol_options options)
    // Star topology around the master: Alg. 1 only ever uses the
    // worker<->master links, so the channel storage is O(n), not O(n^2) —
    // what keeps the flat engine feasible at N = 10^5. Fault rolls key on
    // (from, to), never on storage layout, so transcripts are unchanged.
    : n_(n_workers),
      options_(std::move(options)),
      net_(n_workers + 1, /*hub=*/n_workers) {
  normalize_options(options_, n_);
  net_.attach_tracer(options_.tracer, options_.trace_lane);
  faulty_ = options_.faults.enabled();
  if (faulty_) {
    net_.attach_faults(options_.faults);
    rel_ = std::make_unique<net::reliable_link>(
        net_, net::reliable_options{options_.retry_budget});
    rel_->attach_tracer(options_.tracer, options_.trace_lane);
    flags_.setup(n_, /*all_pairs=*/false);
    scratch_.tentative.assign(n_, 0.0);
  }
  counters_.bind(options_.metrics, "mw", "mw.alpha", faulty_);
  reset();
}

void master_worker_policy::reset() {
  worker_x_ = options_.initial_partition;
  assembled_ = options_.initial_partition;
  alpha_ = options_.initial_step >= 0.0
               ? options_.initial_step
               : core::initial_step_size(options_.initial_partition);
  net_.reset_traffic();
  last_traffic_ = {};
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(flags_.removed.begin(), flags_.removed.end(), 0);
    fault_report_ = {};
    mirrored_ = {};
  }
}

void master_worker_policy::observe(const core::round_feedback& feedback) {
  DOLBIE_REQUIRE(feedback.costs != nullptr, "feedback carries no costs");
  DOLBIE_REQUIRE(feedback.local_costs.size() == n_, "feedback size mismatch");
  const std::uint64_t round = round_++;
  if (n_ == 1) return;
  if (!faulty_) {
    observe_clean(feedback, round);
  } else {
    observe_faulty(feedback, round);
  }
}

// The exact pre-fault round: best-effort sends, every message required.
// Kept verbatim so zero-fault runs stay bit-identical (allocations and
// traces) and free of any fault-path bookkeeping.
void master_worker_policy::observe_clean(const core::round_feedback& feedback,
                                         std::uint64_t round) {
  net_.reset_traffic();
  net_.set_round(round);
  const cost::cost_view& costs = *feedback.costs;
  net::direct_delivery wire{net_};
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  // --- Phase 1: each worker sends its local cost to the master (l.4);
  //     the master drains the incast. ---
  std::vector<double>& master_l = scratch_.inbox_l;
  master_l.assign(n_, 0.0);
  {
    obs::span sp(tr, lane, round, "phase1.cost_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      wire.send({i, master_id(), net::message_kind::local_cost,
                 {feedback.local_costs[i]}});
    }
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = wire.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(), "master missed cost from worker " << i);
      master_l[i] = m->payload[0];
    }
  }

  // --- Phase 2: the master aggregates, identifies the straggler and
  //     broadcasts round info (lines 9-12). ---
  const core::worker_id s = argmax(master_l);
  const double l_t = master_l[s];
  if (tr != nullptr) {
    tr->instant(lane, round, "straggler_elected", "mw",
                {obs::arg_int("worker", s), obs::arg_num("cost", l_t)});
  }
  {
    obs::span sp(tr, lane, round, "phase2.round_info_downloads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      wire.send(make_round_info(master_id(), i, l_t, alpha_, i != s));
    }
  }

  // --- Phase 3: non-stragglers update locally and upload decisions
  //     (lines 5-7). Each worker touches only its own cost function. ---
  {
    obs::span sp(tr, lane, round, "phase3.decision_uploads", "mw");
    for (net::node_id i = 0; i < n_; ++i) {
      auto m = wire.receive(i, master_id());
      DOLBIE_REQUIRE(m.has_value(), "worker " << i << " missed round info");
      const round_info info = decode_round_info(*m);
      if (!info.non_straggler) continue;  // waits for its assignment
      worker_x_[i] =
          decide_next_share(*costs[i], worker_x_[i], info.l_t, info.alpha);
      wire.send({i, master_id(), net::message_kind::decision, {worker_x_[i]}});
    }
  }

  // --- Phase 4: the master computes the straggler's remainder, informs it,
  //     tightens the step size (lines 13-16), and the straggler adopts its
  //     assignment (line 8). ---
  {
    obs::span sp(tr, lane, round, "phase4.assignment_download", "mw");
    double claimed = 0.0;
    for (net::node_id i = 0; i < n_; ++i) {
      if (i == s) continue;
      auto m = wire.receive(master_id(), i);
      DOLBIE_REQUIRE(m.has_value(),
                     "master missed decision from worker " << i);
      claimed += m->payload[0];
    }
    const double straggler_next = std::max(0.0, 1.0 - claimed);
    wire.send(
        {master_id(), s, net::message_kind::assignment, {straggler_next}});
    alpha_ = core::next_step_size(alpha_, n_, straggler_next);

    auto m = wire.receive(s, master_id());
    DOLBIE_REQUIRE(m.has_value(), "straggler missed its assignment");
    worker_x_[s] = m->payload[0];
  }

  assembled_ = worker_x_;
  last_traffic_ = net_.total_traffic();
  round_span.arg("straggler", static_cast<std::uint64_t>(s));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  counters_.round_complete(alpha_, static_cast<double>(s));
}

// The fault-tolerant round: one instantiation of the shared dist/mw_round.h
// state machine (reliable delivery, degraded completion, straggler
// failover, churn retirement) with the timing hooks compiled away.
void master_worker_policy::observe_faulty(const core::round_feedback& feedback,
                                          std::uint64_t round) {
  net_.set_round(round);
  round_traffic_start_ = net_.total_traffic();
  obs::tracer* tr = options_.tracer;
  const std::uint32_t lane = options_.trace_lane;
  obs::span round_span(tr, lane, round, "round", "mw");

  mw_null_timing timing;
  mw_degraded_round<net::reliable_delivery, mw_null_timing> flow{
      n_,
      master_id(),
      *feedback.costs,
      feedback.local_costs,
      options_.faults,
      net::reliable_delivery{*rel_},
      timing,
      tr,
      lane,
      counters_.failover,
      fault_report_,
      worker_x_,
      alpha_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  finish_round(round, outcome);
  round_span.arg("straggler", static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_next", alpha_);
  round_span.arg("messages",
                 static_cast<std::uint64_t>(last_traffic_.messages_sent));
  counters_.round_complete(alpha_, static_cast<double>(outcome.straggler));
}

void master_worker_policy::finish_round(std::uint64_t round,
                                        const degraded_outcome& outcome) {
  finish_degraded_round(outcome, rel_->stats(), options_.tracer,
                        options_.trace_lane, "mw", round, counters_,
                        fault_report_, mirrored_);
  DOLBIE_REQUIRE(on_simplex(worker_x_),
                 "degraded MW round " << round
                                      << " left the allocation off the "
                                         "simplex");
  assembled_ = worker_x_;
  const net::traffic_totals totals = net_.total_traffic();
  last_traffic_ = {
      totals.messages_sent - round_traffic_start_.messages_sent,
      totals.bytes_sent - round_traffic_start_.bytes_sent};
}

std::vector<std::uint8_t> master_worker_policy::snapshot() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::master_worker, n_);
  w.f64(alpha_);
  w.u64(round_);
  for (const double v : worker_x_) w.f64(v);
  for (const double v : assembled_) w.f64(v);
  w.u64(last_traffic_.messages_sent);
  w.u64(last_traffic_.bytes_sent);
  net_.snapshot_to(w);
  w.u8(faulty_ ? 1 : 0);
  if (faulty_) {
    for (const std::uint8_t v : flags_.removed) w.u8(v);
    snapshot_report(w, fault_report_);
    snapshot_reliable_stats(w, mirrored_);
    rel_->snapshot_to(w);
  }
  return w.take();
}

void master_worker_policy::restore(const std::vector<std::uint8_t>& bytes) {
  reset();
  try {
    snapshot_reader r(bytes);
    read_snapshot_header(r, snapshot_kind::master_worker, n_);
    alpha_ = r.f64();
    round_ = r.u64();
    for (double& v : worker_x_) v = r.f64();
    for (double& v : assembled_) v = r.f64();
    last_traffic_.messages_sent = static_cast<std::size_t>(r.u64());
    last_traffic_.bytes_sent = static_cast<std::size_t>(r.u64());
    net_.restore_from(r);
    const std::uint8_t faulty = r.u8();
    DOLBIE_REQUIRE((faulty != 0) == faulty_,
                   "snapshot fault-path flag does not match this engine");
    if (faulty_) {
      for (std::uint8_t& v : flags_.removed) {
        v = r.u8();
        DOLBIE_REQUIRE(v <= 1, "snapshot membership flag is not 0/1");
      }
      restore_report(r, fault_report_);
      restore_reliable_stats(r, mirrored_);
      rel_->restore_from(r);
    }
    r.finish();
  } catch (...) {
    reset();
    throw;
  }
}

}  // namespace dolbie::dist
