// Shared options, payload conventions and round-state structs for the two
// DOLBIE protocol realizations (the unified protocol core: dist/mw_round.h
// and dist/fd_round.h hold the per-realization round state machines, all
// four engines instantiate them).
//
// Payload layouts (scalars, in order):
//   local_cost    : { l_{i,t} }
//   round_info    : { l_t, alpha_t, 1{i != s_t} }
//   decision      : { x_{i,t+1} }            (clean path)
//                   { x_{i,t+1}, x_{i,t} }   (FD degraded path: delta sum)
//   assignment    : { x_{s_t,t+1} }
//   cost_and_step : { l_{i,t}, alpha-bar_{i,t} }
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "net/fault_plan.h"
#include "net/message.h"

namespace dolbie {
class snapshot_reader;
class snapshot_writer;
}  // namespace dolbie

namespace dolbie::obs {
class counter;
class gauge;
class metrics_registry;
class tracer;
}  // namespace dolbie::obs

namespace dolbie::net {
class reliable_link;
struct reliable_stats;
}  // namespace dolbie::net

namespace dolbie::dist {

/// Common configuration of both protocol realizations; mirrors
/// core::dolbie_options so the three implementations start identically.
struct protocol_options {
  /// Initial partition x_1; empty means uniform.
  core::allocation initial_partition;
  /// Initial step size alpha_1; negative selects the paper's safe
  /// initialization m/(N-2+m).
  double initial_step = -1.0;

  /// Observability (all optional; null leaves the realization on the
  /// zero-cost disabled path). When tracing, a realization records its
  /// per-phase spans and events on `trace_lane` — one lane per policy
  /// instance; a lane must only ever be driven by one thread at a time.
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;

  /// Deterministic fault schedule (net/fault_plan.h). Default-constructed
  /// (disabled) keeps the engine on the exact pre-fault wire path —
  /// bit-identical allocations and traces, zero extra work per round.
  /// With any fault configured, messages travel through the reliable
  /// delivery layer and rounds may complete in degraded mode.
  net::fault_plan faults;
  /// Retransmissions allowed per message before the receiver declares it
  /// lost and the round degrades (see net/reliable.h).
  std::size_t retry_budget = 5;
};

/// Validate `options` against the worker count and default the initial
/// partition to uniform. Shared by all four engine constructors.
void normalize_options(protocol_options& options, std::size_t n_workers);

/// Cumulative fault/degradation accounting, exposed by all four engines
/// (sync and async, both realizations). Mirrored into
/// `protocol_options::metrics` (when attached) as the counters
/// dist.degraded_rounds, dist.straggler_failovers, net.retransmits and
/// net.timeouts.
struct fault_report {
  /// Rounds that completed with at least one worker holding x_{i,t}
  /// (zero step), a straggler failover, or a full abort.
  std::size_t degraded_rounds = 0;
  /// Deterministic re-elections after the elected straggler crashed or
  /// missed its deadline.
  std::size_t straggler_failovers = 0;
  /// Workers retired permanently through the churn path (core/churn.h).
  std::size_t removed_workers = 0;
  /// Worker-rounds that defaulted to x_{i,t} (zero-length Eq. 5 step).
  std::size_t zero_step_holds = 0;
  /// Rounds where no progress was possible and every worker held.
  std::size_t aborted_rounds = 0;
  /// Transport totals, copied from the reliable layer.
  std::size_t retransmits = 0;
  std::size_t timeouts = 0;
  std::size_t duplicates_discarded = 0;
};

/// Decoded round_info payload (Alg. 1, master -> worker, phase 2).
struct round_info {
  double l_t = 0.0;
  double alpha = 0.0;
  bool non_straggler = false;
};

inline net::message make_round_info(net::node_id master, net::node_id to,
                                    double l_t, double alpha,
                                    bool non_straggler) {
  return {master, to, net::message_kind::round_info,
          {l_t, alpha, non_straggler ? 1.0 : 0.0}};
}

inline round_info decode_round_info(const net::message& m) {
  return {m.payload[0], m.payload[1], m.payload[2] != 0.0};
}

/// Per-round value scratch shared by the engines. Held as members so the
/// round loops reuse storage instead of allocating (the PR 3 guarantee):
/// every vector reaches worker-count capacity after the first round and
/// is only ever .assign()ed or copy-assigned afterwards.
struct round_scratch {
  std::vector<double> next_x;     ///< x_{t+1} under construction (FD)
  std::vector<double> start_x;    ///< rollback / abort snapshot (MW)
  std::vector<double> tentative;  ///< tentative Eq. 5 decisions
  std::vector<double> inbox_l;    ///< reassembled cost inbox (l_j view)
  std::vector<double> inbox_a;    ///< reassembled step inbox (FD only)
  std::vector<double> xp;         ///< batched Eq. 4 output (batch path only)
};

/// Membership / delivery flags of the degraded round flows. `delivered`
/// is the n*n broadcast bitmap and is only sized for the FD realization.
struct member_flags {
  std::vector<std::uint8_t> removed;    ///< permanent membership
  std::vector<std::uint8_t> live;       ///< per-round liveness
  std::vector<std::uint8_t> heard;      ///< MW phase-1 inbox bitmap
  std::vector<std::uint8_t> decided;    ///< MW decision committed
  std::vector<std::uint8_t> in_h;       ///< FD participant set H_t
  std::vector<std::uint8_t> delivered;  ///< FD n*n delivery bitmap

  void setup(std::size_t n, bool all_pairs) {
    removed.assign(n, 0);
    live.assign(n, 0);
    heard.assign(n, 0);
    decided.assign(n, 0);
    in_h.assign(n, 0);
    delivered.assign(all_pairs ? n * n : 0, 0);
  }
};

/// Shared churn retirement math (core/churn.h): count the heirs, release
/// the retiring worker's share over them and return the Eq. 7-safe step
/// cap — the engine-side analogue of dolbie_policy::remove_worker's alpha
/// re-cap. Returns false (and retires nothing) when the worker is the
/// last one standing. `flags.removed` and `flags.live` are updated in
/// place; how the cap is applied (master alpha vs. every surviving
/// alpha-bar) is the realization's business.
struct retirement {
  std::size_t heirs = 0;
  double cap = 1.0;
};
/// `target` is the group's conserved mass (1.0 for the flat engines, a
/// shard's slice under the hierarchy): the heirs renormalize onto it and
/// the Eq. 7 re-cap reads the surviving shares relative to it.
bool retire_worker_share(std::vector<double>& x, member_flags& flags,
                         core::worker_id id, retirement& out,
                         double target = 1.0);

/// What a degraded round resolved to; the engines feed it into the shared
/// accounting and their round-span args.
struct degraded_outcome {
  std::size_t holds = 0;      ///< worker-rounds defaulting to x_{i,t}
  std::size_t failovers = 0;  ///< straggler re-elections this round
  bool aborted = false;       ///< no progress; every worker held
  core::worker_id straggler = 0;   ///< the straggler that finally absorbed
  double consensus_alpha = 0.0;    ///< FD only: the round's min consensus
  /// MW only: the Eq. 7 step-size candidate derived from the realized
  /// straggler share. The flat round adopts it directly; the hierarchical
  /// layer min-reduces the candidates of every shard at the tree root.
  double alpha_candidate = 0.0;
};

/// The per-engine metrics bindings (null when no registry is attached).
/// `bind` resolves the counters once at construction; `round_complete`
/// bumps the per-round figures on the hot path.
struct engine_counters {
  obs::counter* rounds = nullptr;
  obs::gauge* alpha = nullptr;
  obs::gauge* straggler = nullptr;
  obs::counter* degraded = nullptr;
  obs::counter* failover = nullptr;
  obs::counter* retransmits = nullptr;
  obs::counter* timeouts = nullptr;

  /// Resolve the bindings: `prefix` names the per-realization counters
  /// ("mw" -> mw.rounds/mw.alpha/mw.straggler; `alpha_gauge` overrides
  /// the alpha gauge name, e.g. fd.alpha_consensus). Empty `prefix` skips
  /// the per-realization triple (the async engines mirror only the shared
  /// dist.*/net.* fault counters). With `faulty` the shared fault counters
  /// are resolved too.
  void bind(obs::metrics_registry* metrics, std::string_view prefix,
            std::string_view alpha_gauge, bool faulty);

  /// rounds +1, alpha/straggler gauges set. No-op when unbound.
  void round_complete(double alpha_value, double straggler_id);
};

/// Shared tail of every degraded round (all four engines): degraded-round
/// classification (trace instant + dist.* counters), zero-step-hold
/// accumulation, and the delta-mirror of the reliable layer's stats into
/// the net.* counters and the cumulative fault_report. `category` is the
/// realization's trace category ("mw"/"fd").
void finish_degraded_round(const degraded_outcome& outcome,
                           const net::reliable_stats& stats,
                           obs::tracer* tracer, std::uint32_t lane,
                           std::string_view category, std::uint64_t round,
                           engine_counters& counters, fault_report& report,
                           net::reliable_stats& mirrored);

/// Checkpoint building blocks shared by every engine's snapshot()/restore()
/// (common/snapshot.h): the cumulative fault report and the engine-side
/// mirror of the reliable layer's stats, as fixed runs of u64 fields.
void snapshot_report(snapshot_writer& w, const fault_report& report);
void restore_report(snapshot_reader& r, fault_report& report);
void snapshot_reliable_stats(snapshot_writer& w,
                             const net::reliable_stats& stats);
void restore_reliable_stats(snapshot_reader& r, net::reliable_stats& stats);

}  // namespace dolbie::dist
