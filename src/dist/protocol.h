// Shared options and payload conventions for the two DOLBIE protocol
// realizations.
//
// Payload layouts (scalars, in order):
//   local_cost    : { l_{i,t} }
//   round_info    : { l_t, alpha_t, 1{i != s_t} }
//   decision      : { x_{i,t+1} }
//   assignment    : { x_{s_t,t+1} }
//   cost_and_step : { l_{i,t}, alpha-bar_{i,t} }
#pragma once

#include <cstdint>

#include "core/types.h"
#include "net/fault_plan.h"

namespace dolbie::obs {
class metrics_registry;
class tracer;
}  // namespace dolbie::obs

namespace dolbie::dist {

/// Common configuration of both protocol realizations; mirrors
/// core::dolbie_options so the three implementations start identically.
struct protocol_options {
  /// Initial partition x_1; empty means uniform.
  core::allocation initial_partition;
  /// Initial step size alpha_1; negative selects the paper's safe
  /// initialization m/(N-2+m).
  double initial_step = -1.0;

  /// Observability (all optional; null leaves the realization on the
  /// zero-cost disabled path). When tracing, a realization records its
  /// per-phase spans and events on `trace_lane` — one lane per policy
  /// instance; a lane must only ever be driven by one thread at a time.
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;

  /// Deterministic fault schedule (net/fault_plan.h). Default-constructed
  /// (disabled) keeps the engine on the exact pre-fault wire path —
  /// bit-identical allocations and traces, zero extra work per round.
  /// With any fault configured, messages travel through the reliable
  /// delivery layer and rounds may complete in degraded mode.
  net::fault_plan faults;
  /// Retransmissions allowed per message before the receiver declares it
  /// lost and the round degrades (see net/reliable.h).
  std::size_t retry_budget = 5;
};

/// Cumulative fault/degradation accounting exposed by both sync engines.
/// Mirrored into `protocol_options::metrics` (when attached) as the
/// counters dist.degraded_rounds, dist.straggler_failovers,
/// net.retransmits and net.timeouts.
struct fault_report {
  /// Rounds that completed with at least one worker holding x_{i,t}
  /// (zero step), a straggler failover, or a full abort.
  std::size_t degraded_rounds = 0;
  /// Deterministic re-elections after the elected straggler crashed or
  /// missed its deadline.
  std::size_t straggler_failovers = 0;
  /// Workers retired permanently through the churn path (core/churn.h).
  std::size_t removed_workers = 0;
  /// Worker-rounds that defaulted to x_{i,t} (zero-length Eq. 5 step).
  std::size_t zero_step_holds = 0;
  /// Rounds where no progress was possible and every worker held.
  std::size_t aborted_rounds = 0;
  /// Transport totals, copied from the reliable layer.
  std::size_t retransmits = 0;
  std::size_t timeouts = 0;
  std::size_t duplicates_discarded = 0;
};

}  // namespace dolbie::dist
