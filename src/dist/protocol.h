// Shared options and payload conventions for the two DOLBIE protocol
// realizations.
//
// Payload layouts (scalars, in order):
//   local_cost    : { l_{i,t} }
//   round_info    : { l_t, alpha_t, 1{i != s_t} }
//   decision      : { x_{i,t+1} }
//   assignment    : { x_{s_t,t+1} }
//   cost_and_step : { l_{i,t}, alpha-bar_{i,t} }
#pragma once

#include <cstdint>

#include "core/types.h"

namespace dolbie::obs {
class metrics_registry;
class tracer;
}  // namespace dolbie::obs

namespace dolbie::dist {

/// Common configuration of both protocol realizations; mirrors
/// core::dolbie_options so the three implementations start identically.
struct protocol_options {
  /// Initial partition x_1; empty means uniform.
  core::allocation initial_partition;
  /// Initial step size alpha_1; negative selects the paper's safe
  /// initialization m/(N-2+m).
  double initial_step = -1.0;

  /// Observability (all optional; null leaves the realization on the
  /// zero-cost disabled path). When tracing, a realization records its
  /// per-phase spans and events on `trace_lane` — one lane per policy
  /// instance; a lane must only ever be driven by one thread at a time.
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;
};

}  // namespace dolbie::dist
