// Shared options and payload conventions for the two DOLBIE protocol
// realizations.
//
// Payload layouts (scalars, in order):
//   local_cost    : { l_{i,t} }
//   round_info    : { l_t, alpha_t, 1{i != s_t} }
//   decision      : { x_{i,t+1} }
//   assignment    : { x_{s_t,t+1} }
//   cost_and_step : { l_{i,t}, alpha-bar_{i,t} }
#pragma once

#include "core/types.h"

namespace dolbie::dist {

/// Common configuration of both protocol realizations; mirrors
/// core::dolbie_options so the three implementations start identically.
struct protocol_options {
  /// Initial partition x_1; empty means uniform.
  core::allocation initial_partition;
  /// Initial step size alpha_1; negative selects the paper's safe
  /// initialization m/(N-2+m).
  double initial_step = -1.0;
};

}  // namespace dolbie::dist
