#include "dist/async_fully_distributed.h"

#include <algorithm>
#include <functional>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/step_size.h"
#include "dist/fd_round.h"
#include "net/transport.h"
#include "sim/event_queue.h"

namespace dolbie::dist {
namespace {

// Deadline-arithmetic timing model for the shared FD round state machine;
// sibling of async_master_worker.cpp's mw_deadline_timing. The broadcast
// barrier (every polling receiver's inbox deadline) closes phase 1, the
// movers' decision uploads close phase 2, and a failover costs the movers
// one full patience window on the dead straggler.
struct fd_deadline_timing {
  double msg_time = 0.0;
  double serialize = 0.0;
  double timeout = 0.0;
  double patience = 0.0;
  double compute_delay = 0.0;
  std::span<const double> locals;
  const std::vector<std::uint8_t>* removed = nullptr;

  double compute_duration = 0.0;
  double clock = 0.0;
  double phase1_end = 0.0;
  double phase2_end = 0.0;
  std::vector<double> depart;          // n*n broadcast departure times
  std::vector<double> sent_at;         // decision departure times
  std::vector<std::size_t> position;   // per-sender NIC serialization slot
  std::size_t messages = 0;

  void round_begin() {
    const std::size_t n = locals.size();
    for (std::size_t i = 0; i < n; ++i) {
      if ((*removed)[i] == 0) {
        compute_duration = std::max(compute_duration, locals[i]);
      }
    }
    phase1_end = compute_duration;
    depart.assign(n * n, 0.0);
    sent_at.assign(n, 0.0);
    position.assign(n, 0);
  }
  void on_send() { ++messages; }
  // Worker i's NIC serializes its broadcasts back-to-back from l_i.
  void broadcast_sent(core::worker_id i, core::worker_id j) {
    const std::size_t n = locals.size();
    depart[i * n + j] =
        locals[i] + static_cast<double>(position[i]++) * serialize;
  }
  void broadcast_delivered(core::worker_id j, core::worker_id i,
                           std::size_t k) {
    const std::size_t n = locals.size();
    phase1_end = std::max(
        phase1_end,
        depart[i * n + j] + static_cast<double>(k - 1) * timeout + msg_time);
  }
  void broadcast_lost(core::worker_id j, core::worker_id i) {
    const std::size_t n = locals.size();
    phase1_end = std::max(phase1_end, depart[i * n + j] + patience);
  }
  void phase1_done() {
    clock = phase1_end;
    phase2_end = clock;
  }
  void decision_sent(core::worker_id i) {
    sent_at[i] = clock + compute_delay;
  }
  // Movers time out on the dead straggler before re-uploading.
  void failover() {
    clock += patience;
    phase2_end = clock;
  }
  void decision_delivered(core::worker_id i, std::size_t k) {
    phase2_end = std::max(
        phase2_end,
        sent_at[i] + static_cast<double>(k - 1) * timeout + msg_time);
  }
  void decision_lost(core::worker_id i) {
    phase2_end = std::max(phase2_end, sent_at[i] + patience);
  }
  void phase2_done() { clock = phase2_end; }
};

}  // namespace

async_fully_distributed::async_fully_distributed(std::size_t n_workers,
                                                 async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  normalize_options(options_.protocol, n_workers);
  x_ = options_.protocol.initial_partition;
  faulty_ = options_.protocol.faults.enabled();
  if (faulty_) {
    net_ = std::make_unique<net::network>(n_workers);
    net_->attach_faults(options_.protocol.faults);
    net_->attach_tracer(options_.protocol.tracer, options_.protocol.trace_lane);
    rel_ = std::make_unique<net::reliable_link>(
        *net_, net::reliable_options{options_.protocol.retry_budget});
    rel_->attach_tracer(options_.protocol.tracer, options_.protocol.trace_lane);
    flags_.setup(n_workers, /*all_pairs=*/true);
    scratch_.tentative.assign(n_workers, 0.0);
  }
  counters_.bind(options_.protocol.metrics, "", "", faulty_);
  reset();
}

void async_fully_distributed::reset() {
  x_ = options_.protocol.initial_partition;
  const double alpha1 = options_.protocol.initial_step >= 0.0
                            ? options_.protocol.initial_step
                            : core::initial_step_size(x_);
  alpha_bar_.assign(x_.size(), alpha1);
  round_ = 0;
  if (faulty_) {
    rel_->reset();
    std::fill(flags_.removed.begin(), flags_.removed.end(), 0);
    report_ = {};
    mirrored_ = {};
  }
}

async_round_result async_fully_distributed::run_round(
    const cost::cost_view& costs) {
  const std::uint64_t round = round_++;
  if (!faulty_) return run_round_clean(costs);
  return run_round_faulty(costs, round);
}

async_round_result async_fully_distributed::run_round_clean(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize = static_cast<double>(options_.payload_bytes) /
                           options_.link.bytes_per_second;

  // Everyone identifies the same straggler from the same data; we can
  // precompute it (lowest-index tie-break) to keep the handlers simple —
  // each worker would reach the identical conclusion from its inbox.
  const core::worker_id straggler = argmax(locals_);
  const double l_t = locals_[straggler];
  const double alpha_t = alpha_bar_[argmin(alpha_bar_)];

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::vector<std::size_t> inbox(n, 0);  // broadcasts received per worker
  std::size_t decisions = 0;
  double claimed = 0.0;
  std::size_t messages = 0;

  std::function<void(core::worker_id)> on_inbox_complete;
  std::function<void(core::worker_id)> on_decision_arrival;

  on_inbox_complete = [&](core::worker_id i) {
    if (i == straggler) return;  // the straggler waits for decisions
    queue.schedule_in(options_.compute_delay, [&, i] {
      next_x[i] = decide_next_share(*costs[i], x_[i], l_t, alpha_t);
      ready_at[i] = queue.now();
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id) {
    if (++decisions < n - 1) return;
    // All decisions are in: sum in worker-list order (not arrival order)
    // so the remainder is bit-identical to the synchronous realizations
    // regardless of message interleaving.
    for (core::worker_id i = 0; i < n; ++i) {
      if (i != straggler) claimed += next_x[i];
    }
    // Straggler absorbs the remainder and tightens its local step size.
    next_x[straggler] = std::max(0.0, 1.0 - claimed);
    alpha_bar_[straggler] = core::next_step_size(
        alpha_bar_[straggler], n, next_x[straggler]);
    ready_at[straggler] = queue.now();
  };

  // Kick off: worker j finishes at l_j and serializes its N-1 broadcasts;
  // the k-th departs k*serialize later and arrives after msg_time.
  for (core::worker_id j = 0; j < n; ++j) {
    std::size_t k = 0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (i == j) continue;
      ++messages;
      const double arrival =
          locals_[j] + static_cast<double>(k++) * serialize + msg_time;
      queue.schedule(arrival, [&, i] {
        if (++inbox[i] == n - 1) on_inbox_complete(i);
      });
    }
  }
  result.events = queue.run_to_completion();

  x_ = std::move(next_x);
  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

// Deadline-synchronized fault-tolerant round: the shared dist/fd_round.h
// state machine over this engine's private reliable link, with the
// deadline timing model pricing each delivery. Allocation semantics are
// the synchronous engine's degraded mode by construction.
async_round_result async_fully_distributed::run_round_faulty(
    const cost::cost_view& costs, std::uint64_t round) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  // Locals are evaluated at the pre-retirement allocation — the same
  // feedback the synchronous harness computes at current() before
  // observe() — so sync-vs-async bit-identity covers churn rounds too.
  cost::evaluate_into(costs, x_, locals_);
  if (n == 1) {
    result.compute_duration = locals_[0];
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  net_->set_round(round);
  const net::reliable_stats before = rel_->stats();
  obs::tracer* tr = options_.protocol.tracer;
  const std::uint32_t lane = options_.protocol.trace_lane;
  obs::span round_span(tr, lane, round, "round", "fd");

  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double timeout = options_.retransmit_timeout < 0.0
                             ? 4.0 * msg_time
                             : options_.retransmit_timeout;
  fd_deadline_timing timing;
  timing.msg_time = msg_time;
  timing.serialize = static_cast<double>(options_.payload_bytes) /
                     options_.link.bytes_per_second;
  timing.timeout = timeout;
  timing.patience =
      static_cast<double>(options_.protocol.retry_budget + 1) * timeout +
      msg_time;
  timing.compute_delay = options_.compute_delay;
  timing.locals = locals_;
  timing.removed = &flags_.removed;

  fd_degraded_round<net::reliable_delivery, fd_deadline_timing> flow{
      n,
      costs,
      locals_,
      options_.protocol.faults,
      net::reliable_delivery{*rel_},
      timing,
      tr,
      lane,
      counters_.failover,
      report_,
      x_,
      alpha_bar_,
      scratch_,
      flags_};
  const degraded_outcome outcome = flow.run(round);

  x_.swap(scratch_.next_x);
  finish_degraded_round(outcome, rel_->stats(), tr, lane, "fd", round,
                        counters_, report_, mirrored_);
  DOLBIE_REQUIRE(on_simplex(x_),
                 "degraded async-FD round " << round
                                            << " left the allocation off "
                                               "the simplex");

  result.next_allocation = x_;
  result.messages = timing.messages;
  result.retransmits = rel_->stats().retransmits - before.retransmits;
  result.zero_step_holds = outcome.holds;
  result.straggler_failovers = outcome.failovers;
  result.aborted = outcome.aborted;
  result.degraded =
      outcome.holds > 0 || outcome.failovers > 0 || outcome.aborted;
  result.compute_duration = timing.compute_duration;
  result.round_duration = std::max(timing.clock, timing.compute_duration);
  result.protocol_duration = result.round_duration - result.compute_duration;
  round_span.arg("straggler",
                 static_cast<std::uint64_t>(outcome.straggler));
  round_span.arg("alpha_consensus", outcome.consensus_alpha);
  round_span.arg("messages", static_cast<std::uint64_t>(timing.messages));
  return result;
}

std::vector<std::uint8_t> async_fully_distributed::snapshot() const {
  snapshot_writer w;
  write_snapshot_header(w, snapshot_kind::async_fully_distributed, x_.size());
  w.u64(round_);
  for (const double v : x_) w.f64(v);
  for (const double v : alpha_bar_) w.f64(v);
  w.u8(faulty_ ? 1 : 0);
  if (faulty_) {
    for (const std::uint8_t v : flags_.removed) w.u8(v);
    snapshot_report(w, report_);
    snapshot_reliable_stats(w, mirrored_);
    net_->snapshot_to(w);
    rel_->snapshot_to(w);
  }
  return w.take();
}

void async_fully_distributed::restore(const std::vector<std::uint8_t>& bytes) {
  reset();
  try {
    snapshot_reader r(bytes);
    read_snapshot_header(r, snapshot_kind::async_fully_distributed,
                         x_.size());
    round_ = r.u64();
    for (double& v : x_) v = r.f64();
    for (double& v : alpha_bar_) v = r.f64();
    const std::uint8_t faulty = r.u8();
    DOLBIE_REQUIRE((faulty != 0) == faulty_,
                   "snapshot fault-path flag does not match this engine");
    if (faulty_) {
      for (std::uint8_t& v : flags_.removed) {
        v = r.u8();
        DOLBIE_REQUIRE(v <= 1, "snapshot membership flag is not 0/1");
      }
      restore_report(r, report_);
      restore_reliable_stats(r, mirrored_);
      net_->restore_from(r);
      rel_->restore_from(r);
    }
    r.finish();
  } catch (...) {
    reset();
    throw;
  }
}

}  // namespace dolbie::dist
