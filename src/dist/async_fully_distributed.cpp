#include "dist/async_fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/churn.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "sim/event_queue.h"

namespace dolbie::dist {

async_fully_distributed::async_fully_distributed(std::size_t n_workers,
                                                 async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  if (options_.protocol.initial_partition.empty()) {
    options_.protocol.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.protocol.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.protocol.initial_partition),
                 "initial partition must lie on the simplex");
  x_ = options_.protocol.initial_partition;
  faulty_ = options_.protocol.faults.enabled();
  reset();
}

void async_fully_distributed::reset() {
  x_ = options_.protocol.initial_partition;
  const double alpha1 = options_.protocol.initial_step >= 0.0
                            ? options_.protocol.initial_step
                            : core::initial_step_size(x_);
  alpha_bar_.assign(x_.size(), alpha1);
  round_ = 0;
  if (faulty_) {
    removed_.assign(x_.size(), 0);
    attempts_.assign(x_.size() * x_.size(), 0);
    report_ = {};
  }
}

std::size_t async_fully_distributed::attempts_to_deliver(std::size_t from,
                                                         std::size_t to) {
  const net::fault_plan& plan = options_.protocol.faults;
  const std::size_t idx = from * x_.size() + to;
  for (std::size_t k = 1; k <= options_.protocol.retry_budget + 1; ++k) {
    const std::uint64_t attempt = attempts_[idx]++;
    if (!plan.roll_drop(from, to, attempt)) return k;
  }
  return 0;
}

async_round_result async_fully_distributed::run_round(
    const cost::cost_view& costs) {
  const std::uint64_t round = round_++;
  if (!faulty_) return run_round_clean(costs);
  return run_round_faulty(costs, round);
}

async_round_result async_fully_distributed::run_round_clean(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize = static_cast<double>(options_.payload_bytes) /
                           options_.link.bytes_per_second;

  // Everyone identifies the same straggler from the same data; we can
  // precompute it (lowest-index tie-break) to keep the handlers simple —
  // each worker would reach the identical conclusion from its inbox.
  const core::worker_id straggler = argmax(locals_);
  const double l_t = locals_[straggler];
  const double alpha_t = alpha_bar_[argmin(alpha_bar_)];

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::vector<std::size_t> inbox(n, 0);  // broadcasts received per worker
  std::size_t decisions = 0;
  double claimed = 0.0;
  std::size_t messages = 0;

  std::function<void(core::worker_id)> on_inbox_complete;
  std::function<void(core::worker_id)> on_decision_arrival;

  on_inbox_complete = [&](core::worker_id i) {
    if (i == straggler) return;  // the straggler waits for decisions
    queue.schedule_in(options_.compute_delay, [&, i] {
      const double xp =
          core::max_acceptable_workload(*costs[i], x_[i], l_t);
      next_x[i] = x_[i] + alpha_t * (xp - x_[i]);
      ready_at[i] = queue.now();
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id) {
    if (++decisions < n - 1) return;
    // All decisions are in: sum in worker-list order (not arrival order)
    // so the remainder is bit-identical to the synchronous realizations
    // regardless of message interleaving.
    for (core::worker_id i = 0; i < n; ++i) {
      if (i != straggler) claimed += next_x[i];
    }
    // Straggler absorbs the remainder and tightens its local step size.
    next_x[straggler] = std::max(0.0, 1.0 - claimed);
    alpha_bar_[straggler] = core::next_step_size(
        alpha_bar_[straggler], n, next_x[straggler]);
    ready_at[straggler] = queue.now();
  };

  // Kick off: worker j finishes at l_j and serializes its N-1 broadcasts;
  // the k-th departs k*serialize later and arrives after msg_time.
  for (core::worker_id j = 0; j < n; ++j) {
    std::size_t k = 0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (i == j) continue;
      ++messages;
      const double arrival =
          locals_[j] + static_cast<double>(k++) * serialize + msg_time;
      queue.schedule(arrival, [&, i] {
        if (++inbox[i] == n - 1) on_inbox_complete(i);
      });
    }
  }
  result.events = queue.run_to_completion();

  x_ = std::move(next_x);
  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

// Deadline-synchronized fault-tolerant round; Algorithm-2 semantics match
// the synchronous engine's degraded mode (see fully_distributed.cpp).
async_round_result async_fully_distributed::run_round_faulty(
    const cost::cost_view& costs, std::uint64_t round) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");
  const net::fault_plan& plan = options_.protocol.faults;
  const std::size_t budget = options_.protocol.retry_budget;

  async_round_result result;
  std::size_t losses = 0;  // deliveries abandoned past the budget

  // Permanent crashes retire before the round starts; every survivor
  // re-caps its local step against the shrunk worker set.
  for (core::worker_id i = 0; i < n; ++i) {
    if (removed_[i] != 0 || !plan.permanently_down(i, round)) continue;
    std::size_t heirs = 0;
    for (core::worker_id j = 0; j < n; ++j) {
      if (j != i && removed_[j] == 0) ++heirs;
    }
    if (heirs == 0) continue;
    removed_[i] = 1;
    std::vector<std::uint8_t> live_mask(n, 0);
    for (core::worker_id j = 0; j < n; ++j) {
      live_mask[j] = removed_[j] ? 0 : 1;
    }
    core::release_share_in_place(x_, i, live_mask);
    double min_share = 1.0;
    for (core::worker_id j = 0; j < n; ++j) {
      if (removed_[j] == 0) min_share = std::min(min_share, x_[j]);
    }
    const double cap = core::feasible_step_cap(heirs, min_share);
    for (core::worker_id j = 0; j < n; ++j) {
      if (removed_[j] == 0) alpha_bar_[j] = std::min(alpha_bar_[j], cap);
    }
    ++report_.removed_workers;
  }

  cost::evaluate_into(costs, x_, locals_);
  for (core::worker_id i = 0; i < n; ++i) {
    if (removed_[i] == 0) {
      result.compute_duration = std::max(result.compute_duration, locals_[i]);
    }
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize = static_cast<double>(options_.payload_bytes) /
                           options_.link.bytes_per_second;
  const double timeout = options_.retransmit_timeout < 0.0
                             ? 4.0 * msg_time
                             : options_.retransmit_timeout;
  const double patience =
      static_cast<double>(budget + 1) * timeout + msg_time;

  std::vector<std::uint8_t> live(n, 0);
  std::size_t holds = 0;
  for (core::worker_id i = 0; i < n; ++i) {
    live[i] = (removed_[i] == 0 && !plan.down(i, round)) ? 1 : 0;
    if (live[i] == 0 && removed_[i] == 0) ++holds;
  }
  std::size_t failovers = 0;
  bool aborted = false;
  core::worker_id s_final = 0;
  std::vector<double> next_x = x_;
  double clock = 0.0;

  // --- Phase 1: all-to-all broadcast among live workers; H_t = senders
  //     that reached every polling receiver within the budget. ---
  std::vector<std::uint8_t> delivered(n * n, 0);
  double phase1_end = result.compute_duration;
  for (net::node_id i = 0; i < n; ++i) {
    if (live[i] == 0) continue;
    std::size_t position = 0;
    for (net::node_id j = 0; j < n; ++j) {
      if (j == i || live[j] == 0) continue;
      const double depart =
          locals_[i] + static_cast<double>(position++) * serialize;
      ++result.messages;
      const std::size_t k = attempts_to_deliver(i, j);
      const bool polling = !plan.crashed_during(j, round);
      if (k > 0) {
        result.retransmits += k - 1;
        if (polling) {
          delivered[j * n + i] = 1;
          phase1_end = std::max(
              phase1_end,
              depart + static_cast<double>(k - 1) * timeout + msg_time);
        }
      } else {
        result.retransmits += budget;
        ++losses;
        if (polling) phase1_end = std::max(phase1_end, depart + patience);
      }
    }
  }
  clock = phase1_end;

  std::vector<std::uint8_t> in_h(n, 0);
  std::size_t h_count = 0;
  for (net::node_id i = 0; i < n; ++i) {
    in_h[i] = live[i];
    if (live[i] == 0) continue;
    for (net::node_id j = 0; j < n; ++j) {
      if (j == i || live[j] == 0 || plan.crashed_during(j, round)) continue;
      if (delivered[j * n + i] == 0) {
        in_h[i] = 0;
        break;
      }
    }
    if (in_h[i] != 0) ++h_count;
  }
  for (core::worker_id i = 0; i < n; ++i) {
    if (live[i] == 0) continue;
    if (plan.crashed_during(i, round)) {
      ++holds;  // broadcast, then stopped computing
    } else if (in_h[i] == 0) {
      ++holds;  // excluded from the round: broadcast lost past budget
    }
  }

  if (h_count == 0) {
    aborted = true;
  } else {
    // --- Election and min consensus over H_t. ---
    core::worker_id s = n;
    double alpha_t = 1.0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (in_h[i] == 0) continue;
      if (s == n || locals_[i] > locals_[s]) s = i;
      alpha_t = std::min(alpha_t, alpha_bar_[i]);
    }
    s_final = s;

    // A mid-crashed straggler cannot absorb: re-elect before the decision
    // uploads (the re-send cost shows up as one extra deadline below).
    if (plan.crashed_during(s, round)) {
      core::worker_id s2 = n;
      for (core::worker_id i = 0; i < n; ++i) {
        if (in_h[i] == 0 || i == s || plan.crashed_during(i, round)) {
          continue;
        }
        if (s2 == n || locals_[i] > locals_[s2]) s2 = i;
      }
      if (s2 == n) {
        aborted = true;
      } else {
        ++failovers;
        ++report_.straggler_failovers;
        ++result.straggler_failovers;
        clock += patience;  // movers time out on the dead straggler first
        s_final = s2;
      }
    }

    if (!aborted) {
      // --- Phase 2: movers update and upload {x_new, x_old}; straggler
      //     absorbs the delta sum. ---
      double delta = 0.0;
      double phase2_end = clock;
      for (net::node_id i = 0; i < n; ++i) {
        if (in_h[i] == 0 || i == s || i == s_final ||
            plan.crashed_during(i, round)) {
          continue;
        }
        const double xp =
            core::max_acceptable_workload(*costs[i], x_[i], locals_[s]);
        const double tentative = x_[i] + alpha_t * (xp - x_[i]);
        ++result.messages;
        const std::size_t k = attempts_to_deliver(i, s_final);
        const double sent_at = clock + options_.compute_delay;
        if (k > 0) {
          result.retransmits += k - 1;
          next_x[i] = tentative;
          delta += tentative - x_[i];
          phase2_end = std::max(
              phase2_end,
              sent_at + static_cast<double>(k - 1) * timeout + msg_time);
        } else {
          result.retransmits += budget;
          ++losses;
          ++holds;  // decision lost past budget: the mover rolls back
          phase2_end = std::max(phase2_end, sent_at + patience);
        }
      }
      clock = phase2_end;

      const double raw = x_[s_final] - delta;
      next_x[s_final] = std::max(0.0, raw);
      if (raw < 0.0) {
        double total = 0.0;
        for (double v : next_x) total += v;
        for (double& v : next_x) v /= total;
      }
      alpha_bar_[s_final] = core::next_step_size(alpha_bar_[s_final], n,
                                                 next_x[s_final]);
    }
  }

  if (aborted) {
    next_x = x_;  // every worker holds
    ++report_.aborted_rounds;
  }
  x_ = std::move(next_x);
  DOLBIE_REQUIRE(on_simplex(x_),
                 "degraded async-FD round " << round
                                            << " left the allocation off "
                                               "the simplex");

  result.zero_step_holds = holds;
  result.aborted = aborted;
  result.degraded = holds > 0 || failovers > 0 || aborted;
  if (result.degraded) ++report_.degraded_rounds;
  report_.zero_step_holds += holds;
  report_.retransmits += result.retransmits;
  report_.timeouts += result.retransmits + losses;

  result.next_allocation = x_;
  result.round_duration = std::max(clock, result.compute_duration);
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

}  // namespace dolbie::dist
