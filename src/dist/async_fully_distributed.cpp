#include "dist/async_fully_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/simplex.h"
#include "core/max_acceptable.h"
#include "core/step_size.h"
#include "sim/event_queue.h"

namespace dolbie::dist {

async_fully_distributed::async_fully_distributed(std::size_t n_workers,
                                                 async_options options)
    : options_(std::move(options)) {
  DOLBIE_REQUIRE(n_workers >= 1, "need at least one worker");
  DOLBIE_REQUIRE(options_.compute_delay >= 0.0,
                 "compute delay must be >= 0");
  if (options_.protocol.initial_partition.empty()) {
    options_.protocol.initial_partition = uniform_point(n_workers);
  }
  DOLBIE_REQUIRE(options_.protocol.initial_partition.size() == n_workers,
                 "initial partition size mismatch");
  DOLBIE_REQUIRE(on_simplex(options_.protocol.initial_partition),
                 "initial partition must lie on the simplex");
  x_ = options_.protocol.initial_partition;
  reset();
}

void async_fully_distributed::reset() {
  x_ = options_.protocol.initial_partition;
  const double alpha1 = options_.protocol.initial_step >= 0.0
                            ? options_.protocol.initial_step
                            : core::initial_step_size(x_);
  alpha_bar_.assign(x_.size(), alpha1);
}

async_round_result async_fully_distributed::run_round(
    const cost::cost_view& costs) {
  const std::size_t n = x_.size();
  DOLBIE_REQUIRE(costs.size() == n, "cost/worker count mismatch");

  async_round_result result;
  cost::evaluate_into(costs, x_, locals_);
  for (double l : locals_) {
    result.compute_duration = std::max(result.compute_duration, l);
  }
  if (n == 1) {
    result.next_allocation = x_;
    result.round_duration = result.compute_duration;
    return result;
  }

  sim::event_queue queue;
  const double msg_time = options_.link.message_time(options_.payload_bytes);
  const double serialize = static_cast<double>(options_.payload_bytes) /
                           options_.link.bytes_per_second;

  // Everyone identifies the same straggler from the same data; we can
  // precompute it (lowest-index tie-break) to keep the handlers simple —
  // each worker would reach the identical conclusion from its inbox.
  const core::worker_id straggler = argmax(locals_);
  const double l_t = locals_[straggler];
  const double alpha_t = alpha_bar_[argmin(alpha_bar_)];

  std::vector<double> next_x = x_;
  std::vector<double> ready_at(n, 0.0);
  std::vector<std::size_t> inbox(n, 0);  // broadcasts received per worker
  std::size_t decisions = 0;
  double claimed = 0.0;
  std::size_t messages = 0;

  std::function<void(core::worker_id)> on_inbox_complete;
  std::function<void(core::worker_id)> on_decision_arrival;

  on_inbox_complete = [&](core::worker_id i) {
    if (i == straggler) return;  // the straggler waits for decisions
    queue.schedule_in(options_.compute_delay, [&, i] {
      const double xp =
          core::max_acceptable_workload(*costs[i], x_[i], l_t);
      next_x[i] = x_[i] + alpha_t * (xp - x_[i]);
      ready_at[i] = queue.now();
      ++messages;
      queue.schedule_in(msg_time, [&, i] { on_decision_arrival(i); });
    });
  };

  on_decision_arrival = [&](core::worker_id) {
    if (++decisions < n - 1) return;
    // All decisions are in: sum in worker-list order (not arrival order)
    // so the remainder is bit-identical to the synchronous realizations
    // regardless of message interleaving.
    for (core::worker_id i = 0; i < n; ++i) {
      if (i != straggler) claimed += next_x[i];
    }
    // Straggler absorbs the remainder and tightens its local step size.
    next_x[straggler] = std::max(0.0, 1.0 - claimed);
    alpha_bar_[straggler] = core::next_step_size(
        alpha_bar_[straggler], n, next_x[straggler]);
    ready_at[straggler] = queue.now();
  };

  // Kick off: worker j finishes at l_j and serializes its N-1 broadcasts;
  // the k-th departs k*serialize later and arrives after msg_time.
  for (core::worker_id j = 0; j < n; ++j) {
    std::size_t k = 0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (i == j) continue;
      ++messages;
      const double arrival =
          locals_[j] + static_cast<double>(k++) * serialize + msg_time;
      queue.schedule(arrival, [&, i] {
        if (++inbox[i] == n - 1) on_inbox_complete(i);
      });
    }
  }
  result.events = queue.run_to_completion();

  x_ = std::move(next_x);
  result.next_allocation = x_;
  result.messages = messages;
  for (double t : ready_at) {
    result.round_duration = std::max(result.round_duration, t);
  }
  result.protocol_duration = result.round_duration - result.compute_duration;
  return result;
}

}  // namespace dolbie::dist
