// Fully-distributed (Alg. 2) round state machine of the unified protocol
// core — the peer-to-peer sibling of dist/mw_round.h, same seams: a
// delivery policy (net/transport.h) and a timing model. The synchronous
// engine (dist/fully_distributed.h) instantiates it with `fd_null_timing`
// (bit-identical to the pre-refactor path); the asynchronous engine
// (dist/async_fully_distributed.h) supplies deadline arithmetic priced
// from `Delivery::last_receive_attempts()`.
//
// The round's participant set H_t is the set of live workers whose
// broadcast reached every polling receiver within the retry budget;
// everyone agrees on H_t (a membership-oracle shortcut — simulating the
// real agreement subprotocol round-trip would add wire phases without
// changing the allocation arithmetic). Election and the consensus step
// minimize over H_t only: min over a subset >= min over all workers, so
// the consensus alpha stays inside every Eq. 7 cap and feasibility is
// untouched. Workers outside H_t hold x_{i,t}.
//
// Degraded absorption: the straggler cannot compute 1 - sum(claimed)
// because holders never upload their shares (the privacy property). On
// this path decisions carry {x_{i,t+1}, x_{i,t}} and the straggler
// absorbs via x_s - sum(x_new - x_old): total mass is conserved without
// the straggler learning any holder's share.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/step_size.h"
#include "core/types.h"
#include "cost/batch.h"
#include "cost/cost_function.h"
#include "dist/mw_round.h"  // decide_next_share
#include "dist/protocol.h"
#include "net/fault_plan.h"
#include "net/message.h"
#include "obs/trace.h"

namespace dolbie::dist {

/// Timing model that compiles to nothing — the synchronous engine's
/// instantiation, which must stay bit-identical to the pre-refactor path.
struct fd_null_timing {
  void round_begin() {}
  void on_send() {}
  void broadcast_sent(core::worker_id, core::worker_id) {}
  void broadcast_delivered(core::worker_id, core::worker_id, std::size_t) {}
  void broadcast_lost(core::worker_id, core::worker_id) {}
  void phase1_done() {}
  void decision_sent(core::worker_id) {}
  void failover() {}
  void decision_delivered(core::worker_id, std::size_t) {}
  void decision_lost(core::worker_id) {}
  void phase2_done() {}
};

/// What stage_broadcast learned: the participant count |H_t|, the max
/// cost over H_t (the shard's l_t contribution) and the min local step
/// bound over H_t (the shard's alpha contribution) — both computed with
/// the election's exact comparison chain.
struct fd_stage_result {
  std::size_t participants = 0;
  double max_cost = 0.0;
  double min_alpha = 1.0;
};

/// One fault-tolerant Alg. 2 round. Reads the played allocation `x`,
/// builds x_{t+1} in `scratch.next_x` (the caller swaps after the round
/// commits); `alpha_bar` is each worker's local step bound, tightened at
/// the straggler and re-capped on churn.
///
/// Split into two stages around the consensus values, mirroring
/// mw_round.h: `stage_broadcast` runs membership + the all-pairs phase 1
/// and H_t resolution; `stage_commit(l_t, alpha_t)` elects, moves and
/// absorbs against supplied consensus values. `run()` composes them with
/// the local max/min — byte-for-byte the flat round.
template <class Delivery, class Timing>
struct fd_degraded_round {
  std::size_t n;
  const cost::cost_view& costs;
  std::span<const double> locals;
  const net::fault_plan& plan;
  Delivery wire;
  Timing& timing;
  obs::tracer* tr;
  std::uint32_t lane;
  obs::counter* failover_counter;
  fault_report& report;
  std::vector<double>& x;          ///< x_t; mutated only by retirement
  std::vector<double>& alpha_bar;  ///< per-worker local step bounds
  round_scratch& scratch;
  member_flags& flags;
  /// Total workload this worker group conserves (renormalization target);
  /// 1.0 for the flat protocol, a shard's slice under the hierarchy.
  double target = 1.0;
  /// Worker count for the Eq. 7 tightening; 0 = use `n` (see mw_round.h).
  std::size_t cap_workers = 0;
  /// Optional SoA evaluator bound over `costs`; when set, the movers'
  /// Eq. 4 solves run as one batched pass (bit-identical kernels, see
  /// mw_round.h / cost/batch.h). Null keeps the scalar path verbatim.
  const cost::batch_evaluator* batch = nullptr;

  void retire(core::worker_id id, std::uint64_t round) {
    retirement r;
    if (!retire_worker_share(x, flags, id, r, target)) return;
    // Every survivor re-caps its local step against the shrunk worker
    // set; the min consensus then propagates the tightest cap.
    for (core::worker_id j = 0; j < n; ++j) {
      if (flags.removed[j] == 0) {
        alpha_bar[j] = std::min(alpha_bar[j], r.cap);
      }
    }
    ++report.removed_workers;
    // Reclaim the retired worker's link buffers (accounting-neutral).
    wire.retire_node(id);
    if (tr != nullptr) {
      tr->instant(lane, round, "worker_removed", "fd",
                  {obs::arg_int("worker", id),
                   obs::arg_int("survivors", r.heirs),
                   obs::arg_num("alpha_cap", r.cap)});
    }
  }

  /// Stage 1 of the split round: membership, the all-pairs broadcast and
  /// H_t resolution. On an empty H_t the abort is recorded in `out` and
  /// next_x already holds x.
  fd_stage_result stage_broadcast(std::uint64_t round, degraded_outcome& out) {
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.removed[i] == 0 && plan.permanently_down(i, round)) {
        retire(i, round);
      }
    }
    timing.round_begin();

    for (core::worker_id i = 0; i < n; ++i) {
      flags.live[i] = (flags.removed[i] == 0 && !plan.down(i, round)) ? 1 : 0;
      if (flags.live[i] == 0 && flags.removed[i] == 0) {
        ++out.holds;  // temporarily down
      }
    }

    wire.begin_round(round);
    scratch.next_x = x;

    // --- Phase 1: live workers (including mid-round crashers, whose
    //     transport completes) broadcast (l_i, alpha-bar_i). ---
    {
      obs::span sp(tr, lane, round, "phase1.broadcast", "fd");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.live[i] == 0) continue;
        for (net::node_id j = 0; j < n; ++j) {
          if (j == i || flags.live[j] == 0) continue;
          wire.send({i, j, net::message_kind::cost_and_step,
                     {locals[i], alpha_bar[i]}});
          timing.on_send();
          timing.broadcast_sent(i, j);
        }
      }
    }

    // Delivery resolution: every polling receiver (live, still computing)
    // drains its inbox; a sender enters H_t only if all of them heard it.
    scratch.inbox_l.assign(n, 0.0);
    scratch.inbox_a.assign(n, 0.0);
    std::fill(flags.delivered.begin(), flags.delivered.end(), 0);
    for (net::node_id j = 0; j < n; ++j) {
      if (flags.live[j] == 0 || plan.crashed_during(j, round)) continue;
      for (net::node_id i = 0; i < n; ++i) {
        if (i == j || flags.live[i] == 0) continue;
        auto m = wire.receive(j, i);
        if (m.has_value()) {
          flags.delivered[j * n + i] = 1;
          scratch.inbox_l[i] = m->payload[0];  // consistent across receivers
          scratch.inbox_a[i] = m->payload[1];
          timing.broadcast_delivered(j, i, wire.last_receive_attempts());
        } else {
          timing.broadcast_lost(j, i);
        }
      }
    }
    std::size_t h_count = 0;
    for (net::node_id i = 0; i < n; ++i) {
      flags.in_h[i] = flags.live[i];
      if (flags.live[i] == 0) continue;
      for (net::node_id j = 0; j < n; ++j) {
        if (j == i || flags.live[j] == 0 || plan.crashed_during(j, round)) {
          continue;
        }
        if (flags.delivered[j * n + i] == 0) {
          flags.in_h[i] = 0;
          break;
        }
      }
      if (flags.in_h[i] != 0) {
        ++h_count;
        scratch.inbox_l[i] = locals[i];
        scratch.inbox_a[i] = alpha_bar[i];
      }
    }
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.live[i] != 0 && flags.in_h[i] == 0 &&
          !plan.crashed_during(i, round)) {
        ++out.holds;  // excluded from the round: broadcast lost past budget
      }
      if (flags.live[i] != 0 && plan.crashed_during(i, round)) {
        ++out.holds;  // sent its broadcast, then stopped computing
      }
    }
    timing.phase1_done();

    fd_stage_result res;
    res.participants = h_count;
    if (h_count == 0) {
      out.aborted = true;
      scratch.next_x = x;  // every worker holds
      return res;
    }
    // Max cost / min step over H_t: the exact scan the election runs, so
    // both values are bit-identical to the elected straggler's cost and
    // the flat consensus step.
    core::worker_id top = n;
    double min_a = 1.0;
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.in_h[i] == 0) continue;
      if (top == n || scratch.inbox_l[i] > scratch.inbox_l[top]) top = i;
      min_a = std::min(min_a, scratch.inbox_a[i]);
    }
    res.max_cost = scratch.inbox_l[top];
    res.min_alpha = min_a;
    return res;
  }

  /// Stage 2: election, the movers' Eq. 5 steps and the straggler's
  /// delta-sum absorption, all against the supplied consensus pair (the
  /// shard's own max/min on the flat path, the tree consensus under the
  /// hierarchical layer).
  void stage_commit(std::uint64_t round, double l_t, double alpha_t,
                    degraded_outcome& out) {
    // --- Election over H_t: straggler by max cost (lowest-index
    //     tie-breaking, as in the clean path). ---
    core::worker_id s = n;
    for (core::worker_id i = 0; i < n; ++i) {
      if (flags.in_h[i] == 0) continue;
      if (s == n || scratch.inbox_l[i] > scratch.inbox_l[s]) s = i;
    }
    out.straggler = s;
    out.consensus_alpha = alpha_t;
    if (tr != nullptr) {
      tr->instant(lane, round, "straggler_elected", "fd",
                  {obs::arg_int("worker", s),
                   obs::arg_num("cost", scratch.inbox_l[s]),
                   obs::arg_num("alpha_consensus", alpha_t)});
    }

    // --- Phase 2: movers (in H_t, still computing, not the straggler)
    //     update locally and upload {x_new, x_old} to the straggler. ---
    {
      obs::span sp(tr, lane, round, "phase2.decision_uploads", "fd");
      if (batch != nullptr) {
        scratch.xp.resize(n);
        batch->max_acceptable(x, l_t, s, scratch.xp);
      }
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.in_h[i] == 0 || i == s || plan.crashed_during(i, round)) {
          continue;
        }
        scratch.tentative[i] =
            batch == nullptr
                ? decide_next_share(*costs[i], x[i], l_t, alpha_t)
                : x[i] + alpha_t * (scratch.xp[i] - x[i]);
        wire.send({i, s, net::message_kind::decision,
                   {scratch.tentative[i], x[i]}});
        timing.on_send();
        timing.decision_sent(i);
      }
    }

    // A straggler that crashed mid-round cannot absorb: re-elect the
    // next-highest cost in H_t that is still computing, and movers
    // re-upload there. The new straggler discards its own tentative move
    // (its share is derived, not decided).
    core::worker_id s_final = s;
    if (plan.crashed_during(s, round)) {
      core::worker_id s2 = n;
      for (core::worker_id i = 0; i < n; ++i) {
        if (flags.in_h[i] == 0 || i == s || plan.crashed_during(i, round)) {
          continue;
        }
        if (s2 == n || scratch.inbox_l[i] > scratch.inbox_l[s2]) s2 = i;
      }
      if (s2 == n) {
        out.aborted = true;
        scratch.next_x = x;  // every worker holds
        return;
      }
      ++out.failovers;
      ++report.straggler_failovers;
      if (failover_counter != nullptr) failover_counter->add(1);
      if (tr != nullptr) {
        tr->instant(lane, round, "straggler_failover", "fd",
                    {obs::arg_int("from", s), obs::arg_int("to", s2),
                     obs::arg_num("cost", scratch.inbox_l[s2])});
      }
      timing.failover();
      obs::span sp(tr, lane, round, "phase2.failover_resend", "fd");
      for (net::node_id i = 0; i < n; ++i) {
        if (flags.in_h[i] == 0 || i == s || i == s2 ||
            plan.crashed_during(i, round)) {
          continue;
        }
        wire.send({i, s2, net::message_kind::decision,
                   {scratch.tentative[i], x[i]}});
        timing.on_send();
        timing.decision_sent(i);
      }
      s_final = s2;
      out.straggler = s2;
    }

    // --- Post-phase: the straggler absorbs via the delta sum. A mover
    //     whose decision never arrived rolls back to x_{i,t}. ---
    double delta = 0.0;
    for (net::node_id i = 0; i < n; ++i) {
      if (flags.in_h[i] == 0 || i == s || i == s_final ||
          plan.crashed_during(i, round)) {
        continue;
      }
      auto m = wire.receive(s_final, i);
      if (m.has_value()) {
        scratch.next_x[i] = scratch.tentative[i];
        delta += m->payload[0] - m->payload[1];
        timing.decision_delivered(i, wire.last_receive_attempts());
      } else {
        ++out.holds;  // decision lost past budget: the mover rolls back
        timing.decision_lost(i);
      }
    }
    timing.phase2_done();
    const double raw = x[s_final] - delta;
    scratch.next_x[s_final] = std::max(0.0, raw);
    if (raw < 0.0) {
      // alpha ran ahead of the binding Eq. 7 cap (its source went
      // unheard this round): rescale onto the group's mass. (scale ==
      // total exactly when target == 1.0, so the flat division is
      // untouched bit for bit.)
      double total = 0.0;
      for (double v : scratch.next_x) total += v;
      const double scale = total / target;
      for (double& v : scratch.next_x) v /= scale;
      if (tr != nullptr) {
        tr->instant(lane, round, "renormalized", "fd",
                    {obs::arg_num("total", total)});
      }
    }
    const double alpha_before = alpha_bar[s_final];
    const std::size_t ncap = cap_workers == 0 ? n : cap_workers;
    alpha_bar[s_final] =
        core::next_step_size(alpha_bar[s_final], ncap,
                             scratch.next_x[s_final]);
    if (tr != nullptr && alpha_bar[s_final] != alpha_before) {
      tr->instant(lane, round, "alpha_tightened", "fd",
                  {obs::arg_int("worker", s_final),
                   obs::arg_num("alpha_bar", alpha_bar[s_final])});
    }
  }

  degraded_outcome run(std::uint64_t round) {
    degraded_outcome out;
    const fd_stage_result up = stage_broadcast(round, out);
    if (out.aborted) return out;
    stage_commit(round, up.max_cost, up.min_alpha, out);
    return out;
  }
};

}  // namespace dolbie::dist
