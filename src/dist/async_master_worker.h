// Event-driven (asynchronous) execution of Algorithm 1.
//
// The phase-synchronous realization in master_worker.h verifies *what* is
// exchanged; this one verifies *when*: each worker finishes its round-t
// computation at its own local-cost time, messages travel with link
// delays, the master reacts to arrivals (not phases), and the round ends
// when the last worker holds its round-(t+1) workload. The produced
// allocation is bit-identical to the sequential reference — asynchrony
// changes timing, never the iterate — and the reported durations decompose
// the round into compute (the straggler barrier) and protocol overhead.
//
// Timeline of one round:
//
//   t = 0                each worker starts computing its share
//   t = l_i              worker i finishes, uploads local_cost(l_i)
//   master: on the last upload, serializes N round_info downloads
//   worker i: on round_info, computes x'_i and x_{i,t+1} (taking
//             compute_delay seconds), then uploads decision (non-straggler)
//             or waits for its assignment (straggler)
//   master: on the last decision, sends the straggler its assignment and
//           tightens alpha by Eq. (7)
//   round ends at max_i (time worker i holds x_{i,t+1})
//
// Fault tolerance: with `protocol.faults` enabled the engine runs the
// unified protocol core's dist/mw_round.h state machine — the exact same
// transitions as the synchronous engine's degraded mode, over an internal
// net::network + net::reliable_link pair — instantiated with a
// deadline-arithmetic timing model that prices every delivery in virtual
// time from the number of transmissions it took. Because the wire layer
// and the transitions are shared (not re-derived), the degraded iterates
// are bit-identical to the synchronous engine under the same fault plan;
// only the clock differs. The clean path is untouched (bit-identical
// timing and allocations).
#pragma once

#include <memory>

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::dist {

struct async_options {
  protocol_options protocol;
  net::link_delay_model link;
  /// Local decision-computation time per worker (Eq. 4 inverse + update).
  double compute_delay = 2e-6;
  /// Encoded bytes per protocol message (net/codec: 20 + 8 * scalars; the
  /// widest protocol payload is 2 scalars once the reliability header is
  /// included).
  std::size_t payload_bytes = 36;
  /// Retransmission timer for the fault-tolerant path (seconds). Negative
  /// selects 4x the one-message link time. Unused when
  /// protocol.faults is disabled.
  double retransmit_timeout = -1.0;
};

/// Result of one asynchronously simulated round.
struct async_round_result {
  core::allocation next_allocation;  ///< x_{t+1}, all workers
  double round_duration = 0.0;       ///< start -> last worker ready
  double compute_duration = 0.0;     ///< the straggler barrier max_i l_i
  double protocol_duration = 0.0;    ///< round_duration - compute_duration
  std::size_t events = 0;            ///< events executed by the simulator
  std::size_t messages = 0;          ///< protocol messages exchanged
  // Fault-path accounting (all zero on the clean path).
  std::size_t retransmits = 0;       ///< retransmissions this round
  std::size_t zero_step_holds = 0;   ///< workers that held x_{i,t}
  std::size_t straggler_failovers = 0;
  bool degraded = false;             ///< any hold, failover or abort
  bool aborted = false;              ///< no progress was possible
};

/// Asynchronous Algorithm-1 engine. Stateful across rounds (x_t, alpha_t),
/// mirroring core::dolbie_policy with the worst-case Eq. (7) schedule.
class async_master_worker {
 public:
  async_master_worker(std::size_t n_workers, async_options options = {});

  std::size_t workers() const { return x_.size(); }
  const core::allocation& allocation() const { return x_; }
  double step_size() const { return alpha_; }

  /// Simulate one full round under the given revealed cost functions.
  async_round_result run_round(const cost::cost_view& costs);

  /// Cumulative fault/degradation accounting (all zero on the clean path).
  /// Mirrored into protocol.metrics (when attached) as the same
  /// dist.*/net.* counters the synchronous engines publish.
  const fault_report& faults() const { return report_; }

  void reset();

  /// Serialize the complete cross-round state (iterate, step size, round
  /// index, membership, channels, reliable-link sequencing, fault-roll
  /// cursors) into versioned snapshot bytes; restore rebuilds it so the
  /// continuation is bit-identical to the uninterrupted run. Restore
  /// throws invariant_error on corrupt or mismatched bytes, leaving the
  /// engine reset.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

 private:
  async_round_result run_round_clean(const cost::cost_view& costs);
  async_round_result run_round_faulty(const cost::cost_view& costs,
                                      std::uint64_t round);

  async_options options_;
  core::allocation x_;
  double alpha_ = 0.0;
  // Round scratch (the phase-0 local costs), reused across run_round calls.
  std::vector<double> locals_;

  // Fault-tolerant path (engaged only when options_.protocol.faults is
  // enabled; the clean path never touches any of this). The engine owns a
  // private network + reliable link so the shared round state machine
  // consumes the identical fault-roll stream as the synchronous engine.
  bool faulty_ = false;
  std::uint64_t round_ = 0;
  std::unique_ptr<net::network> net_;
  std::unique_ptr<net::reliable_link> rel_;
  round_scratch scratch_;
  member_flags flags_;
  engine_counters counters_;
  fault_report report_;
  net::reliable_stats mirrored_;
};

}  // namespace dolbie::dist
