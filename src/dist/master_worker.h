// DOLBIE, master-worker realization (Algorithm 1) as communicating state
// machines over the simulated network.
//
// The master occupies node id N; workers are nodes 0..N-1. Per round:
//
//   phase 1  workers send local_cost(l_i) to the master           N msgs
//   phase 2  master computes l_t, s_t; sends round_info to all    N msgs
//   phase 3  non-stragglers compute x' and x_{t+1} locally and
//            send decision(x_{i,t+1}) to the master             N-1 msgs
//   phase 4  master sets x_s = 1 - sum, sends assignment to s_t;  1 msg
//            updates alpha_{t+1} by Eq. (7)
//
// Total 3N messages per round — the O(N) of Section IV-C. Worker i's logic
// touches only its own cost function, its own x_i and its inbox; the
// allocation visible through current() is assembled by the harness, which
// plays the role of the physical work dispatcher.
//
// The produced iterates are bit-identical to core::dolbie_policy (asserted
// by tests/dist_equivalence_test).
//
// Fault tolerance: when `protocol_options::faults` is enabled the round is
// one instantiation of the unified protocol core's dist/mw_round.h state
// machine (shared with the asynchronous engine) over net::reliable_link —
// a phase message missing past the retry budget degrades the round instead
// of failing it, a crashed or unreachable straggler is re-elected
// deterministically, and permanent crashes retire the worker through the
// shared churn math of core/churn.h. See DESIGN.md §8-9.
#pragma once

#include <memory>

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::dist {

class master_worker_policy final : public core::online_policy {
 public:
  master_worker_policy(std::size_t n_workers, protocol_options options = {});

  std::string_view name() const override { return "DOLBIE-MW"; }
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  /// Step size the master will apply to the next round.
  double master_step_size() const { return alpha_; }

  /// Traffic of the most recent round (for the comm-complexity bench).
  const net::traffic_totals& last_round_traffic() const {
    return last_traffic_;
  }

  /// Cumulative fault/degradation accounting (all zero on the clean path).
  const fault_report& faults() const { return fault_report_; }

  /// The underlying transport, exposed so fault-injection tests can
  /// schedule deterministic drops (network::inject_drop) on specific
  /// links. Production callers have no business poking it.
  net::network& transport() { return net_; }

  /// Serialize the complete cross-round state (iterate, step size, round
  /// index, membership, channels, reliable-link sequencing, fault-roll
  /// cursors) into versioned snapshot bytes; restore rebuilds it so the
  /// continuation is bit-identical to the uninterrupted run. Restore
  /// throws invariant_error on corrupt or mismatched bytes, leaving the
  /// engine reset.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& bytes);

 private:
  net::node_id master_id() const { return n_; }
  void observe_clean(const core::round_feedback& feedback,
                     std::uint64_t round);
  void observe_faulty(const core::round_feedback& feedback,
                      std::uint64_t round);
  void finish_round(std::uint64_t round, const degraded_outcome& outcome);

  std::size_t n_;
  protocol_options options_;
  net::network net_;

  // Worker-local state: each worker only ever reads/writes its own entry.
  std::vector<double> worker_x_;

  // Master-local state.
  double alpha_ = 0.0;

  // Harness-side assembled view of the allocation.
  core::allocation assembled_;
  net::traffic_totals last_traffic_;

  // Round scratch shared with the protocol core (dist/protocol.h);
  // scratch_.inbox_l doubles as the clean path's phase-1 master inbox.
  round_scratch scratch_;

  // Fault-tolerant path (engaged only when options_.faults is enabled;
  // the clean path never touches any of this).
  bool faulty_ = false;
  std::unique_ptr<net::reliable_link> rel_;
  member_flags flags_;
  net::traffic_totals round_traffic_start_;
  fault_report fault_report_;

  // Observability (unbound when options_.metrics is unset).
  std::uint64_t round_ = 0;
  engine_counters counters_;
  net::reliable_stats mirrored_;  // last stats already mirrored to metrics
};

}  // namespace dolbie::dist
