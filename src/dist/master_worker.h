// DOLBIE, master-worker realization (Algorithm 1) as communicating state
// machines over the simulated network.
//
// The master occupies node id N; workers are nodes 0..N-1. Per round:
//
//   phase 1  workers send local_cost(l_i) to the master           N msgs
//   phase 2  master computes l_t, s_t; sends round_info to all    N msgs
//   phase 3  non-stragglers compute x' and x_{t+1} locally and
//            send decision(x_{i,t+1}) to the master             N-1 msgs
//   phase 4  master sets x_s = 1 - sum, sends assignment to s_t;  1 msg
//            updates alpha_{t+1} by Eq. (7)
//
// Total 3N messages per round — the O(N) of Section IV-C. Worker i's logic
// touches only its own cost function, its own x_i and its inbox; the
// allocation visible through current() is assembled by the harness, which
// plays the role of the physical work dispatcher.
//
// The produced iterates are bit-identical to core::dolbie_policy (asserted
// by tests/dist_equivalence_test).
#pragma once

#include "core/policy.h"
#include "dist/protocol.h"
#include "net/network.h"

namespace dolbie::dist {

class master_worker_policy final : public core::online_policy {
 public:
  master_worker_policy(std::size_t n_workers, protocol_options options = {});

  std::string_view name() const override { return "DOLBIE-MW"; }
  std::size_t workers() const override { return n_; }
  const core::allocation& current() const override { return assembled_; }
  void observe(const core::round_feedback& feedback) override;
  void reset() override;

  /// Step size the master will apply to the next round.
  double master_step_size() const { return alpha_; }

  /// Traffic of the most recent round (for the comm-complexity bench).
  const net::traffic_totals& last_round_traffic() const {
    return last_traffic_;
  }

 private:
  net::node_id master_id() const { return n_; }

  std::size_t n_;
  protocol_options options_;
  net::network net_;

  // Worker-local state: each worker only ever reads/writes its own entry.
  std::vector<double> worker_x_;

  // Master-local state. `master_l_` is the master's phase-1 inbox, kept as
  // a member so the round loop reuses its storage instead of allocating.
  double alpha_ = 0.0;
  std::vector<double> master_l_;

  // Harness-side assembled view of the allocation.
  core::allocation assembled_;
  net::traffic_totals last_traffic_;

  // Observability (null when options_.metrics is unset).
  std::uint64_t round_ = 0;
  obs::counter* rounds_counter_ = nullptr;
  obs::gauge* alpha_gauge_ = nullptr;
  obs::gauge* straggler_gauge_ = nullptr;
};

}  // namespace dolbie::dist
