#include "dist/runner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/dolbie.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"

namespace dolbie::dist {
namespace {

double max_abs_gap(const core::allocation& a, const core::allocation& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

equivalence_report run_equivalence(std::size_t n_workers, std::size_t rounds,
                                   const round_generator& generate,
                                   protocol_options options) {
  DOLBIE_REQUIRE(rounds >= 1, "need at least one round");
  core::dolbie_options seq_options;
  seq_options.initial_partition = options.initial_partition;
  seq_options.initial_step = options.initial_step;
  seq_options.tracer = options.tracer;
  seq_options.metrics = options.metrics;
  seq_options.trace_lane = options.trace_lane;
  core::dolbie_policy sequential(n_workers, seq_options);
  protocol_options mw_options = options;
  mw_options.trace_lane = options.trace_lane + 1;
  master_worker_policy master_worker(n_workers, mw_options);
  protocol_options fd_options = options;
  fd_options.trace_lane = options.trace_lane + 2;
  fully_distributed_policy fully_distributed(n_workers, fd_options);

  equivalence_report report;
  report.rounds = rounds;
  // Hoisted round scratch: the view and the local-cost buffer live across
  // the loop and are refreshed in place when the cost vector changes, so
  // the per-round body performs no view/locals allocation.
  cost::cost_view view;
  std::vector<double> locals;
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = generate();
    DOLBIE_REQUIRE(costs.size() == n_workers,
                   "generator produced " << costs.size() << " costs for "
                                         << n_workers << " workers");
    cost::view_into(costs, view);
    for (core::online_policy* policy :
         {static_cast<core::online_policy*>(&sequential),
          static_cast<core::online_policy*>(&master_worker),
          static_cast<core::online_policy*>(&fully_distributed)}) {
      cost::evaluate_into(view, policy->current(), locals);
      core::round_feedback feedback;
      feedback.costs = &view;
      feedback.local_costs = locals;
      policy->observe(feedback);
    }
    report.max_divergence_master_worker =
        std::max(report.max_divergence_master_worker,
                 max_abs_gap(master_worker.current(), sequential.current()));
    report.max_divergence_fully_distributed = std::max(
        report.max_divergence_fully_distributed,
        max_abs_gap(fully_distributed.current(), sequential.current()));
  }
  report.master_worker_traffic = master_worker.last_round_traffic();
  report.fully_distributed_traffic = fully_distributed.last_round_traffic();
  return report;
}

}  // namespace dolbie::dist
