#include "sim/event_queue.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace dolbie::sim {

void event_queue::schedule(sim_time at, std::function<void()> action) {
  // NaN would break the heap comparator's strict weak ordering (and slips
  // through a bare `at >= now_` check only by failing it); +inf orders fine
  // but is always a bug — an event that can never meaningfully fire yet
  // advances now() to infinity, poisoning every later schedule. Reject both.
  DOLBIE_REQUIRE(std::isfinite(at),
                 "cannot schedule at non-finite time " << at);
  DOLBIE_REQUIRE(at >= now_, "cannot schedule into the past: " << at
                                                               << " < "
                                                               << now_);
  DOLBIE_REQUIRE(action != nullptr, "null event action");
  heap_.push({at, next_sequence_++, std::move(action)});
}

void event_queue::schedule_in(sim_time delay, std::function<void()> action) {
  DOLBIE_REQUIRE(delay >= 0.0, "negative delay " << delay);
  schedule(now_ + delay, std::move(action));
}

bool event_queue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast-free copy of the
  // handle then pop. The action is copied once; events are small.
  event e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.action();
  return true;
}

std::size_t event_queue::run_to_completion(std::size_t max_events) {
  std::size_t executed = 0;
  while (step()) {
    DOLBIE_REQUIRE(++executed <= max_events,
                   "event budget exceeded: " << max_events
                                             << " events executed");
  }
  return executed;
}

}  // namespace dolbie::sim
