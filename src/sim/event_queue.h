// A deterministic discrete-event scheduler: the spine of the asynchronous
// protocol simulation (src/dist/async_master_worker). Events fire in
// simulated-time order; ties break by insertion order, so runs are
// bit-reproducible regardless of how the schedule was built.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dolbie::sim {

/// Simulated time in seconds.
using sim_time = double;

class event_queue {
 public:
  /// Schedule `action` to fire at absolute time `at`. `at` must not lie in
  /// the past (i.e. must be >= now()).
  void schedule(sim_time at, std::function<void()> action);

  /// Convenience: schedule `action` `delay` seconds from now.
  void schedule_in(sim_time delay, std::function<void()> action);

  /// Current simulated time (the firing time of the last executed event).
  sim_time now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Pop and execute the earliest event. Returns false when idle.
  bool step();

  /// Run until no events remain. `max_events` guards against runaway
  /// self-scheduling loops; throws when exceeded. Returns the number of
  /// events executed.
  std::size_t run_to_completion(std::size_t max_events = 1'000'000);

 private:
  struct event {
    sim_time at;
    std::uint64_t sequence;  // FIFO tie-breaker
    std::function<void()> action;
  };
  struct later {
    bool operator()(const event& a, const event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<event, std::vector<event>, later> heap_;
  sim_time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace dolbie::sim
