// The local cost function abstraction f_{i,t}(x): increasing (not
// necessarily strictly) in the workload fraction x on [0, 1], revealed to
// worker i only after the round-t decision.
//
// Every cost function also exposes `inverse_max(l)` = max{x in [0,1] :
// f(x) <= l} (and 0 when even f(0) > l), the quantity Eq. (4) and the OPT
// water-level solver are built on. Analytic forms override it; the default
// falls back to monotone bisection, the paper's own suggestion (Sec. IV-A).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bisect.h"

namespace dolbie::cost {

/// An increasing scalar cost of workload fraction x in [0, 1].
class cost_function {
 public:
  virtual ~cost_function() = default;

  /// Cost of carrying workload fraction x. Must be non-decreasing in x.
  virtual double value(double x) const = 0;

  /// max{x in [0, 1] : value(x) <= l}; returns 0 when value(0) > l and 1
  /// when value(1) <= l. Default implementation bisects `value`.
  virtual double inverse_max(double l) const;

  /// Opt-in for user-defined types the batch evaluator cannot classify:
  /// return true iff this type's `inverse_max` is exactly the base-class
  /// bisection-of-`value` fallback (no override, or an override that is
  /// bit-identical to it). The batch evaluator then runs the function in its
  /// lock-step bounded-bisection lane — same probe sequence as the scalar
  /// fallback, evaluated together with the other bisection lanes — instead
  /// of one virtual `inverse_max` call per element. Defaults to false: a
  /// type with a custom analytic `inverse_max` must stay on the scalar
  /// fallback or batch results would diverge from the scalar path.
  virtual bool inverse_max_via_bounded_bisection() const { return false; }

  /// Human-readable description, for traces and error messages.
  virtual std::string describe() const = 0;
};

/// The generic inverse_max recipe as an inline template: endpoint checks,
/// then monotone bisection of f.value. When F is a concrete `final` class
/// the value calls devirtualize and inline; instantiated with the abstract
/// base it reproduces cost_function::inverse_max exactly (same arithmetic,
/// bit-identical results). Shared by the base-class fallback, the
/// devirtualized composite override and the batch evaluator.
template <class F>
double inverse_max_by_bisection(const F& f, double l) {
  if (f.value(0.0) > l) return 0.0;
  if (f.value(1.0) <= l) return 1.0;
  return bisect_max_true(0.0, 1.0,
                         [&f, l](double x) { return f.value(x) <= l; });
}

/// Owning list of per-worker cost functions for one round.
using cost_vector = std::vector<std::unique_ptr<const cost_function>>;

/// Non-owning per-round view handed to online policies.
using cost_view = std::vector<const cost_function*>;

/// Borrow a view over an owning cost vector.
cost_view view_of(const cost_vector& costs);

/// Refill `out` with a view over `costs`, reusing its storage. Round loops
/// keep one view alive and refresh it when the cost vector changes, instead
/// of allocating a fresh view every round.
void view_into(const cost_vector& costs, cost_view& out);

/// Evaluate every cost at its coordinate: out[i] = costs[i]->value(x[i]).
/// Throws when sizes mismatch.
std::vector<double> evaluate(const cost_view& costs,
                             const std::vector<double>& x);

/// Allocation-free variant: resizes `out` to costs.size() (a no-op once its
/// capacity is established) and writes costs[i]->value(x[i]) into it.
void evaluate_into(const cost_view& costs, std::span<const double> x,
                   std::vector<double>& out);

/// Validate (by sampling) that a cost function is non-decreasing on [0, 1];
/// used by tests and debug assertions. Returns false on a detected decrease
/// larger than `tolerance`.
bool appears_increasing(const cost_function& f, int samples = 64,
                        double tolerance = 1e-9);

}  // namespace dolbie::cost
