// The local cost function abstraction f_{i,t}(x): increasing (not
// necessarily strictly) in the workload fraction x on [0, 1], revealed to
// worker i only after the round-t decision.
//
// Every cost function also exposes `inverse_max(l)` = max{x in [0,1] :
// f(x) <= l} (and 0 when even f(0) > l), the quantity Eq. (4) and the OPT
// water-level solver are built on. Analytic forms override it; the default
// falls back to monotone bisection, the paper's own suggestion (Sec. IV-A).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dolbie::cost {

/// An increasing scalar cost of workload fraction x in [0, 1].
class cost_function {
 public:
  virtual ~cost_function() = default;

  /// Cost of carrying workload fraction x. Must be non-decreasing in x.
  virtual double value(double x) const = 0;

  /// max{x in [0, 1] : value(x) <= l}; returns 0 when value(0) > l and 1
  /// when value(1) <= l. Default implementation bisects `value`.
  virtual double inverse_max(double l) const;

  /// Human-readable description, for traces and error messages.
  virtual std::string describe() const = 0;
};

/// Owning list of per-worker cost functions for one round.
using cost_vector = std::vector<std::unique_ptr<const cost_function>>;

/// Non-owning per-round view handed to online policies.
using cost_view = std::vector<const cost_function*>;

/// Borrow a view over an owning cost vector.
cost_view view_of(const cost_vector& costs);

/// Evaluate every cost at its coordinate: out[i] = costs[i]->value(x[i]).
/// Throws when sizes mismatch.
std::vector<double> evaluate(const cost_view& costs,
                             const std::vector<double>& x);

/// Validate (by sampling) that a cost function is non-decreasing on [0, 1];
/// used by tests and debug assertions. Returns false on a detected decrease
/// larger than `tolerance`.
bool appears_increasing(const cost_function& f, int samples = 64,
                        double tolerance = 1e-9);

}  // namespace dolbie::cost
