// Composite cost: a non-negative weighted sum of increasing cost functions.
// Sums of increasing functions are increasing, so the composite is a valid
// local cost; its inverse falls back to the base-class bisection. This is
// the family behind "transmission + execution" style costs (the edge
// substrate builds its own specialized version with an analytic structure;
// this generic one serves user compositions and tests).
#pragma once

#include <memory>
#include <vector>

#include "cost/cost_function.h"

namespace dolbie::cost {

/// weight_k * f_k(x) summed over k; weights >= 0, at least one term.
class composite_cost final : public cost_function {
 public:
  struct term {
    double weight = 1.0;
    std::unique_ptr<const cost_function> f;
  };

  explicit composite_cost(std::vector<term> terms);

  double value(double x) const override;
  /// Same monotone bisection as the base-class fallback (bit-identical
  /// results), but instantiated against the concrete class so the value
  /// calls in the bisection loop devirtualize — no std::function, no
  /// virtual dispatch per probe.
  double inverse_max(double l) const override;
  std::string describe() const override;

  std::size_t terms() const { return terms_.size(); }

  /// The underlying terms, in evaluation order. The batch evaluator flattens
  /// them into its SoA term lane; summation order there must match `value`
  /// exactly (floating-point addition does not reassociate).
  const std::vector<term>& term_list() const { return terms_; }

 private:
  std::vector<term> terms_;
};

}  // namespace dolbie::cost
