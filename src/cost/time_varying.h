// Per-worker sequences of time-varying cost functions: the adversary of the
// online problem. A `cost_sequence` yields one freshly parameterized cost
// function per round, driven by the stochastic processes in process.h.
// Sequences are exogenous — they never see the decisions — which matches
// the paper's oblivious time-varying environment.
#pragma once

#include <memory>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "cost/process.h"

namespace dolbie::cost {

/// Produces the cost function a worker experiences in successive rounds.
class cost_sequence {
 public:
  virtual ~cost_sequence() = default;

  /// Advance one round and return the round's cost function.
  virtual std::unique_ptr<const cost_function> next(rng& gen) = 0;
};

/// Affine costs with process-driven slope and intercept:
/// f_t(x) = slope_t * x + intercept_t — the distributed-ML latency family
/// with fluctuating processing speed and data rate.
class affine_sequence final : public cost_sequence {
 public:
  affine_sequence(std::unique_ptr<process> slope,
                  std::unique_ptr<process> intercept);
  std::unique_ptr<const cost_function> next(rng& gen) override;

 private:
  std::unique_ptr<process> slope_;
  std::unique_ptr<process> intercept_;
};

/// Power costs with process-driven scale: f_t(x) = c + scale_t * x^p.
class power_sequence final : public cost_sequence {
 public:
  power_sequence(std::unique_ptr<process> scale, double exponent,
                 double intercept);
  std::unique_ptr<const cost_function> next(rng& gen) override;

 private:
  std::unique_ptr<process> scale_;
  double exponent_;
  double intercept_;
};

/// Saturating costs with process-driven scale:
/// f_t(x) = c + scale_t * x / (x + knee).
class saturating_sequence final : public cost_sequence {
 public:
  saturating_sequence(std::unique_ptr<process> scale, double knee,
                      double intercept);
  std::unique_ptr<const cost_function> next(rng& gen) override;

 private:
  std::unique_ptr<process> scale_;
  double knee_;
  double intercept_;
};

/// Replays a fixed, pre-built schedule of cost functions (for tests and for
/// constructing adversarial instances by hand). Wraps around when exhausted.
class scripted_sequence final : public cost_sequence {
 public:
  /// Each entry is a factory invoked to produce the round's cost function.
  using factory = std::unique_ptr<const cost_function> (*)();

  explicit scripted_sequence(
      std::vector<std::unique_ptr<const cost_function> (*)()> script);
  std::unique_ptr<const cost_function> next(rng& gen) override;

 private:
  std::vector<factory> script_;
  std::size_t at_ = 0;
};

}  // namespace dolbie::cost
