#include "cost/piecewise.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

piecewise_linear_cost::piecewise_linear_cost(std::vector<knot> knots)
    : knots_(std::move(knots)) {
  DOLBIE_REQUIRE(knots_.size() >= 2, "piecewise cost needs >= 2 knots, got "
                                         << knots_.size());
  DOLBIE_REQUIRE(knots_.front().x == 0.0,
                 "first knot must sit at x = 0, got " << knots_.front().x);
  DOLBIE_REQUIRE(knots_.back().x == 1.0,
                 "last knot must sit at x = 1, got " << knots_.back().x);
  for (std::size_t k = 1; k < knots_.size(); ++k) {
    DOLBIE_REQUIRE(knots_[k].x > knots_[k - 1].x,
                   "knot x-coordinates must be strictly increasing");
    DOLBIE_REQUIRE(knots_[k].y >= knots_[k - 1].y,
                   "knot y-coordinates must be non-decreasing");
  }
  DOLBIE_REQUIRE(knots_.front().y >= 0.0, "costs must be non-negative");
}

double piecewise_linear_cost::value(double x) const {
  x = std::clamp(x, 0.0, 1.0);
  // Find the segment [knots_[k-1].x, knots_[k].x] containing x.
  const auto it =
      std::lower_bound(knots_.begin(), knots_.end(), x,
                       [](const knot& k, double v) { return k.x < v; });
  if (it == knots_.begin()) return knots_.front().y;
  const knot& hi = *it;
  const knot& lo = *(it - 1);
  const double frac = (x - lo.x) / (hi.x - lo.x);
  return lo.y + frac * (hi.y - lo.y);
}

double piecewise_linear_cost::inverse_max(double l) const {
  if (knots_.front().y > l) return 0.0;
  if (knots_.back().y <= l) return 1.0;
  // Walk to the last segment whose start is still affordable; invert there.
  for (std::size_t k = 1; k < knots_.size(); ++k) {
    if (knots_[k].y > l) {
      const knot& lo = knots_[k - 1];
      const knot& hi = knots_[k];
      if (hi.y == lo.y) return hi.x;  // flat segment cannot exceed l
      const double frac = (l - lo.y) / (hi.y - lo.y);
      return lo.x + frac * (hi.x - lo.x);
    }
  }
  return 1.0;  // unreachable given the early returns above
}

std::string piecewise_linear_cost::describe() const {
  std::ostringstream os;
  os << "piecewise_linear(" << knots_.size() << " knots, y in ["
     << knots_.front().y << ", " << knots_.back().y << "])";
  return os.str();
}

}  // namespace dolbie::cost
