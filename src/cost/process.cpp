#include "cost/process.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dolbie::cost {

constant_process::constant_process(double value) : value_(value) {
  DOLBIE_REQUIRE(std::isfinite(value), "constant process value must be finite");
}

ar1_process::ar1_process(double mean, double rho, double sigma, double floor,
                         double ceil)
    : mean_(mean),
      rho_(rho),
      sigma_(sigma),
      floor_(floor),
      ceil_(ceil),
      value_(mean) {
  DOLBIE_REQUIRE(rho >= 0.0 && rho < 1.0, "AR(1) rho must be in [0,1), got "
                                              << rho);
  DOLBIE_REQUIRE(sigma >= 0.0, "AR(1) sigma must be >= 0, got " << sigma);
  DOLBIE_REQUIRE(floor <= ceil, "AR(1) floor " << floor << " above ceil "
                                               << ceil);
  DOLBIE_REQUIRE(mean >= floor && mean <= ceil,
                 "AR(1) mean " << mean << " outside [" << floor << ", " << ceil
                               << "]");
}

double ar1_process::step(rng& gen) {
  value_ = mean_ + rho_ * (value_ - mean_) + gen.gaussian(0.0, sigma_);
  value_ = std::clamp(value_, floor_, ceil_);
  return value_;
}

bounded_walk_process::bounded_walk_process(double start, double sigma,
                                           double floor, double ceil)
    : sigma_(sigma), floor_(floor), ceil_(ceil), value_(start) {
  DOLBIE_REQUIRE(sigma >= 0.0, "walk sigma must be >= 0, got " << sigma);
  DOLBIE_REQUIRE(floor > 0.0, "multiplicative walk needs floor > 0, got "
                                  << floor);
  DOLBIE_REQUIRE(floor <= ceil, "walk floor " << floor << " above ceil "
                                              << ceil);
  DOLBIE_REQUIRE(start >= floor && start <= ceil,
                 "walk start " << start << " outside [" << floor << ", "
                               << ceil << "]");
}

double bounded_walk_process::step(rng& gen) {
  value_ *= std::exp(gen.gaussian(0.0, sigma_));
  value_ = std::clamp(value_, floor_, ceil_);
  return value_;
}

markov_contention_process::markov_contention_process(double base,
                                                     double contended_factor,
                                                     double p_enter,
                                                     double p_exit)
    : base_(base),
      contended_factor_(contended_factor),
      p_enter_(p_enter),
      p_exit_(p_exit) {
  DOLBIE_REQUIRE(base > 0.0, "contention base must be > 0, got " << base);
  DOLBIE_REQUIRE(contended_factor > 0.0,
                 "contention factor must be > 0, got " << contended_factor);
  DOLBIE_REQUIRE(p_enter >= 0.0 && p_enter <= 1.0,
                 "p_enter must be a probability, got " << p_enter);
  DOLBIE_REQUIRE(p_exit >= 0.0 && p_exit <= 1.0,
                 "p_exit must be a probability, got " << p_exit);
}

double markov_contention_process::current() const {
  return contended_ ? base_ * contended_factor_ : base_;
}

double markov_contention_process::step(rng& gen) {
  if (contended_) {
    if (gen.bernoulli(p_exit_)) contended_ = false;
  } else {
    if (gen.bernoulli(p_enter_)) contended_ = true;
  }
  return current();
}

periodic_process::periodic_process(double mean, double amplitude,
                                   double period, double phase)
    : mean_(mean), amplitude_(amplitude), period_(period), phase_(phase) {
  DOLBIE_REQUIRE(mean > 0.0, "periodic mean must be > 0, got " << mean);
  DOLBIE_REQUIRE(amplitude >= 0.0 && amplitude < 1.0,
                 "periodic amplitude must be in [0,1) to keep the value "
                 "positive, got "
                     << amplitude);
  DOLBIE_REQUIRE(period > 0.0, "periodic period must be > 0, got " << period);
}

double periodic_process::current() const {
  constexpr double kTwoPi = 6.283185307179586;
  const double t = static_cast<double>(tick_);
  return mean_ *
         (1.0 + amplitude_ * std::sin(kTwoPi * (t / period_ + phase_)));
}

double periodic_process::step(rng&) {
  ++tick_;
  return current();
}

product_process::product_process(std::unique_ptr<process> a,
                                 std::unique_ptr<process> b)
    : a_(std::move(a)), b_(std::move(b)) {
  DOLBIE_REQUIRE(a_ != nullptr && b_ != nullptr,
                 "product process factors must be non-null");
}

double product_process::current() const {
  return a_->current() * b_->current();
}

double product_process::step(rng& gen) {
  return a_->step(gen) * b_->step(gen);
}

}  // namespace dolbie::cost
