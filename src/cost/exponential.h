// Exponential cost f(x) = intercept + scale * (exp(rate * x) - 1): strongly
// non-linear growth modelling congestion collapse (e.g. queueing delay as a
// worker nears saturation).
#pragma once

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = intercept + scale * (exp(rate * x) - 1), scale >= 0, rate > 0.
class exponential_cost final : public cost_function {
 public:
  exponential_cost(double scale, double rate, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double scale() const { return scale_; }
  double rate() const { return rate_; }
  double intercept() const { return intercept_; }

 private:
  double scale_;
  double rate_;
  double intercept_;
};

}  // namespace dolbie::cost
