// Exponential cost f(x) = intercept + scale * (exp(rate * x) - 1): strongly
// non-linear growth modelling congestion collapse (e.g. queueing delay as a
// worker nears saturation).
#pragma once

#include <cmath>

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = intercept + scale * (exp(rate * x) - 1), scale >= 0, rate > 0.
class exponential_cost final : public cost_function {
 public:
  exponential_cost(double scale, double rate, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double scale() const { return scale_; }
  double rate() const { return rate_; }
  double intercept() const { return intercept_; }

  /// Analytic kernels shared with cost::batch_evaluator (bit-identical to
  /// the member functions by construction).
  static double value_kernel(double scale, double rate, double intercept,
                             double x) {
    return intercept + scale * std::expm1(rate * x);
  }
  static double inverse_max_kernel(double scale, double rate, double intercept,
                                   double l) {
    if (intercept > l) return 0.0;
    if (scale == 0.0) return 1.0;
    const double y = (l - intercept) / scale;
    const double x = std::log1p(y) / rate;
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  }

 private:
  double scale_;
  double rate_;
  double intercept_;
};

}  // namespace dolbie::cost
