// Piecewise-linear increasing cost, defined by knots (x_k, y_k). Models
// regime changes such as a worker spilling from cache to memory, or a tiered
// pricing curve. Exercises the non-differentiable case DOLBIE is designed
// for (no gradient needed).
#pragma once

#include <vector>

#include "cost/cost_function.h"

namespace dolbie::cost {

/// A knot of the piecewise curve.
struct knot {
  double x = 0.0;
  double y = 0.0;
};

/// Increasing piecewise-linear interpolation through the given knots.
/// Requires at least two knots, x strictly increasing spanning [0, 1]
/// (first knot at x = 0, last at x = 1), and y non-decreasing.
class piecewise_linear_cost final : public cost_function {
 public:
  explicit piecewise_linear_cost(std::vector<knot> knots);

  double value(double x) const override;
  double inverse_max(double l) const override;  // segment scan, analytic
  std::string describe() const override;

  const std::vector<knot>& knots() const { return knots_; }

 private:
  std::vector<knot> knots_;
};

}  // namespace dolbie::cost
