// Stochastic processes driving the time variation of cost-function
// parameters (processing speed gamma_{i,t}, data rate phi_{i,t}, ...).
// They model the "unpredictable fluctuations" the online formulation
// targets: smooth drift (AR(1)), slow wander (bounded random walk) and
// abrupt contention episodes (2-state Markov multiplier).
#pragma once

#include <memory>

#include "common/rng.h"

namespace dolbie::cost {

/// A scalar stochastic process stepped once per online round.
class process {
 public:
  virtual ~process() = default;

  /// Current value (the value for the round most recently stepped into).
  virtual double current() const = 0;

  /// Advance one round and return the new value.
  virtual double step(rng& gen) = 0;
};

/// Constant process: no time variation (useful as a control in ablations).
class constant_process final : public process {
 public:
  explicit constant_process(double value);
  double current() const override { return value_; }
  double step(rng&) override { return value_; }

 private:
  double value_;
};

/// Mean-reverting AR(1): y' = mean + rho * (y - mean) + sigma * N(0,1),
/// clamped to [floor, ceil]. rho in [0, 1).
class ar1_process final : public process {
 public:
  ar1_process(double mean, double rho, double sigma, double floor,
              double ceil);
  double current() const override { return value_; }
  double step(rng& gen) override;

 private:
  double mean_;
  double rho_;
  double sigma_;
  double floor_;
  double ceil_;
  double value_;
};

/// Bounded multiplicative random walk: y' = clamp(y * exp(sigma * N(0,1))).
/// Models data-rate wander over orders of magnitude without going negative.
class bounded_walk_process final : public process {
 public:
  bounded_walk_process(double start, double sigma, double floor, double ceil);
  double current() const override { return value_; }
  double step(rng& gen) override;

 private:
  double sigma_;
  double floor_;
  double ceil_;
  double value_;
};

/// Two-state Markov-modulated multiplier: in the "normal" state the value is
/// `base`; in the "contended" state it is `base * contended_factor`
/// (factor < 1 models a slowdown). Per-round transition probabilities give
/// bursty contention episodes like a co-located job stealing cycles.
class markov_contention_process final : public process {
 public:
  markov_contention_process(double base, double contended_factor,
                            double p_enter, double p_exit);
  double current() const override;
  double step(rng& gen) override;
  bool contended() const { return contended_; }

 private:
  double base_;
  double contended_factor_;
  double p_enter_;
  double p_exit_;
  bool contended_ = false;
};

/// Deterministic seasonal variation:
/// value_t = mean * (1 + amplitude * sin(2*pi*(t/period + phase))).
/// Produces a periodic adversary whose instantaneous minimizers trace a
/// closed loop — path length P_T grows linearly in T, the worst-case
/// regime of the dynamic-regret analysis.
class periodic_process final : public process {
 public:
  periodic_process(double mean, double amplitude, double period,
                   double phase = 0.0);
  double current() const override;
  double step(rng& gen) override;

 private:
  double mean_;
  double amplitude_;
  double period_;
  double phase_;
  std::uint64_t tick_ = 0;
};

/// Product of two processes (e.g. AR(1) drift times Markov contention).
class product_process final : public process {
 public:
  product_process(std::unique_ptr<process> a, std::unique_ptr<process> b);
  double current() const override;
  double step(rng& gen) override;

 private:
  std::unique_ptr<process> a_;
  std::unique_ptr<process> b_;
};

}  // namespace dolbie::cost
