#include "cost/exponential.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

exponential_cost::exponential_cost(double scale, double rate, double intercept)
    : scale_(scale), rate_(rate), intercept_(intercept) {
  DOLBIE_REQUIRE(scale >= 0.0,
                 "exponential cost needs scale >= 0, got " << scale);
  DOLBIE_REQUIRE(rate > 0.0, "exponential cost needs rate > 0, got " << rate);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "exponential cost needs intercept >= 0, got " << intercept);
}

double exponential_cost::value(double x) const {
  return value_kernel(scale_, rate_, intercept_, x);
}

double exponential_cost::inverse_max(double l) const {
  return inverse_max_kernel(scale_, rate_, intercept_, l);
}

std::string exponential_cost::describe() const {
  std::ostringstream os;
  os << "exponential(scale=" << scale_ << ", rate=" << rate_
     << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
