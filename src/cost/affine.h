// Affine cost f(x) = slope * x + intercept — the paper's distributed-ML
// latency model: slope = B / gamma (processing) and intercept = d / phi
// (communication), Sec. III-A.
#pragma once

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = slope * x + intercept with slope >= 0, intercept >= 0.
class affine_cost final : public cost_function {
 public:
  affine_cost(double slope, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

  /// Analytic kernels on raw parameters, shared by the member functions and
  /// the SoA loops of cost::batch_evaluator — one definition, so the two
  /// paths are bit-identical by construction.
  static double value_kernel(double slope, double intercept, double x) {
    return slope * x + intercept;
  }
  /// Branchless (pure selects) so the batch loop if-converts and the
  /// divisions vectorize; IEEE division and selects are exact, so this is
  /// bit-identical to the branchy case analysis it replaces: intercept > l
  /// -> 0, else slope == 0 (constant cost <= l everywhere) -> 1, else the
  /// crossing point clamped to [0, 1]. The slope == 0 division yields
  /// inf/NaN, discarded by the select.
  static double inverse_max_kernel(double slope, double intercept, double l) {
    const double x = (l - intercept) / slope;
    const double clamped = x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
    const double pos_slope = intercept > l ? 0.0 : clamped;
    return slope == 0.0 ? (intercept > l ? 0.0 : 1.0) : pos_slope;
  }

 private:
  double slope_;
  double intercept_;
};

}  // namespace dolbie::cost
