// Affine cost f(x) = slope * x + intercept — the paper's distributed-ML
// latency model: slope = B / gamma (processing) and intercept = d / phi
// (communication), Sec. III-A.
#pragma once

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = slope * x + intercept with slope >= 0, intercept >= 0.
class affine_cost final : public cost_function {
 public:
  affine_cost(double slope, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  double slope_;
  double intercept_;
};

}  // namespace dolbie::cost
