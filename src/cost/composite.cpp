#include "cost/composite.h"

#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

composite_cost::composite_cost(std::vector<term> terms)
    : terms_(std::move(terms)) {
  DOLBIE_REQUIRE(!terms_.empty(), "composite cost needs at least one term");
  for (const term& t : terms_) {
    DOLBIE_REQUIRE(t.weight >= 0.0,
                   "composite weight must be >= 0, got " << t.weight);
    DOLBIE_REQUIRE(t.f != nullptr, "composite term function is null");
  }
}

double composite_cost::value(double x) const {
  double total = 0.0;
  for (const term& t : terms_) total += t.weight * t.f->value(x);
  return total;
}

double composite_cost::inverse_max(double l) const {
  return inverse_max_by_bisection(*this, l);
}

std::string composite_cost::describe() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t k = 0; k < terms_.size(); ++k) {
    if (k > 0) os << " + ";
    os << terms_[k].weight << "*" << terms_[k].f->describe();
  }
  os << ")";
  return os.str();
}

}  // namespace dolbie::cost
