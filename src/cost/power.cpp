#include "cost/power.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

power_cost::power_cost(double scale, double exponent, double intercept)
    : scale_(scale), exponent_(exponent), intercept_(intercept) {
  DOLBIE_REQUIRE(scale >= 0.0, "power cost needs scale >= 0, got " << scale);
  DOLBIE_REQUIRE(exponent > 0.0,
                 "power cost needs exponent > 0, got " << exponent);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "power cost needs intercept >= 0, got " << intercept);
}

double power_cost::value(double x) const {
  return value_kernel(scale_, exponent_, intercept_, x);
}

double power_cost::inverse_max(double l) const {
  return inverse_max_kernel(scale_, exponent_, intercept_, l);
}

std::string power_cost::describe() const {
  std::ostringstream os;
  os << "power(scale=" << scale_ << ", exponent=" << exponent_
     << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
