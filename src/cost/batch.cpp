#include "cost/batch.h"

#include <typeinfo>

#include "common/error.h"
#include "cost/affine.h"
#include "cost/composite.h"
#include "cost/exponential.h"
#include "cost/logistic.h"
#include "cost/piecewise.h"
#include "cost/power.h"

namespace dolbie::cost {
namespace {

// Multi-versioned hot loops: GCC/Clang emit one clone per target and pick
// the widest the CPU supports at load time (ifunc), so the shipped binary
// stays baseline-portable. Per-element arithmetic is identical in every
// clone (IEEE division/selects are exact at any vector width, the libm
// calls stay scalar calls, and per-lane accumulation order never changes),
// so the clones differ in speed only, never in bits.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DOLBIE_MULTIVERSIONED \
  __attribute__((target_clones("default", "avx2")))
#else
#define DOLBIE_MULTIVERSIONED
#endif

DOLBIE_MULTIVERSIONED
void affine_value_loop(const double* slope, const double* intercept,
                       const double* x, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = affine_cost::value_kernel(slope[i], intercept[i], x[i]);
  }
}

DOLBIE_MULTIVERSIONED
void affine_inverse_max_loop(const double* slope, const double* intercept,
                             std::size_t n, double l, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = affine_cost::inverse_max_kernel(slope[i], intercept[i], l);
  }
}

// Eq. (4) with the clamp fused in (same arithmetic as
// core::max_acceptable_workload; the caller pins the straggler).
DOLBIE_MULTIVERSIONED
void affine_max_acceptable_loop(const double* slope, const double* intercept,
                                const double* x, std::size_t n, double l,
                                double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double tilde =
        affine_cost::inverse_max_kernel(slope[i], intercept[i], l);
    out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
  }
}

// Grouped (per-element l) variant for the cross-realization sweep path.
DOLBIE_MULTIVERSIONED
void affine_max_acceptable_loop_multi(const double* slope,
                                      const double* intercept, const double* x,
                                      std::size_t n, const double* l,
                                      double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double tilde =
        affine_cost::inverse_max_kernel(slope[i], intercept[i], l[i]);
    out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
  }
}

// Composite term kinds in the flattened term lane.
enum term_kind : std::uint8_t {
  term_affine = 0,
  term_power = 1,
  term_exp = 2,
  term_sat = 3,
  term_opaque = 4,
};

// One composite lane's value at x: weighted terms accumulated in original
// term order through the same family kernels the members use, so the result
// equals composite_cost::value(x) bit for bit (opaque terms make the same
// virtual value call the member makes).
double composite_value_at(const std::uint32_t* begin, const std::uint8_t* kind,
                          const double* w, const double* p0, const double* p1,
                          const double* p2, const cost_function* const* tf,
                          std::size_t k, double x) {
  double acc = 0.0;
  for (std::uint32_t t = begin[k]; t < begin[k + 1]; ++t) {
    double v;
    switch (kind[t]) {
      case term_affine:
        v = affine_cost::value_kernel(p0[t], p1[t], x);
        break;
      case term_power:
        v = power_cost::value_kernel(p0[t], p1[t], p2[t], x);
        break;
      case term_exp:
        v = exponential_cost::value_kernel(p0[t], p1[t], p2[t], x);
        break;
      case term_sat:
        v = saturating_cost::value_kernel(p0[t], p1[t], p2[t], x);
        break;
      default:
        v = tf[t]->value(x);
        break;
    }
    acc += w[t] * v;
  }
  return acc;
}

// The lock-step bisection predicate over all active composite lanes: one
// probe per lane per shared iteration, no virtual dispatch for analytic
// terms, and — unlike the scalar bisection — no data-dependent branch on
// the probe outcome (the caller's interval update is a select). The term
// kinds repeat identically every iteration, so the switch predicts
// perfectly; this loop is where the mixed-lane cliff dies.
DOLBIE_MULTIVERSIONED
void composite_pred_loop(const std::uint32_t* begin, const std::uint8_t* kind,
                         const double* w, const double* p0, const double* p1,
                         const double* p2, const cost_function* const* tf,
                         const std::size_t* slot, const double* lane_l,
                         std::size_t lanes, const double* mid,
                         unsigned char* out) {
  for (std::size_t a = 0; a < lanes; ++a) {
    const double v = composite_value_at(begin, kind, w, p0, p1, p2, tf,
                                        slot[a], mid[a]);
    out[a] = v <= lane_l[a] ? 1 : 0;
  }
}

}  // namespace

void batch_evaluator::rebind(const cost_view& costs) {
  n_ = costs.size();
  affine_index_.clear();
  affine_slope_.clear();
  affine_intercept_.clear();
  power_index_.clear();
  power_scale_.clear();
  power_exponent_.clear();
  power_intercept_.clear();
  exp_index_.clear();
  exp_scale_.clear();
  exp_rate_.clear();
  exp_intercept_.clear();
  sat_index_.clear();
  sat_scale_.clear();
  sat_knee_.clear();
  sat_intercept_.clear();
  piecewise_index_.clear();
  pw_begin_.clear();
  pw_x_.clear();
  pw_y_.clear();
  composite_index_.clear();
  comp_begin_.clear();
  term_kind_.clear();
  term_weight_.clear();
  term_p0_.clear();
  term_p1_.clear();
  term_p2_.clear();
  term_f_.clear();
  bounded_index_.clear();
  bounded_f_.clear();
  generic_index_.clear();
  generic_f_.clear();

  for (std::size_t i = 0; i < n_; ++i) {
    const cost_function* f = costs[i];
    DOLBIE_REQUIRE(f != nullptr, "cost view entry " << i << " is null");
    // Every built-in family is `final`, so exact-typeid matching is a
    // complete (and cheap: one vtable load + pointer compare) classifier.
    const std::type_info& ti = typeid(*f);
    if (ti == typeid(affine_cost)) {
      const auto* c = static_cast<const affine_cost*>(f);
      affine_index_.push_back(i);
      affine_slope_.push_back(c->slope());
      affine_intercept_.push_back(c->intercept());
    } else if (ti == typeid(power_cost)) {
      const auto* c = static_cast<const power_cost*>(f);
      power_index_.push_back(i);
      power_scale_.push_back(c->scale());
      power_exponent_.push_back(c->exponent());
      power_intercept_.push_back(c->intercept());
    } else if (ti == typeid(exponential_cost)) {
      const auto* c = static_cast<const exponential_cost*>(f);
      exp_index_.push_back(i);
      exp_scale_.push_back(c->scale());
      exp_rate_.push_back(c->rate());
      exp_intercept_.push_back(c->intercept());
    } else if (ti == typeid(saturating_cost)) {
      const auto* c = static_cast<const saturating_cost*>(f);
      sat_index_.push_back(i);
      sat_scale_.push_back(c->scale());
      sat_knee_.push_back(c->knee());
      sat_intercept_.push_back(c->intercept());
    } else if (ti == typeid(piecewise_linear_cost)) {
      const auto* c = static_cast<const piecewise_linear_cost*>(f);
      piecewise_index_.push_back(i);
      if (pw_begin_.empty()) pw_begin_.push_back(0);
      for (const knot& kn : c->knots()) {
        pw_x_.push_back(kn.x);
        pw_y_.push_back(kn.y);
      }
      pw_begin_.push_back(static_cast<std::uint32_t>(pw_x_.size()));
    } else if (ti == typeid(composite_cost)) {
      const auto* c = static_cast<const composite_cost*>(f);
      composite_index_.push_back(i);
      if (comp_begin_.empty()) comp_begin_.push_back(0);
      for (const composite_cost::term& t : c->term_list()) {
        const cost_function* tf = t.f.get();
        const std::type_info& tti = typeid(*tf);
        term_weight_.push_back(t.weight);
        if (tti == typeid(affine_cost)) {
          const auto* a = static_cast<const affine_cost*>(tf);
          term_kind_.push_back(term_affine);
          term_p0_.push_back(a->slope());
          term_p1_.push_back(a->intercept());
          term_p2_.push_back(0.0);
          term_f_.push_back(nullptr);
        } else if (tti == typeid(power_cost)) {
          const auto* p = static_cast<const power_cost*>(tf);
          term_kind_.push_back(term_power);
          term_p0_.push_back(p->scale());
          term_p1_.push_back(p->exponent());
          term_p2_.push_back(p->intercept());
          term_f_.push_back(nullptr);
        } else if (tti == typeid(exponential_cost)) {
          const auto* e = static_cast<const exponential_cost*>(tf);
          term_kind_.push_back(term_exp);
          term_p0_.push_back(e->scale());
          term_p1_.push_back(e->rate());
          term_p2_.push_back(e->intercept());
          term_f_.push_back(nullptr);
        } else if (tti == typeid(saturating_cost)) {
          const auto* s = static_cast<const saturating_cost*>(tf);
          term_kind_.push_back(term_sat);
          term_p0_.push_back(s->scale());
          term_p1_.push_back(s->knee());
          term_p2_.push_back(s->intercept());
          term_f_.push_back(nullptr);
        } else {
          // Nested composites / piecewise / user terms stay opaque: the
          // lock-step probe makes the same virtual value call the scalar
          // sum makes.
          term_kind_.push_back(term_opaque);
          term_p0_.push_back(0.0);
          term_p1_.push_back(0.0);
          term_p2_.push_back(0.0);
          term_f_.push_back(tf);
        }
      }
      comp_begin_.push_back(static_cast<std::uint32_t>(term_kind_.size()));
    } else if (f->inverse_max_via_bounded_bisection()) {
      bounded_index_.push_back(i);
      bounded_f_.push_back(f);
    } else {
      generic_index_.push_back(i);
      generic_f_.push_back(f);
    }
  }
  // Costs were classified in index order, so a full affine lane is the
  // identity permutation.
  all_affine_ = affine_index_.size() == n_;

  // Warm the lock-step search scratch now: binding establishes every
  // capacity the evaluation methods need, so they stay allocation-free from
  // the first call (the composite and bounded sections reuse these in turn).
  const std::size_t lanes =
      std::max(composite_index_.size(), bounded_index_.size());
  lane_slot_.resize(lanes);
  lane_good_.resize(lanes);
  lane_bad_.resize(lanes);
  lane_l_.resize(lanes);
  lane_scratch_.resize(lanes);
  l_elem_.resize(n_);
}

double batch_evaluator::piecewise_value(std::size_t k, double x) const {
  // Same arithmetic as piecewise_linear_cost::value over the flat knot
  // arrays: clamp, find the first knot with knot.x >= x (what the member's
  // lower_bound returns), interpolate on the segment below it.
  const double v = x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  const std::uint32_t b = pw_begin_[k];
  const std::uint32_t e = pw_begin_[k + 1];
  std::uint32_t j = b;
  while (j < e && pw_x_[j] < v) ++j;  // j < e always: last knot sits at x=1
  if (j == b) return pw_y_[b];
  const double frac = (v - pw_x_[j - 1]) / (pw_x_[j] - pw_x_[j - 1]);
  return pw_y_[j - 1] + frac * (pw_y_[j] - pw_y_[j - 1]);
}

double batch_evaluator::piecewise_inverse_max(std::size_t k, double l) const {
  // Same analytic segment walk as piecewise_linear_cost::inverse_max.
  const std::uint32_t b = pw_begin_[k];
  const std::uint32_t e = pw_begin_[k + 1];
  if (pw_y_[b] > l) return 0.0;
  if (pw_y_[e - 1] <= l) return 1.0;
  for (std::uint32_t j = b + 1; j < e; ++j) {
    if (pw_y_[j] > l) {
      if (pw_y_[j] == pw_y_[j - 1]) return pw_x_[j];  // flat segment
      const double frac = (l - pw_y_[j - 1]) / (pw_y_[j] - pw_y_[j - 1]);
      return pw_x_[j - 1] + frac * (pw_x_[j] - pw_x_[j - 1]);
    }
  }
  return 1.0;  // unreachable given the early returns above
}

double batch_evaluator::composite_value(std::size_t k, double x) const {
  return composite_value_at(comp_begin_.data(), term_kind_.data(),
                            term_weight_.data(), term_p0_.data(),
                            term_p1_.data(), term_p2_.data(), term_f_.data(),
                            k, x);
}

void batch_evaluator::values(std::span<const double> x,
                             std::span<double> out) const {
  DOLBIE_REQUIRE(x.size() == n_ && out.size() == n_,
                 "batch values: expected " << n_ << " entries, got x="
                                           << x.size() << " out="
                                           << out.size());
  if (all_affine_) {
    affine_value_loop(affine_slope_.data(), affine_intercept_.data(),
                      x.data(), n_, out.data());
    return;
  }
  for (std::size_t k = 0; k < affine_index_.size(); ++k) {
    const std::size_t i = affine_index_[k];
    out[i] = affine_cost::value_kernel(affine_slope_[k], affine_intercept_[k],
                                       x[i]);
  }
  for (std::size_t k = 0; k < power_index_.size(); ++k) {
    const std::size_t i = power_index_[k];
    out[i] = power_cost::value_kernel(power_scale_[k], power_exponent_[k],
                                      power_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < exp_index_.size(); ++k) {
    const std::size_t i = exp_index_[k];
    out[i] = exponential_cost::value_kernel(exp_scale_[k], exp_rate_[k],
                                            exp_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < sat_index_.size(); ++k) {
    const std::size_t i = sat_index_[k];
    out[i] = saturating_cost::value_kernel(sat_scale_[k], sat_knee_[k],
                                           sat_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < piecewise_index_.size(); ++k) {
    const std::size_t i = piecewise_index_[k];
    out[i] = piecewise_value(k, x[i]);
  }
  for (std::size_t k = 0; k < composite_index_.size(); ++k) {
    const std::size_t i = composite_index_[k];
    out[i] = composite_value(k, x[i]);
  }
  for (std::size_t k = 0; k < bounded_index_.size(); ++k) {
    const std::size_t i = bounded_index_[k];
    out[i] = bounded_f_[k]->value(x[i]);  // unknown type: virtual
  }
  for (std::size_t k = 0; k < generic_index_.size(); ++k) {
    const std::size_t i = generic_index_[k];
    out[i] = generic_f_[k]->value(x[i]);  // unknown type: virtual fallback
  }
}

template <class LAt, class Emit>
void batch_evaluator::inverse_max_each(LAt&& l_at, Emit&& emit) const {
  for (std::size_t k = 0; k < affine_index_.size(); ++k) {
    const std::size_t i = affine_index_[k];
    emit(i, affine_cost::inverse_max_kernel(affine_slope_[k],
                                            affine_intercept_[k], l_at(i)));
  }
  for (std::size_t k = 0; k < power_index_.size(); ++k) {
    const std::size_t i = power_index_[k];
    emit(i, power_cost::inverse_max_kernel(power_scale_[k], power_exponent_[k],
                                           power_intercept_[k], l_at(i)));
  }
  for (std::size_t k = 0; k < exp_index_.size(); ++k) {
    const std::size_t i = exp_index_[k];
    emit(i, exponential_cost::inverse_max_kernel(exp_scale_[k], exp_rate_[k],
                                                 exp_intercept_[k], l_at(i)));
  }
  for (std::size_t k = 0; k < sat_index_.size(); ++k) {
    const std::size_t i = sat_index_[k];
    emit(i, saturating_cost::inverse_max_kernel(sat_scale_[k], sat_knee_[k],
                                                sat_intercept_[k], l_at(i)));
  }
  for (std::size_t k = 0; k < piecewise_index_.size(); ++k) {
    const std::size_t i = piecewise_index_[k];
    emit(i, piecewise_inverse_max(k, l_at(i)));
  }

  // Composite lanes: resolve the endpoint cases exactly like the scalar
  // inverse_max_by_bisection (value(0) > l -> 0, value(1) <= l -> 1), then
  // run every remaining search through one lock-step loop. Lane k's probe
  // sequence equals the scalar bisection's, so each emitted value is
  // bit-identical to composite_cost::inverse_max(l).
  const std::size_t nc = composite_index_.size();
  if (nc != 0) {
    lane_slot_.resize(nc);
    lane_good_.resize(nc);
    lane_bad_.resize(nc);
    lane_l_.resize(nc);
    std::size_t active = 0;
    for (std::size_t k = 0; k < nc; ++k) {
      const std::size_t i = composite_index_[k];
      const double l = l_at(i);
      if (composite_value(k, 0.0) > l) {
        emit(i, 0.0);
      } else if (composite_value(k, 1.0) <= l) {
        emit(i, 1.0);
      } else {
        lane_slot_[active] = k;
        lane_l_[active] = l;
        lane_good_[active] = 0.0;
        lane_bad_[active] = 1.0;
        ++active;
      }
    }
    if (active != 0) {
      bisect_max_true_lanes(
          active, lane_good_.data(), lane_bad_.data(), lane_scratch_,
          [this, active](const double* mid, unsigned char* take) {
            composite_pred_loop(comp_begin_.data(), term_kind_.data(),
                                term_weight_.data(), term_p0_.data(),
                                term_p1_.data(), term_p2_.data(),
                                term_f_.data(), lane_slot_.data(),
                                lane_l_.data(), active, mid, take);
          });
      for (std::size_t a = 0; a < active; ++a) {
        emit(composite_index_[lane_slot_[a]], lane_good_[a]);
      }
    }
  }

  // Bounded-generic lanes: same lock-step search, probing the virtual
  // value() — the exact calls the base-class fallback makes, in the exact
  // order, so the opt-in contract keeps this bit-identical to scalar.
  const std::size_t nb = bounded_index_.size();
  if (nb != 0) {
    lane_slot_.resize(nb);
    lane_good_.resize(nb);
    lane_bad_.resize(nb);
    lane_l_.resize(nb);
    std::size_t active = 0;
    for (std::size_t k = 0; k < nb; ++k) {
      const std::size_t i = bounded_index_[k];
      const double l = l_at(i);
      if (bounded_f_[k]->value(0.0) > l) {
        emit(i, 0.0);
      } else if (bounded_f_[k]->value(1.0) <= l) {
        emit(i, 1.0);
      } else {
        lane_slot_[active] = k;
        lane_l_[active] = l;
        lane_good_[active] = 0.0;
        lane_bad_[active] = 1.0;
        ++active;
      }
    }
    if (active != 0) {
      bisect_max_true_lanes(
          active, lane_good_.data(), lane_bad_.data(), lane_scratch_,
          [this, active](const double* mid, unsigned char* take) {
            for (std::size_t a = 0; a < active; ++a) {
              take[a] =
                  bounded_f_[lane_slot_[a]]->value(mid[a]) <= lane_l_[a] ? 1
                                                                         : 0;
            }
          });
      for (std::size_t a = 0; a < active; ++a) {
        emit(bounded_index_[lane_slot_[a]], lane_good_[a]);
      }
    }
  }

  for (std::size_t k = 0; k < generic_index_.size(); ++k) {
    const std::size_t i = generic_index_[k];
    emit(i, generic_f_[k]->inverse_max(l_at(i)));
  }
}

void batch_evaluator::inverse_max(double l, std::span<double> out) const {
  DOLBIE_REQUIRE(out.size() == n_, "batch inverse_max: expected "
                                       << n_ << " entries, got "
                                       << out.size());
  if (all_affine_) {
    affine_inverse_max_loop(affine_slope_.data(), affine_intercept_.data(),
                            n_, l, out.data());
    return;
  }
  inverse_max_each([l](std::size_t) { return l; },
                   [out](std::size_t i, double tilde) { out[i] = tilde; });
}

void batch_evaluator::max_acceptable(std::span<const double> x,
                                     double global_cost,
                                     std::size_t straggler,
                                     std::span<double> out) const {
  DOLBIE_REQUIRE(x.size() == n_ && out.size() == n_,
                 "batch max_acceptable: expected " << n_ << " entries, got x="
                                                   << x.size() << " out="
                                                   << out.size());
  DOLBIE_REQUIRE(straggler < n_,
                 "straggler index " << straggler << " out of range");
  // Same clamp as core::max_acceptable_workload, fused into the family
  // loops (single pass over out): the result is >= x_i in exact arithmetic
  // (f(x_i) <= l_t); the clamp absorbs bisection error.
  if (all_affine_) {
    affine_max_acceptable_loop(affine_slope_.data(), affine_intercept_.data(),
                               x.data(), n_, global_cost, out.data());
  } else {
    inverse_max_each(
        [global_cost](std::size_t) { return global_cost; },
        [out, x](std::size_t i, double tilde) {
          out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
        });
  }
  out[straggler] = x[straggler];
}

void batch_evaluator::max_acceptable_groups(
    std::span<const double> x, std::span<const double> group_cost,
    std::span<const std::size_t> stragglers, std::span<double> out) const {
  const std::size_t groups = group_cost.size();
  DOLBIE_REQUIRE(groups != 0, "grouped max_acceptable needs >= 1 group");
  DOLBIE_REQUIRE(n_ % groups == 0, "bound size " << n_
                                                 << " is not a multiple of "
                                                 << groups << " groups");
  const std::size_t m = n_ / groups;
  DOLBIE_REQUIRE(x.size() == n_ && out.size() == n_,
                 "grouped max_acceptable: expected "
                     << n_ << " entries, got x=" << x.size() << " out="
                     << out.size());
  DOLBIE_REQUIRE(stragglers.size() == groups,
                 "expected " << groups << " stragglers, got "
                             << stragglers.size());
  l_elem_.resize(n_);
  for (std::size_t r = 0; r < groups; ++r) {
    DOLBIE_REQUIRE(stragglers[r] < m, "straggler index "
                                          << stragglers[r]
                                          << " out of range for group size "
                                          << m);
    for (std::size_t j = 0; j < m; ++j) l_elem_[r * m + j] = group_cost[r];
  }
  if (all_affine_) {
    affine_max_acceptable_loop_multi(affine_slope_.data(),
                                     affine_intercept_.data(), x.data(), n_,
                                     l_elem_.data(), out.data());
  } else {
    inverse_max_each(
        [this](std::size_t i) { return l_elem_[i]; },
        [out, x](std::size_t i, double tilde) {
          out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
        });
  }
  for (std::size_t r = 0; r < groups; ++r) {
    const std::size_t s = r * m + stragglers[r];
    out[s] = x[s];
  }
}

}  // namespace dolbie::cost
