#include "cost/batch.h"

#include <typeinfo>

#include "common/error.h"
#include "cost/affine.h"
#include "cost/composite.h"
#include "cost/exponential.h"
#include "cost/logistic.h"
#include "cost/piecewise.h"
#include "cost/power.h"

namespace dolbie::cost {
namespace {

// Multi-versioned all-affine loops: GCC/Clang emit one clone per target
// and pick the widest the CPU supports at load time (ifunc), so the
// shipped binary stays baseline-portable. The loops are division-bound
// and IEEE 754 division is correctly rounded at every vector width, so
// the clones differ in speed only, never in bits.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DOLBIE_MULTIVERSIONED \
  __attribute__((target_clones("default", "avx2")))
#else
#define DOLBIE_MULTIVERSIONED
#endif

DOLBIE_MULTIVERSIONED
void affine_value_loop(const double* slope, const double* intercept,
                       const double* x, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = affine_cost::value_kernel(slope[i], intercept[i], x[i]);
  }
}

DOLBIE_MULTIVERSIONED
void affine_inverse_max_loop(const double* slope, const double* intercept,
                             std::size_t n, double l, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = affine_cost::inverse_max_kernel(slope[i], intercept[i], l);
  }
}

// Eq. (4) with the clamp fused in (same arithmetic as
// core::max_acceptable_workload; the caller pins the straggler).
DOLBIE_MULTIVERSIONED
void affine_max_acceptable_loop(const double* slope, const double* intercept,
                                const double* x, std::size_t n, double l,
                                double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double tilde =
        affine_cost::inverse_max_kernel(slope[i], intercept[i], l);
    out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
  }
}

}  // namespace

void batch_evaluator::rebind(const cost_view& costs) {
  n_ = costs.size();
  affine_index_.clear();
  affine_slope_.clear();
  affine_intercept_.clear();
  power_index_.clear();
  power_scale_.clear();
  power_exponent_.clear();
  power_intercept_.clear();
  exp_index_.clear();
  exp_scale_.clear();
  exp_rate_.clear();
  exp_intercept_.clear();
  sat_index_.clear();
  sat_scale_.clear();
  sat_knee_.clear();
  sat_intercept_.clear();
  piecewise_index_.clear();
  piecewise_f_.clear();
  composite_index_.clear();
  composite_f_.clear();
  generic_index_.clear();
  generic_f_.clear();

  for (std::size_t i = 0; i < n_; ++i) {
    const cost_function* f = costs[i];
    DOLBIE_REQUIRE(f != nullptr, "cost view entry " << i << " is null");
    // Every built-in family is `final`, so exact-typeid matching is a
    // complete (and cheap: one vtable load + pointer compare) classifier.
    const std::type_info& ti = typeid(*f);
    if (ti == typeid(affine_cost)) {
      const auto* c = static_cast<const affine_cost*>(f);
      affine_index_.push_back(i);
      affine_slope_.push_back(c->slope());
      affine_intercept_.push_back(c->intercept());
    } else if (ti == typeid(power_cost)) {
      const auto* c = static_cast<const power_cost*>(f);
      power_index_.push_back(i);
      power_scale_.push_back(c->scale());
      power_exponent_.push_back(c->exponent());
      power_intercept_.push_back(c->intercept());
    } else if (ti == typeid(exponential_cost)) {
      const auto* c = static_cast<const exponential_cost*>(f);
      exp_index_.push_back(i);
      exp_scale_.push_back(c->scale());
      exp_rate_.push_back(c->rate());
      exp_intercept_.push_back(c->intercept());
    } else if (ti == typeid(saturating_cost)) {
      const auto* c = static_cast<const saturating_cost*>(f);
      sat_index_.push_back(i);
      sat_scale_.push_back(c->scale());
      sat_knee_.push_back(c->knee());
      sat_intercept_.push_back(c->intercept());
    } else if (ti == typeid(piecewise_linear_cost)) {
      piecewise_index_.push_back(i);
      piecewise_f_.push_back(static_cast<const piecewise_linear_cost*>(f));
    } else if (ti == typeid(composite_cost)) {
      composite_index_.push_back(i);
      composite_f_.push_back(static_cast<const composite_cost*>(f));
    } else {
      generic_index_.push_back(i);
      generic_f_.push_back(f);
    }
  }
  // Costs were classified in index order, so a full affine lane is the
  // identity permutation.
  all_affine_ = affine_index_.size() == n_;
}

void batch_evaluator::values(std::span<const double> x,
                             std::span<double> out) const {
  DOLBIE_REQUIRE(x.size() == n_ && out.size() == n_,
                 "batch values: expected " << n_ << " entries, got x="
                                           << x.size() << " out="
                                           << out.size());
  if (all_affine_) {
    affine_value_loop(affine_slope_.data(), affine_intercept_.data(),
                      x.data(), n_, out.data());
    return;
  }
  for (std::size_t k = 0; k < affine_index_.size(); ++k) {
    const std::size_t i = affine_index_[k];
    out[i] = affine_cost::value_kernel(affine_slope_[k], affine_intercept_[k],
                                       x[i]);
  }
  for (std::size_t k = 0; k < power_index_.size(); ++k) {
    const std::size_t i = power_index_[k];
    out[i] = power_cost::value_kernel(power_scale_[k], power_exponent_[k],
                                      power_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < exp_index_.size(); ++k) {
    const std::size_t i = exp_index_[k];
    out[i] = exponential_cost::value_kernel(exp_scale_[k], exp_rate_[k],
                                            exp_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < sat_index_.size(); ++k) {
    const std::size_t i = sat_index_[k];
    out[i] = saturating_cost::value_kernel(sat_scale_[k], sat_knee_[k],
                                           sat_intercept_[k], x[i]);
  }
  for (std::size_t k = 0; k < piecewise_index_.size(); ++k) {
    const std::size_t i = piecewise_index_[k];
    out[i] = piecewise_f_[k]->value(x[i]);  // final class: devirtualized
  }
  for (std::size_t k = 0; k < composite_index_.size(); ++k) {
    const std::size_t i = composite_index_[k];
    out[i] = composite_f_[k]->value(x[i]);  // final class: devirtualized
  }
  for (std::size_t k = 0; k < generic_index_.size(); ++k) {
    const std::size_t i = generic_index_[k];
    out[i] = generic_f_[k]->value(x[i]);  // unknown type: virtual fallback
  }
}

template <class Emit>
void batch_evaluator::inverse_max_each(double l, Emit&& emit) const {
  for (std::size_t k = 0; k < affine_index_.size(); ++k) {
    emit(affine_index_[k], affine_cost::inverse_max_kernel(
                               affine_slope_[k], affine_intercept_[k], l));
  }
  for (std::size_t k = 0; k < power_index_.size(); ++k) {
    emit(power_index_[k],
         power_cost::inverse_max_kernel(power_scale_[k], power_exponent_[k],
                                        power_intercept_[k], l));
  }
  for (std::size_t k = 0; k < exp_index_.size(); ++k) {
    emit(exp_index_[k],
         exponential_cost::inverse_max_kernel(exp_scale_[k], exp_rate_[k],
                                              exp_intercept_[k], l));
  }
  for (std::size_t k = 0; k < sat_index_.size(); ++k) {
    emit(sat_index_[k],
         saturating_cost::inverse_max_kernel(sat_scale_[k], sat_knee_[k],
                                             sat_intercept_[k], l));
  }
  for (std::size_t k = 0; k < piecewise_index_.size(); ++k) {
    emit(piecewise_index_[k], piecewise_f_[k]->inverse_max(l));
  }
  for (std::size_t k = 0; k < composite_index_.size(); ++k) {
    // composite_cost::inverse_max is the devirtualized bisection template;
    // through a final-class pointer the whole probe loop inlines.
    emit(composite_index_[k], composite_f_[k]->inverse_max(l));
  }
  for (std::size_t k = 0; k < generic_index_.size(); ++k) {
    emit(generic_index_[k], generic_f_[k]->inverse_max(l));
  }
}

void batch_evaluator::inverse_max(double l, std::span<double> out) const {
  DOLBIE_REQUIRE(out.size() == n_, "batch inverse_max: expected "
                                       << n_ << " entries, got "
                                       << out.size());
  if (all_affine_) {
    affine_inverse_max_loop(affine_slope_.data(), affine_intercept_.data(),
                            n_, l, out.data());
    return;
  }
  inverse_max_each(l, [out](std::size_t i, double tilde) { out[i] = tilde; });
}

void batch_evaluator::max_acceptable(std::span<const double> x,
                                     double global_cost,
                                     std::size_t straggler,
                                     std::span<double> out) const {
  DOLBIE_REQUIRE(x.size() == n_ && out.size() == n_,
                 "batch max_acceptable: expected " << n_ << " entries, got x="
                                                   << x.size() << " out="
                                                   << out.size());
  DOLBIE_REQUIRE(straggler < n_,
                 "straggler index " << straggler << " out of range");
  // Same clamp as core::max_acceptable_workload, fused into the family
  // loops (single pass over out): the result is >= x_i in exact arithmetic
  // (f(x_i) <= l_t); the clamp absorbs bisection error.
  if (all_affine_) {
    affine_max_acceptable_loop(affine_slope_.data(), affine_intercept_.data(),
                               x.data(), n_, global_cost, out.data());
  } else {
    inverse_max_each(global_cost, [out, x](std::size_t i, double tilde) {
      out[i] = tilde < x[i] ? x[i] : (tilde > 1.0 ? 1.0 : tilde);
    });
  }
  out[straggler] = x[straggler];
}

}  // namespace dolbie::cost
