#include "cost/affine.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

affine_cost::affine_cost(double slope, double intercept)
    : slope_(slope), intercept_(intercept) {
  DOLBIE_REQUIRE(slope >= 0.0, "affine cost needs slope >= 0, got " << slope);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "affine cost needs intercept >= 0, got " << intercept);
}

double affine_cost::value(double x) const { return slope_ * x + intercept_; }

double affine_cost::inverse_max(double l) const {
  if (intercept_ > l) return 0.0;
  if (slope_ == 0.0) return 1.0;  // constant cost <= l everywhere
  return std::clamp((l - intercept_) / slope_, 0.0, 1.0);
}

std::string affine_cost::describe() const {
  std::ostringstream os;
  os << "affine(slope=" << slope_ << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
