#include "cost/affine.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

affine_cost::affine_cost(double slope, double intercept)
    : slope_(slope), intercept_(intercept) {
  DOLBIE_REQUIRE(slope >= 0.0, "affine cost needs slope >= 0, got " << slope);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "affine cost needs intercept >= 0, got " << intercept);
}

double affine_cost::value(double x) const {
  return value_kernel(slope_, intercept_, x);
}

double affine_cost::inverse_max(double l) const {
  return inverse_max_kernel(slope_, intercept_, l);
}

std::string affine_cost::describe() const {
  std::ostringstream os;
  os << "affine(slope=" << slope_ << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
