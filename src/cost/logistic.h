// Saturating cost f(x) = intercept + scale * x / (x + knee): increasing and
// strictly concave — the case where a max of such functions is genuinely
// non-convex, outside the assumptions of the convex online min-max methods
// the paper's related-work section rules out.
#pragma once

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = intercept + scale * x / (x + knee), scale >= 0, knee > 0.
class saturating_cost final : public cost_function {
 public:
  saturating_cost(double scale, double knee, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double scale() const { return scale_; }
  double knee() const { return knee_; }
  double intercept() const { return intercept_; }

  /// Analytic kernels shared with cost::batch_evaluator (bit-identical to
  /// the member functions by construction).
  static double value_kernel(double scale, double knee, double intercept,
                             double x) {
    return intercept + scale * x / (x + knee);
  }
  static double inverse_max_kernel(double scale, double knee, double intercept,
                                   double l) {
    if (intercept > l) return 0.0;
    if (scale == 0.0) return 1.0;
    const double y = (l - intercept) / scale;  // want x/(x+knee) <= y
    if (y >= 1.0) return 1.0;                  // saturation never reached
    // x/(x+k) = y  =>  x = y*k / (1-y)
    const double x = y * knee / (1.0 - y);
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  }

 private:
  double scale_;
  double knee_;
  double intercept_;
};

}  // namespace dolbie::cost
