// Saturating cost f(x) = intercept + scale * x / (x + knee): increasing and
// strictly concave — the case where a max of such functions is genuinely
// non-convex, outside the assumptions of the convex online min-max methods
// the paper's related-work section rules out.
#pragma once

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = intercept + scale * x / (x + knee), scale >= 0, knee > 0.
class saturating_cost final : public cost_function {
 public:
  saturating_cost(double scale, double knee, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double scale() const { return scale_; }
  double knee() const { return knee_; }
  double intercept() const { return intercept_; }

 private:
  double scale_;
  double knee_;
  double intercept_;
};

}  // namespace dolbie::cost
