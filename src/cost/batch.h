// Structure-of-arrays batch evaluator over a cost_view — the devirtualized
// round hot path. `rebind` classifies each entry once by concrete family
// (affine / power / exponential / saturating / piecewise / composite, with a
// virtual-dispatch lane for unknown user types) and copies the analytic
// parameters into per-family arrays. `values` / `inverse_max` /
// `max_acceptable` then run tight per-family loops over those arrays using
// the families' shared kernels: no virtual call, no heap allocation, and
// bit-identical results to the scalar per-object API (asserted by
// tests/batch_cost_test).
//
// Intended use: keep one batch_evaluator alive per policy/run and rebind it
// whenever the round's cost vector changes. Rebinding reuses the internal
// storage, so after the first round with the steady-state family mix the
// whole evaluate -> inverse_max path performs zero allocations.
#pragma once

#include <span>
#include <vector>

#include "cost/cost_function.h"

namespace dolbie::cost {

class piecewise_linear_cost;
class composite_cost;

class batch_evaluator {
 public:
  batch_evaluator() = default;
  explicit batch_evaluator(const cost_view& costs) { rebind(costs); }

  /// Regroup over a (possibly different) cost view. The view's pointers are
  /// borrowed: they must outlive every subsequent evaluation. Reuses the
  /// internal lane storage — allocation-free once capacities are warm.
  void rebind(const cost_view& costs);

  /// Number of cost functions currently bound.
  std::size_t size() const { return n_; }

  /// out[i] = f_i(x[i]). Both spans must have size() entries.
  void values(std::span<const double> x, std::span<double> out) const;

  /// out[i] = inverse_max_i(l). `out` must have size() entries.
  void inverse_max(double l, std::span<double> out) const;

  /// The Eq. (4) vector: out[i] = clamp(inverse_max_i(l), x[i], 1) for
  /// every non-straggler, out[straggler] = x[straggler]. Bit-identical to
  /// core::max_acceptable_vector over the same view.
  void max_acceptable(std::span<const double> x, double global_cost,
                      std::size_t straggler, std::span<double> out) const;

  /// Entries evaluated through typed per-family lanes (vs. the virtual
  /// fallback lane). Exposed for tests and the hot-path bench.
  std::size_t devirtualized_count() const { return n_ - generic_f_.size(); }
  std::size_t generic_count() const { return generic_f_.size(); }

 private:
  // Calls emit(i, tilde_i) with tilde_i = inverse_max_i(l) for every bound
  // cost, lane by lane. Lets max_acceptable fuse the Eq. (4) clamp into the
  // family loops (one pass over out) while inverse_max shares the exact
  // same per-element arithmetic. Instantiated in batch.cpp only.
  template <class Emit>
  void inverse_max_each(double l, Emit&& emit) const;

  std::size_t n_ = 0;
  // True when every bound cost is affine (the paper's distributed-ML
  // latency model, and the common case). The affine lane is then the
  // identity permutation, so evaluation runs a contiguous branch-free loop
  // the compiler can vectorize instead of indexing through affine_index_.
  bool all_affine_ = false;

  // Fully-analytic families, parameters copied into SoA arrays.
  std::vector<std::size_t> affine_index_;
  std::vector<double> affine_slope_, affine_intercept_;

  std::vector<std::size_t> power_index_;
  std::vector<double> power_scale_, power_exponent_, power_intercept_;

  std::vector<std::size_t> exp_index_;
  std::vector<double> exp_scale_, exp_rate_, exp_intercept_;

  std::vector<std::size_t> sat_index_;
  std::vector<double> sat_scale_, sat_knee_, sat_intercept_;

  // Families with internal structure: typed pointers so the (final-class)
  // member calls devirtualize and inline.
  std::vector<std::size_t> piecewise_index_;
  std::vector<const piecewise_linear_cost*> piecewise_f_;

  std::vector<std::size_t> composite_index_;
  std::vector<const composite_cost*> composite_f_;

  // Unknown concrete types: classic virtual dispatch.
  std::vector<std::size_t> generic_index_;
  std::vector<const cost_function*> generic_f_;
};

}  // namespace dolbie::cost
