// Structure-of-arrays batch evaluator over a cost_view — the devirtualized
// round hot path. `rebind` classifies each entry once by concrete family
// (affine / power / exponential / saturating / piecewise / composite, with a
// virtual-dispatch lane for unknown user types) and copies the analytic
// parameters into per-family arrays. `values` / `inverse_max` /
// `max_acceptable` then run tight per-family loops over those arrays using
// the families' shared kernels: no virtual call, no heap allocation, and
// bit-identical results to the scalar per-object API (asserted by
// tests/batch_cost_test).
//
// Families without a closed-form inverse (composite, plus user types that
// opt into `inverse_max_via_bounded_bisection`) do not fall back to one
// scalar bisection per element: all their searches run through one shared
// lock-step loop (`bisect_max_true_lanes`), probing every lane per
// iteration over the flattened SoA term arrays with branch-free interval
// updates. Each lane's probe sequence is exactly the scalar bisection's, so
// bit-identity survives. Piecewise costs get a flattened knot lane with the
// same analytic segment-walk arithmetic as the scalar member.
//
// Intended use: keep one batch_evaluator alive per policy/run and rebind it
// whenever the round's cost vector changes. Rebinding reuses the internal
// storage, so after the first round with the steady-state family mix the
// whole evaluate -> inverse_max path performs zero allocations. The
// evaluation methods are const but use internal scratch, so a single
// instance must not be shared across threads (each run owns its own).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bisect.h"
#include "cost/cost_function.h"

namespace dolbie::cost {

class batch_evaluator {
 public:
  batch_evaluator() = default;
  explicit batch_evaluator(const cost_view& costs) { rebind(costs); }

  /// Regroup over a (possibly different) cost view. The view's pointers are
  /// borrowed: they must outlive every subsequent evaluation. Reuses the
  /// internal lane storage — allocation-free once capacities are warm.
  void rebind(const cost_view& costs);

  /// Number of cost functions currently bound.
  std::size_t size() const { return n_; }

  /// out[i] = f_i(x[i]). Both spans must have size() entries.
  void values(std::span<const double> x, std::span<double> out) const;

  /// out[i] = inverse_max_i(l). `out` must have size() entries.
  void inverse_max(double l, std::span<double> out) const;

  /// The Eq. (4) vector: out[i] = clamp(inverse_max_i(l), x[i], 1) for
  /// every non-straggler, out[straggler] = x[straggler]. Bit-identical to
  /// core::max_acceptable_vector over the same view.
  void max_acceptable(std::span<const double> x, double global_cost,
                      std::size_t straggler, std::span<double> out) const;

  /// Cross-realization Eq. (4): the bound view is the concatenation of
  /// `group_cost.size()` equally-sized realization groups (size() must be a
  /// multiple of the group count). Group r gets its own round cost
  /// group_cost[r] and its own straggler stragglers[r] (an index *within*
  /// the group). Equivalent to one `max_acceptable` call per group over
  /// that group's sub-view — bit-identical, because every element's
  /// arithmetic depends only on its own parameters and its group's l — but
  /// all groups' bisection lanes share one lock-step loop, which is where
  /// the sweep-throughput win comes from.
  void max_acceptable_groups(std::span<const double> x,
                             std::span<const double> group_cost,
                             std::span<const std::size_t> stragglers,
                             std::span<double> out) const;

  /// Entries evaluated through typed per-family lanes (vs. the virtual
  /// lanes). Bounded-generic entries bisect virtual `value` calls, so they
  /// count as virtual here even though their searches run lock-step.
  std::size_t devirtualized_count() const {
    return n_ - generic_f_.size() - bounded_f_.size();
  }
  std::size_t generic_count() const { return generic_f_.size(); }
  /// Unknown types opted into the lock-step bounded-bisection lane.
  std::size_t bounded_generic_count() const { return bounded_f_.size(); }

 private:
  // Calls emit(i, tilde_i) with tilde_i = inverse_max_i(l_at(i)) for every
  // bound cost, lane by lane (emission order is unspecified; each i is
  // emitted exactly once). Lets max_acceptable fuse the Eq. (4) clamp into
  // the family loops while inverse_max shares the exact same per-element
  // arithmetic, and lets the grouped entry point vary l per element.
  // Instantiated in batch.cpp only.
  template <class LAt, class Emit>
  void inverse_max_each(LAt&& l_at, Emit&& emit) const;

  double piecewise_value(std::size_t k, double x) const;
  double piecewise_inverse_max(std::size_t k, double l) const;
  double composite_value(std::size_t k, double x) const;

  std::size_t n_ = 0;
  // True when every bound cost is affine (the paper's distributed-ML
  // latency model, and the common case). The affine lane is then the
  // identity permutation, so evaluation runs a contiguous branch-free loop
  // the compiler can vectorize instead of indexing through affine_index_.
  bool all_affine_ = false;

  // Fully-analytic families, parameters copied into SoA arrays.
  std::vector<std::size_t> affine_index_;
  std::vector<double> affine_slope_, affine_intercept_;

  std::vector<std::size_t> power_index_;
  std::vector<double> power_scale_, power_exponent_, power_intercept_;

  std::vector<std::size_t> exp_index_;
  std::vector<double> exp_scale_, exp_rate_, exp_intercept_;

  std::vector<std::size_t> sat_index_;
  std::vector<double> sat_scale_, sat_knee_, sat_intercept_;

  // Piecewise-linear lane: knots flattened CSR-style (lane k's knots live
  // at [pw_begin_[k], pw_begin_[k+1])). Value and inverse replicate the
  // scalar members' arithmetic exactly over the flat arrays.
  std::vector<std::size_t> piecewise_index_;
  std::vector<std::uint32_t> pw_begin_;
  std::vector<double> pw_x_, pw_y_;

  // Composite lane: terms flattened CSR-style (lane k's terms live at
  // [comp_begin_[k], comp_begin_[k+1])). Analytic terms carry their family
  // kind + parameters; terms of unknown type stay opaque (virtual value
  // through term_f_). Accumulation runs in original term order so the sum
  // matches composite_cost::value bit for bit.
  std::vector<std::size_t> composite_index_;
  std::vector<std::uint32_t> comp_begin_;
  std::vector<std::uint8_t> term_kind_;
  std::vector<double> term_weight_, term_p0_, term_p1_, term_p2_;
  std::vector<const cost_function*> term_f_;  // null for analytic terms

  // Unknown types opted into lock-step bisection of their virtual value()
  // (see cost_function::inverse_max_via_bounded_bisection).
  std::vector<std::size_t> bounded_index_;
  std::vector<const cost_function*> bounded_f_;

  // Unknown concrete types: classic per-element virtual dispatch.
  std::vector<std::size_t> generic_index_;
  std::vector<const cost_function*> generic_f_;

  // Lock-step search state, reused across calls (the public evaluation
  // methods are const; all of this is pure scratch).
  mutable std::vector<std::size_t> lane_slot_;
  mutable std::vector<double> lane_good_, lane_bad_, lane_l_;
  mutable bisect_lane_scratch lane_scratch_;
  mutable std::vector<double> l_elem_;  // per-element l for grouped calls
};

}  // namespace dolbie::cost
