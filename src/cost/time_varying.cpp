#include "cost/time_varying.h"

#include "common/error.h"
#include "cost/affine.h"
#include "cost/logistic.h"
#include "cost/power.h"

namespace dolbie::cost {

affine_sequence::affine_sequence(std::unique_ptr<process> slope,
                                 std::unique_ptr<process> intercept)
    : slope_(std::move(slope)), intercept_(std::move(intercept)) {
  DOLBIE_REQUIRE(slope_ != nullptr && intercept_ != nullptr,
                 "affine sequence needs non-null processes");
}

std::unique_ptr<const cost_function> affine_sequence::next(rng& gen) {
  const double slope = slope_->step(gen);
  const double intercept = intercept_->step(gen);
  return std::make_unique<affine_cost>(slope, intercept);
}

power_sequence::power_sequence(std::unique_ptr<process> scale, double exponent,
                               double intercept)
    : scale_(std::move(scale)), exponent_(exponent), intercept_(intercept) {
  DOLBIE_REQUIRE(scale_ != nullptr, "power sequence needs a non-null process");
  DOLBIE_REQUIRE(exponent > 0.0, "power exponent must be > 0, got "
                                     << exponent);
  DOLBIE_REQUIRE(intercept >= 0.0, "power intercept must be >= 0, got "
                                       << intercept);
}

std::unique_ptr<const cost_function> power_sequence::next(rng& gen) {
  return std::make_unique<power_cost>(scale_->step(gen), exponent_,
                                      intercept_);
}

saturating_sequence::saturating_sequence(std::unique_ptr<process> scale,
                                         double knee, double intercept)
    : scale_(std::move(scale)), knee_(knee), intercept_(intercept) {
  DOLBIE_REQUIRE(scale_ != nullptr,
                 "saturating sequence needs a non-null process");
  DOLBIE_REQUIRE(knee > 0.0, "saturating knee must be > 0, got " << knee);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "saturating intercept must be >= 0, got " << intercept);
}

std::unique_ptr<const cost_function> saturating_sequence::next(rng& gen) {
  return std::make_unique<saturating_cost>(scale_->step(gen), knee_,
                                           intercept_);
}

scripted_sequence::scripted_sequence(
    std::vector<std::unique_ptr<const cost_function> (*)()> script)
    : script_(std::move(script)) {
  DOLBIE_REQUIRE(!script_.empty(), "scripted sequence needs >= 1 factory");
}

std::unique_ptr<const cost_function> scripted_sequence::next(rng&) {
  auto out = script_[at_]();
  at_ = (at_ + 1) % script_.size();
  return out;
}

}  // namespace dolbie::cost
