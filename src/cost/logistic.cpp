#include "cost/logistic.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

saturating_cost::saturating_cost(double scale, double knee, double intercept)
    : scale_(scale), knee_(knee), intercept_(intercept) {
  DOLBIE_REQUIRE(scale >= 0.0,
                 "saturating cost needs scale >= 0, got " << scale);
  DOLBIE_REQUIRE(knee > 0.0, "saturating cost needs knee > 0, got " << knee);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "saturating cost needs intercept >= 0, got " << intercept);
}

double saturating_cost::value(double x) const {
  return intercept_ + scale_ * x / (x + knee_);
}

double saturating_cost::inverse_max(double l) const {
  if (intercept_ > l) return 0.0;
  if (scale_ == 0.0) return 1.0;
  const double y = (l - intercept_) / scale_;  // want x/(x+knee) <= y
  if (y >= 1.0) return 1.0;                    // saturation level never reached
  // x/(x+k) = y  =>  x = y*k / (1-y)
  return std::clamp(y * knee_ / (1.0 - y), 0.0, 1.0);
}

std::string saturating_cost::describe() const {
  std::ostringstream os;
  os << "saturating(scale=" << scale_ << ", knee=" << knee_
     << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
