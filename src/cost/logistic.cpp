#include "cost/logistic.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace dolbie::cost {

saturating_cost::saturating_cost(double scale, double knee, double intercept)
    : scale_(scale), knee_(knee), intercept_(intercept) {
  DOLBIE_REQUIRE(scale >= 0.0,
                 "saturating cost needs scale >= 0, got " << scale);
  DOLBIE_REQUIRE(knee > 0.0, "saturating cost needs knee > 0, got " << knee);
  DOLBIE_REQUIRE(intercept >= 0.0,
                 "saturating cost needs intercept >= 0, got " << intercept);
}

double saturating_cost::value(double x) const {
  return value_kernel(scale_, knee_, intercept_, x);
}

double saturating_cost::inverse_max(double l) const {
  return inverse_max_kernel(scale_, knee_, intercept_, l);
}

std::string saturating_cost::describe() const {
  std::ostringstream os;
  os << "saturating(scale=" << scale_ << ", knee=" << knee_
     << ", intercept=" << intercept_ << ")";
  return os.str();
}

}  // namespace dolbie::cost
