#include "cost/cost_function.h"

#include "common/error.h"

namespace dolbie::cost {

double cost_function::inverse_max(double l) const {
  return inverse_max_by_bisection(*this, l);
}

cost_view view_of(const cost_vector& costs) {
  cost_view out;
  view_into(costs, out);
  return out;
}

void view_into(const cost_vector& costs, cost_view& out) {
  out.clear();
  out.reserve(costs.size());
  for (const auto& c : costs) out.push_back(c.get());
}

std::vector<double> evaluate(const cost_view& costs,
                             const std::vector<double>& x) {
  std::vector<double> out;
  evaluate_into(costs, x, out);
  return out;
}

void evaluate_into(const cost_view& costs, std::span<const double> x,
                   std::vector<double>& out) {
  DOLBIE_REQUIRE(costs.size() == x.size(), "evaluate: " << costs.size()
                                                        << " costs vs "
                                                        << x.size()
                                                        << " coordinates");
  out.resize(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    out[i] = costs[i]->value(x[i]);
  }
}

bool appears_increasing(const cost_function& f, int samples,
                        double tolerance) {
  double prev = f.value(0.0);
  for (int k = 1; k <= samples; ++k) {
    const double x = static_cast<double>(k) / samples;
    const double v = f.value(x);
    if (v < prev - tolerance) return false;
    prev = v;
  }
  return true;
}

}  // namespace dolbie::cost
