#include "cost/cost_function.h"

#include "common/bisect.h"
#include "common/error.h"

namespace dolbie::cost {

double cost_function::inverse_max(double l) const {
  if (value(0.0) > l) return 0.0;
  if (value(1.0) <= l) return 1.0;
  return bisect_max_true(0.0, 1.0,
                         [this, l](double x) { return value(x) <= l; });
}

cost_view view_of(const cost_vector& costs) {
  cost_view out;
  out.reserve(costs.size());
  for (const auto& c : costs) out.push_back(c.get());
  return out;
}

std::vector<double> evaluate(const cost_view& costs,
                             const std::vector<double>& x) {
  DOLBIE_REQUIRE(costs.size() == x.size(), "evaluate: " << costs.size()
                                                        << " costs vs "
                                                        << x.size()
                                                        << " coordinates");
  std::vector<double> out;
  out.reserve(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    out.push_back(costs[i]->value(x[i]));
  }
  return out;
}

bool appears_increasing(const cost_function& f, int samples,
                        double tolerance) {
  double prev = f.value(0.0);
  for (int k = 1; k <= samples; ++k) {
    const double x = static_cast<double>(k) / samples;
    const double v = f.value(x);
    if (v < prev - tolerance) return false;
    prev = v;
  }
  return true;
}

}  // namespace dolbie::cost
