// Power-law cost f(x) = intercept + scale * x^exponent. Exponent > 1 gives
// the convex super-linear costs where ABS's proportional rule breaks down;
// 0 < exponent < 1 gives concave (still increasing, non-convex as part of a
// max) costs exercising DOLBIE's convexity-free analysis.
#pragma once

#include <cmath>

#include "cost/cost_function.h"

namespace dolbie::cost {

/// f(x) = intercept + scale * x^exponent with scale >= 0, exponent > 0.
class power_cost final : public cost_function {
 public:
  power_cost(double scale, double exponent, double intercept);

  double value(double x) const override;
  double inverse_max(double l) const override;  // analytic
  std::string describe() const override;

  double scale() const { return scale_; }
  double exponent() const { return exponent_; }
  double intercept() const { return intercept_; }

  /// Analytic kernels shared with cost::batch_evaluator (bit-identical to
  /// the member functions by construction).
  static double value_kernel(double scale, double exponent, double intercept,
                             double x) {
    return intercept + scale * std::pow(x, exponent);
  }
  static double inverse_max_kernel(double scale, double exponent,
                                   double intercept, double l) {
    if (intercept > l) return 0.0;
    if (scale == 0.0) return 1.0;
    const double y = (l - intercept) / scale;
    const double x = std::pow(y, 1.0 / exponent);
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  }

 private:
  double scale_;
  double exponent_;
  double intercept_;
};

}  // namespace dolbie::cost
