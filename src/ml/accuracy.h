// The saturating learning-curve model: training accuracy as a function of
// completed SGD steps. With a fixed global batch size every policy performs
// the same number of steps per round, so accuracy-vs-round is identical
// across policies and accuracy-vs-wall-clock differences come purely from
// the per-round latency each policy achieves — the structure of Figs. 6-8.
#pragma once

#include <cstddef>

#include "ml/model.h"

namespace dolbie::ml {

/// Training accuracy after `steps` SGD steps of `model`:
/// acc_max - (acc_max - acc_0) * (1 + steps/kappa)^(-beta).
double accuracy_after(model_kind model, std::size_t steps);

/// Smallest step count reaching `target` accuracy, or SIZE_MAX when the
/// curve never reaches it (target >= acc_max). Closed-form inversion.
std::size_t steps_to_accuracy(model_kind model, double target);

}  // namespace dolbie::ml
