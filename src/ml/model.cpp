#include "ml/model.h"

#include "common/error.h"

namespace dolbie::ml {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

// Parameter counts are the standard CIFAR-10 variants; transmitted bytes
// assume float32 parameters. Learning-curve constants are fitted so that
// (with B = 256, ~195 rounds/epoch) LeNet5 plateaus earliest and VGG16
// needs the most steps, mirroring typical CIFAR-10 training-accuracy runs.
constexpr model_profile kLeNet5 = {
    "LeNet5", 62'006.0, 62'006.0 * 4.0, 0.10, 0.990, 60.0, 0.80};
constexpr model_profile kResNet18 = {
    "ResNet18", 11'173'962.0, 11'173'962.0 * 4.0, 0.10, 0.995, 100.0, 0.70};
constexpr model_profile kVgg16 = {
    "VGG16", 138'357'544.0, 138'357'544.0 * 4.0, 0.10, 0.993, 120.0, 0.65};

}  // namespace

const model_profile& profile(model_kind kind) {
  switch (kind) {
    case model_kind::lenet5:
      return kLeNet5;
    case model_kind::resnet18:
      return kResNet18;
    case model_kind::vgg16:
      return kVgg16;
  }
  DOLBIE_REQUIRE(false, "unknown model kind");
}

std::string_view model_name(model_kind kind) { return profile(kind).name; }

// Silence "kMiB unused" if byte maths changes; keep for future profiles.
static_assert(kMiB > 0.0);

}  // namespace dolbie::ml
