#include "ml/accuracy.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace dolbie::ml {

double accuracy_after(model_kind model, std::size_t steps) {
  const model_profile& p = profile(model);
  const double k = static_cast<double>(steps);
  return p.acc_max -
         (p.acc_max - p.acc_initial) * std::pow(1.0 + k / p.kappa, -p.beta);
}

std::size_t steps_to_accuracy(model_kind model, double target) {
  const model_profile& p = profile(model);
  DOLBIE_REQUIRE(target > 0.0 && target < 1.0,
                 "target accuracy must be in (0,1), got " << target);
  if (target <= p.acc_initial) return 0;
  if (target >= p.acc_max) return std::numeric_limits<std::size_t>::max();
  // Invert: (acc_max - target)/(acc_max - acc_0) = (1 + k/kappa)^(-beta).
  const double ratio = (p.acc_max - target) / (p.acc_max - p.acc_initial);
  const double k = p.kappa * (std::pow(ratio, -1.0 / p.beta) - 1.0);
  return static_cast<std::size_t>(std::ceil(k));
}

}  // namespace dolbie::ml
