// The per-round latency model of Sec. III-A:
//
//   f_{i,t}(b) = b * B / gamma_{i,t}  +  d_i / phi_{i,t}
//                \__ processing __/     \__ communication __/
//
// with b the batch fraction, B the global batch size, gamma the realized
// processing speed (samples/s), d the transmitted model bytes and phi the
// realized data rate (bytes/s).
#pragma once

#include <memory>

#include "cost/affine.h"

namespace dolbie::ml {

/// Realized per-round conditions of one worker.
struct worker_conditions {
  double gamma = 1.0;  ///< processing speed, samples/second
  double phi = 1.0;    ///< data rate, bytes/second
};

/// Decomposition of one worker's round latency.
struct worker_round_time {
  double compute = 0.0;  ///< b * B / gamma
  double comm = 0.0;     ///< d / phi
  double total() const { return compute + comm; }
};

/// Latency decomposition for batch fraction `fraction` of global batch
/// `global_batch` under `conditions`, for a model of `model_bytes`.
worker_round_time round_time(double fraction, double global_batch,
                             double model_bytes,
                             const worker_conditions& conditions);

/// The round's cost function for these conditions: an affine cost with
/// slope B/gamma and intercept d/phi (exact analytic inverse).
std::unique_ptr<const cost::affine_cost> round_cost(
    double global_batch, double model_bytes,
    const worker_conditions& conditions);

}  // namespace dolbie::ml
