#include "ml/cluster.h"

#include "common/error.h"

namespace dolbie::ml {

cluster::cluster(std::size_t n_workers, model_kind model, std::uint64_t seed,
                 cluster_options options)
    : model_(model), model_bytes_(profile(model).model_bytes) {
  DOLBIE_REQUIRE(n_workers >= 1, "cluster needs at least one worker");
  DOLBIE_REQUIRE(options.contention_factor > 0.0 &&
                     options.contention_factor <= 1.0,
                 "contention factor must be in (0,1], got "
                     << options.contention_factor);
  rng root(seed);
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    worker w{.kind = all_processors[static_cast<std::size_t>(root.uniform_int(
                 0, static_cast<std::int64_t>(all_processors.size()) - 1))],
             .base_gamma = 0.0,
             .speed_factor = nullptr,
             .rate = nullptr,
             .gen = root.fork(i)};
    w.base_gamma = options.speed_scale * base_throughput(w.kind, model);
    auto drift = std::make_unique<cost::ar1_process>(
        1.0, options.speed_ar1_rho, options.speed_ar1_sigma,
        options.speed_floor_factor, options.speed_ceil_factor);
    auto contention = std::make_unique<cost::markov_contention_process>(
        1.0, options.contention_factor, options.contention_p_enter,
        options.contention_p_exit);
    w.speed_factor = std::make_unique<cost::product_process>(
        std::move(drift), std::move(contention));
    w.rate = std::make_unique<cost::bounded_walk_process>(
        options.rate_start, options.rate_sigma, options.rate_floor,
        options.rate_ceil);
    workers_.push_back(std::move(w));
  }
}

processor_kind cluster::kind(std::size_t worker) const {
  DOLBIE_REQUIRE(worker < workers_.size(), "worker index out of range");
  return workers_[worker].kind;
}

void cluster::advance_round() {
  for (worker& w : workers_) {
    w.speed_factor->step(w.gen);
    w.rate->step(w.gen);
  }
}

worker_conditions cluster::conditions(std::size_t worker) const {
  DOLBIE_REQUIRE(worker < workers_.size(), "worker index out of range");
  const auto& w = workers_[worker];
  return {.gamma = w.base_gamma * w.speed_factor->current(),
          .phi = w.rate->current()};
}

cost::cost_vector cluster::round_costs(double global_batch) const {
  cost::cost_vector out;
  out.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    out.push_back(round_cost(global_batch, model_bytes_, conditions(i)));
  }
  return out;
}

}  // namespace dolbie::ml
