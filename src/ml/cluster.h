// A simulated heterogeneous training cluster: N workers, each equipped with
// a processor sampled uniformly at random from the catalogue (as in the
// paper's experiments) plus stochastic processes for its per-round
// processing speed gamma_{i,t} (AR(1) drift times Markov contention) and
// data rate phi_{i,t} (bounded multiplicative walk).
//
// The environment is exogenous: the realized (gamma, phi) sequence depends
// only on the seed, never on the policy's decisions, so every policy run
// with the same seed faces an identical cost stream — the premise of the
// paper's policy comparisons.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "cost/process.h"
#include "ml/latency.h"
#include "ml/processor.h"

namespace dolbie::ml {

/// Knobs controlling cluster dynamics.
struct cluster_options {
  /// Calibration multiplier on every processor's nominal throughput (and
  /// hence 1/latency scale). Used by ablation benches to study how the
  /// *absolute* cost scale affects scale-sensitive policies (OGD's
  /// beta * gradient step); the scale-free policies are invariant to it.
  double speed_scale = 1.0;
  // gamma drift: multiplicative AR(1) factor around 1.
  double speed_ar1_rho = 0.8;
  double speed_ar1_sigma = 0.05;
  double speed_floor_factor = 0.6;
  double speed_ceil_factor = 1.4;
  // gamma contention: Markov-modulated slowdown episodes.
  double contention_factor = 0.5;
  double contention_p_enter = 0.05;
  double contention_p_exit = 0.30;
  // phi: data rate walk, bytes/second.
  double rate_start = 1.2e10;  ///< ~96 Gbit/s effective fabric
  double rate_sigma = 0.10;
  double rate_floor = 0.6e10;
  double rate_ceil = 2.4e10;
};

class cluster {
 public:
  /// Build an N-worker cluster for `model`, sampling processors with `seed`.
  cluster(std::size_t n_workers, model_kind model, std::uint64_t seed,
          cluster_options options = {});

  std::size_t size() const { return workers_.size(); }
  model_kind model() const { return model_; }

  processor_kind kind(std::size_t worker) const;

  /// Advance every worker's processes one round.
  void advance_round();

  /// Realized conditions of `worker` for the current round.
  worker_conditions conditions(std::size_t worker) const;

  /// The current round's cost functions f_{i,t}(b) = bB/gamma + d/phi.
  cost::cost_vector round_costs(double global_batch) const;

 private:
  struct worker {
    processor_kind kind;
    double base_gamma = 0.0;
    std::unique_ptr<cost::process> speed_factor;  ///< multiplies base_gamma
    std::unique_ptr<cost::process> rate;          ///< phi, bytes/s
    rng gen;
  };

  model_kind model_;
  double model_bytes_;
  std::vector<worker> workers_;
};

}  // namespace dolbie::ml
