// The heterogeneous processor catalogue of the paper's testbed: five
// processor types sampled uniformly at random per worker (Sec. VI-B).
// Throughputs are representative samples-per-second figures for CIFAR-10
// training of each model — stand-ins for the paper's "actual measured
// computation time", chosen to preserve the GPU/CPU heterogeneity ratios
// (and their growth from LeNet5 to VGG16) that drive the evaluation.
#pragma once

#include <array>
#include <string_view>

#include "ml/model.h"

namespace dolbie::ml {

enum class processor_kind {
  tesla_v100,    ///< NVIDIA Tesla V100
  tesla_p100,    ///< NVIDIA Tesla P100
  t4,            ///< NVIDIA T4
  cascade_lake,  ///< Intel Xeon Gold 6238 @ 2.10GHz
  broadwell,     ///< Intel E5-2683 v4 @ 2.1GHz
};

inline constexpr std::array<processor_kind, 5> all_processors = {
    processor_kind::tesla_v100, processor_kind::tesla_p100,
    processor_kind::t4, processor_kind::cascade_lake,
    processor_kind::broadwell};

/// Human-readable processor name.
std::string_view processor_name(processor_kind kind);

/// True for the GPU types (used by the per-worker figure colour grouping).
bool is_gpu(processor_kind kind);

/// Nominal training throughput in samples/second of `kind` on `model`
/// (CIFAR-10, SGD, cross-entropy). The per-round realized speed fluctuates
/// around this via the cluster's stochastic processes.
double base_throughput(processor_kind kind, model_kind model);

}  // namespace dolbie::ml
