#include "ml/trainer.h"

#include <chrono>

#include "common/error.h"
#include "common/simplex.h"
#include "ml/accuracy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::ml {

double trainer_result::mean_utilization() const {
  const double busy = total_compute + total_comm;
  const double available = busy + total_wait;
  return available > 0.0 ? busy / available : 0.0;
}

double trainer_result::time_to_accuracy(model_kind model,
                                        double target) const {
  const std::size_t steps = steps_to_accuracy(model, target);
  if (steps == 0) return 0.0;
  if (steps > round_latency.size()) return -1.0;
  double t = 0.0;
  for (std::size_t r = 0; r < steps; ++r) t += round_latency[r];
  return t;
}

trainer_result train(core::online_policy& policy,
                     const trainer_options& options) {
  DOLBIE_REQUIRE(policy.workers() == options.n_workers,
                 "policy configured for " << policy.workers()
                                          << " workers, trainer for "
                                          << options.n_workers);
  DOLBIE_REQUIRE(options.rounds >= 1, "need at least one round");
  using clock = std::chrono::steady_clock;

  policy.reset();
  cluster workers(options.n_workers, options.model, options.seed,
                  options.cluster);
  const double model_bytes = profile(options.model).model_bytes;

  obs::tracer* tr = options.tracer;
  obs::counter* rounds_counter = nullptr;
  obs::gauge* latency_gauge = nullptr;
  obs::gauge* accuracy_gauge = nullptr;
  obs::histogram* latency_hist = nullptr;
  if (options.metrics != nullptr) {
    rounds_counter = &options.metrics->counter_named("ml.rounds");
    latency_gauge = &options.metrics->gauge_named("ml.round_latency");
    accuracy_gauge = &options.metrics->gauge_named("ml.accuracy");
    latency_hist = &options.metrics->histogram_named(
        "ml.round_latency_seconds", obs::latency_buckets());
  }

  trainer_result result;
  result.round_latency.set_name("round_latency");
  result.accuracy.set_name("accuracy");
  result.round_latency.reserve(options.rounds);
  result.accuracy.reserve(options.rounds);
  if (options.record_per_worker) {
    result.worker_latency.resize(options.n_workers);
    result.worker_batch.resize(options.n_workers);
    for (std::size_t i = 0; i < options.n_workers; ++i) {
      result.worker_latency[i].set_name(
          std::string(processor_name(workers.kind(i))));
      result.worker_batch[i].set_name(
          std::string(processor_name(workers.kind(i))));
    }
  }

  // Hoisted round scratch, refreshed in place as the cost vector changes.
  cost::cost_view view;
  std::vector<double> totals(options.n_workers, 0.0);

  for (std::size_t t = 0; t < options.rounds; ++t) {
    obs::span round_span(tr, options.trace_lane, t, "train_round", "ml");
    workers.advance_round();
    const cost::cost_vector costs = workers.round_costs(options.global_batch);
    cost::view_into(costs, view);

    // Clairvoyant preview (OPT only), timed as decision overhead.
    if (policy.clairvoyant()) {
      const auto begin = clock::now();
      policy.preview(view);
      result.decision_seconds +=
          std::chrono::duration<double>(clock::now() - begin).count();
    }

    // Play b_t: the round runs to the synchronization barrier.
    const core::allocation& b = policy.current();
    double round_latency = 0.0;
    totals.assign(options.n_workers, 0.0);
    double round_compute = 0.0;
    double round_comm = 0.0;
    for (std::size_t i = 0; i < options.n_workers; ++i) {
      const worker_round_time wt = round_time(
          b[i], options.global_batch, model_bytes, workers.conditions(i));
      totals[i] = wt.total();
      round_compute += wt.compute;
      round_comm += wt.comm;
      if (totals[i] > round_latency) round_latency = totals[i];
    }
    result.total_compute += round_compute;
    result.total_comm += round_comm;
    for (double wtotal : totals) {
      result.total_wait += round_latency - wtotal;
    }
    result.round_latency.push(round_latency);
    result.total_time += round_latency;
    if (options.record_per_worker) {
      for (std::size_t i = 0; i < options.n_workers; ++i) {
        result.worker_latency[i].push(totals[i]);
        result.worker_batch[i].push(b[i] * options.global_batch);
      }
    }

    // One SGD step completed: accuracy advances on the shared curve.
    result.accuracy.push(accuracy_after(options.model, t + 1));

    // Reveal the costs; the policy prepares b_{t+1} (timed).
    core::round_feedback feedback;
    feedback.costs = &view;
    feedback.local_costs = totals;
    const auto begin = clock::now();
    policy.observe(feedback);
    result.decision_seconds +=
        std::chrono::duration<double>(clock::now() - begin).count();

    round_span.arg("latency_seconds", round_latency);
    round_span.arg("accuracy", accuracy_after(options.model, t + 1));
    if (rounds_counter != nullptr) {
      rounds_counter->add(1);
      latency_gauge->set(round_latency);
      accuracy_gauge->set(accuracy_after(options.model, t + 1));
      latency_hist->observe(round_latency);
    }
  }
  return result;
}

}  // namespace dolbie::ml
