#include "ml/latency.h"

#include "common/error.h"

namespace dolbie::ml {

worker_round_time round_time(double fraction, double global_batch,
                             double model_bytes,
                             const worker_conditions& conditions) {
  DOLBIE_REQUIRE(fraction >= 0.0 && fraction <= 1.0 + 1e-9,
                 "batch fraction " << fraction << " outside [0,1]");
  DOLBIE_REQUIRE(global_batch > 0.0, "global batch must be > 0");
  DOLBIE_REQUIRE(conditions.gamma > 0.0, "processing speed must be > 0");
  DOLBIE_REQUIRE(conditions.phi > 0.0, "data rate must be > 0");
  worker_round_time out;
  out.compute = fraction * global_batch / conditions.gamma;
  out.comm = model_bytes / conditions.phi;
  return out;
}

std::unique_ptr<const cost::affine_cost> round_cost(
    double global_batch, double model_bytes,
    const worker_conditions& conditions) {
  DOLBIE_REQUIRE(global_batch > 0.0, "global batch must be > 0");
  DOLBIE_REQUIRE(conditions.gamma > 0.0, "processing speed must be > 0");
  DOLBIE_REQUIRE(conditions.phi > 0.0, "data rate must be > 0");
  return std::make_unique<cost::affine_cost>(global_batch / conditions.gamma,
                                             model_bytes / conditions.phi);
}

}  // namespace dolbie::ml
