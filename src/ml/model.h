// The ML model catalogue: LeNet5, ResNet18 and VGG16 on CIFAR-10, the three
// workloads of the paper's Figs. 6-8. Each profile carries the transmitted
// model size (the d_{i,t} of the communication term) and the parameters of
// a saturating learning curve
//
//   acc(k) = acc_max - (acc_max - acc_0) * (1 + k/kappa)^(-beta)
//
// mapping SGD steps to training accuracy. The curve depends only on the
// step count: with a fixed global batch B every policy follows the same
// accuracy-vs-round trajectory, and policies differ purely through
// wall-clock time per round — exactly the structure of the paper's
// experiment.
#pragma once

#include <array>
#include <string_view>

namespace dolbie::ml {

enum class model_kind {
  lenet5,
  resnet18,
  vgg16,
};

inline constexpr std::array<model_kind, 3> all_models = {
    model_kind::lenet5, model_kind::resnet18, model_kind::vgg16};

struct model_profile {
  std::string_view name;
  double parameter_count = 0.0;  ///< trainable parameters
  double model_bytes = 0.0;      ///< transmitted size d (float32 params)
  // Learning-curve parameters.
  double acc_initial = 0.0;
  double acc_max = 0.0;
  double kappa = 0.0;
  double beta = 0.0;
};

/// Profile of a model kind.
const model_profile& profile(model_kind kind);

/// Human-readable model name.
std::string_view model_name(model_kind kind);

}  // namespace dolbie::ml
