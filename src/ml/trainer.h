// The synchronous distributed-SGD round simulator (Fig. 2's integration of
// DOLBIE and distributed ML). Each training round:
//
//   1. the cluster's conditions advance (exogenous),
//   2. a clairvoyant policy may preview the round's cost functions (OPT),
//   3. the policy's batch fractions b_t are played; per-worker compute /
//      communication / waiting times are recorded; the round latency is
//      the straggler's total (the synchronization barrier),
//   4. the revealed costs are fed back so the policy prepares b_{t+1},
//   5. accuracy advances along the model's learning curve (one SGD step).
//
// Decision-making wall time (preview + observe) is measured with
// steady_clock — the "overhead introduced by the load balancing
// algorithms" of Fig. 11's lower panel.
#pragma once

#include <cstdint>

#include "common/series.h"
#include "core/policy.h"
#include "ml/cluster.h"

namespace dolbie::obs {
class metrics_registry;
class tracer;
}  // namespace dolbie::obs

namespace dolbie::ml {

struct trainer_options {
  std::size_t rounds = 100;
  std::size_t n_workers = 30;
  double global_batch = 256.0;
  model_kind model = model_kind::resnet18;
  std::uint64_t seed = 1;
  cluster_options cluster = {};
  /// Record per-worker traces (Figs. 9-10). Off for the 100-realization
  /// sweeps where only aggregates are needed.
  bool record_per_worker = true;

  /// Observability (all optional; null keeps the trainer on the zero-cost
  /// disabled path). The trainer records one "train_round" span per round
  /// on `trace_lane` with the round latency and straggler total, and
  /// ml.* counters/gauges in the registry. The policy's own tracing is
  /// configured separately through its options (use a different lane).
  obs::tracer* tracer = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::uint32_t trace_lane = 0;
};

struct trainer_result {
  /// Per-round global latency l_t (Fig. 3) and its prefix sums (Fig. 5).
  series round_latency;
  /// Training accuracy after each round (Figs. 6-8, x-axis = cumulative
  /// latency).
  series accuracy;
  /// Per-worker per-round latency (Fig. 9) and batch size in samples
  /// (Fig. 10); empty when record_per_worker is false.
  std::vector<series> worker_latency;
  std::vector<series> worker_batch;
  /// Utilization totals in worker-seconds over the whole run (Fig. 11 top).
  double total_compute = 0.0;
  double total_comm = 0.0;
  double total_wait = 0.0;
  /// Wall time spent inside the policy's decision code (Fig. 11 bottom).
  double decision_seconds = 0.0;
  /// Sum of round latencies = total training wall-clock.
  double total_time = 0.0;

  /// Mean fraction of the round a worker spent busy (compute + comm).
  double mean_utilization() const;
  /// Wall-clock time at which `target` training accuracy was first reached,
  /// or a negative value when it never was.
  double time_to_accuracy(model_kind model, double target) const;
};

/// Run `policy` (reset first) through a full training simulation.
trainer_result train(core::online_policy& policy,
                     const trainer_options& options);

}  // namespace dolbie::ml
