#include "ml/processor.h"

#include "common/error.h"

namespace dolbie::ml {

std::string_view processor_name(processor_kind kind) {
  switch (kind) {
    case processor_kind::tesla_v100:
      return "Tesla V100";
    case processor_kind::tesla_p100:
      return "Tesla P100";
    case processor_kind::t4:
      return "T4";
    case processor_kind::cascade_lake:
      return "Xeon Gold 6238 (Cascade Lake)";
    case processor_kind::broadwell:
      return "E5-2683 v4 (Broadwell)";
  }
  DOLBIE_REQUIRE(false, "unknown processor kind");
}

bool is_gpu(processor_kind kind) {
  switch (kind) {
    case processor_kind::tesla_v100:
    case processor_kind::tesla_p100:
    case processor_kind::t4:
      return true;
    case processor_kind::cascade_lake:
    case processor_kind::broadwell:
      return false;
  }
  DOLBIE_REQUIRE(false, "unknown processor kind");
}

double base_throughput(processor_kind kind, model_kind model) {
  // samples/second; columns: LeNet5, ResNet18, VGG16. The GPU/CPU gap
  // widens with model size (5x -> 29x -> 109x V100-vs-Broadwell: tiny
  // models leave GPUs underutilized, heavy models crush CPUs), which is
  // what amplifies DOLBIE's advantage from Fig. 6 to Fig. 8. Absolute
  // values are representative CIFAR-10 training throughputs; note that the
  // scale-free policies (DOLBIE, ABS, LB-BSP, EQU, OPT) are invariant to a
  // uniform rescaling of this table, while OGD's beta*gradient step is not
  // — the ablation bench sweeps cluster_options::speed_scale to show it.
  switch (kind) {
    case processor_kind::tesla_v100:
      switch (model) {
        case model_kind::lenet5:
          return 60'000.0;
        case model_kind::resnet18:
          return 4'800.0;
        case model_kind::vgg16:
          return 240.0;
      }
      break;
    case processor_kind::tesla_p100:
      switch (model) {
        case model_kind::lenet5:
          return 50'000.0;
        case model_kind::resnet18:
          return 3'000.0;
        case model_kind::vgg16:
          return 140.0;
      }
      break;
    case processor_kind::t4:
      switch (model) {
        case model_kind::lenet5:
          return 40'000.0;
        case model_kind::resnet18:
          return 1'800.0;
        case model_kind::vgg16:
          return 80.0;
      }
      break;
    case processor_kind::cascade_lake:
      switch (model) {
        case model_kind::lenet5:
          return 18'000.0;
        case model_kind::resnet18:
          return 270.0;
        case model_kind::vgg16:
          return 4.5;
      }
      break;
    case processor_kind::broadwell:
      switch (model) {
        case model_kind::lenet5:
          return 12'000.0;
        case model_kind::resnet18:
          return 165.0;
        case model_kind::vgg16:
          return 2.2;
      }
      break;
  }
  DOLBIE_REQUIRE(false, "unknown processor/model combination");
}

}  // namespace dolbie::ml
