// The task-offloading scenario of Sec. III-B: one end device plus N
// heterogeneous edge servers, jointly carrying a stream of task bundles.
// Decision variable lambda_t partitions each round's tasks between local
// computation (worker 0) and the servers; the round cost is the maximum
// completion time across sites.
#pragma once

#include <cstdint>

#include "edge/server.h"
#include "exp/scenario.h"

namespace dolbie::edge {

struct offloading_options {
  std::size_t n_servers = 9;      ///< edge servers; total workers = 1 + this
  double workload = 100.0;        ///< task units arriving per round
  double device_service_rate = 80.0;
  // Server heterogeneity ranges (sampled uniformly per server).
  double server_rate_min = 200.0;
  double server_rate_max = 1200.0;
  double link_rate_min = 500.0;
  double link_rate_max = 4000.0;
  double congestion_exponent_min = 1.0;
  double congestion_exponent_max = 1.6;
  double setup_min = 0.001;
  double setup_max = 0.008;
};

/// An exp::environment over the offloading sites (worker 0 = local device).
class offloading_environment final : public exp::environment {
 public:
  offloading_environment(offloading_options options, std::uint64_t seed);

  std::size_t workers() const override { return sites_.size(); }
  cost::cost_vector next_round() override;

  const site& at(std::size_t worker) const;

 private:
  offloading_options options_;
  std::vector<site> sites_;
};

}  // namespace dolbie::edge
