#include "edge/scenario.h"

#include "common/error.h"

namespace dolbie::edge {

offloading_environment::offloading_environment(offloading_options options,
                                               std::uint64_t seed)
    : options_(options) {
  DOLBIE_REQUIRE(options.n_servers >= 1, "need at least one edge server");
  DOLBIE_REQUIRE(options.workload > 0.0, "workload must be > 0");
  DOLBIE_REQUIRE(options.device_service_rate > 0.0,
                 "device service rate must be > 0");
  DOLBIE_REQUIRE(options.server_rate_min <= options.server_rate_max &&
                     options.server_rate_min > 0.0,
                 "invalid server rate range");
  rng setup(seed);
  sites_.reserve(options.n_servers + 1);
  // Worker 0: the end device (no uplink, linear execution).
  sites_.emplace_back(
      site_profile{.service_rate = options.device_service_rate,
                   .link_rate = 0.0,
                   .congestion_exponent = 1.0,
                   .setup_time = 0.0},
      setup.fork(0).engine()());
  for (std::size_t s = 0; s < options.n_servers; ++s) {
    sites_.emplace_back(
        site_profile{
            .service_rate = setup.uniform(options.server_rate_min,
                                          options.server_rate_max),
            .link_rate =
                setup.uniform(options.link_rate_min, options.link_rate_max),
            .congestion_exponent = setup.uniform(
                options.congestion_exponent_min,
                options.congestion_exponent_max),
            .setup_time = setup.uniform(options.setup_min, options.setup_max)},
        setup.fork(s + 1).engine()());
  }
}

const site& offloading_environment::at(std::size_t worker) const {
  DOLBIE_REQUIRE(worker < sites_.size(), "site index out of range");
  return sites_[worker];
}

cost::cost_vector offloading_environment::next_round() {
  cost::cost_vector out;
  out.reserve(sites_.size());
  for (site& s : sites_) {
    s.advance_round();
    out.push_back(s.round_cost(options_.workload));
  }
  return out;
}

}  // namespace dolbie::edge
