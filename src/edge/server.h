// Heterogeneous edge servers for the task-offloading use case (Sec. III-B).
// Worker 0 is the end device computing locally; workers 1..N are edge
// servers whose cost combines transmission and execution. Server execution
// grows super-linearly in the offloaded fraction (queueing at the shared
// server), giving the non-linear increasing costs the formulation allows.
#pragma once

#include <memory>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "cost/process.h"

namespace dolbie::edge {

/// Static description of one compute site.
struct site_profile {
  double service_rate = 1.0;   ///< task units per second at nominal load
  double link_rate = 0.0;      ///< task units per second over the uplink;
                               ///< 0 for the local device (no transmission)
  double congestion_exponent = 1.0;  ///< execution ~ fraction^exponent
  double setup_time = 0.0;     ///< fixed per-round overhead (RTT, dispatch)
};

/// One site with time-varying service and link rates.
class site {
 public:
  site(site_profile profile, std::uint64_t seed);

  const site_profile& profile() const { return profile_; }

  /// Advance the round: rates drift by AR(1), contention episodes hit the
  /// service rate.
  void advance_round();

  /// The current round's cost function of the offloaded fraction:
  ///   f(x) = setup + x * W / link + (x^e) * W / service
  /// for total work `workload` task units (link term skipped for the local
  /// device).
  std::unique_ptr<const cost::cost_function> round_cost(
      double workload) const;

  double current_service_rate() const;
  double current_link_rate() const;

 private:
  site_profile profile_;
  std::unique_ptr<cost::process> service_factor_;
  std::unique_ptr<cost::process> link_factor_;
  rng gen_;
};

}  // namespace dolbie::edge
