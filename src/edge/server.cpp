#include "edge/server.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace dolbie::edge {
namespace {

/// f(x) = setup + x * W / link + x^e * W / service  (link term optional).
/// Increasing in x; the inherited bisection supplies inverse_max.
class offload_cost final : public cost::cost_function {
 public:
  offload_cost(double setup, double transmit_scale, double execute_scale,
               double exponent)
      : setup_(setup),
        transmit_scale_(transmit_scale),
        execute_scale_(execute_scale),
        exponent_(exponent) {}

  double value(double x) const override {
    return setup_ + transmit_scale_ * x +
           execute_scale_ * std::pow(x, exponent_);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "offload(setup=" << setup_ << ", tx=" << transmit_scale_
       << ", exec=" << execute_scale_ << ", e=" << exponent_ << ")";
    return os.str();
  }

 private:
  double setup_;
  double transmit_scale_;
  double execute_scale_;
  double exponent_;
};

}  // namespace

site::site(site_profile profile, std::uint64_t seed)
    : profile_(profile), gen_(seed) {
  DOLBIE_REQUIRE(profile.service_rate > 0.0,
                 "service rate must be > 0, got " << profile.service_rate);
  DOLBIE_REQUIRE(profile.link_rate >= 0.0,
                 "link rate must be >= 0, got " << profile.link_rate);
  DOLBIE_REQUIRE(profile.congestion_exponent >= 1.0,
                 "congestion exponent must be >= 1, got "
                     << profile.congestion_exponent);
  DOLBIE_REQUIRE(profile.setup_time >= 0.0, "setup time must be >= 0");
  auto drift = std::make_unique<cost::ar1_process>(1.0, 0.85, 0.06, 0.5, 1.5);
  auto contention =
      std::make_unique<cost::markov_contention_process>(1.0, 0.4, 0.04, 0.25);
  service_factor_ = std::make_unique<cost::product_process>(
      std::move(drift), std::move(contention));
  link_factor_ = std::make_unique<cost::ar1_process>(1.0, 0.8, 0.1, 0.3, 1.7);
}

void site::advance_round() {
  service_factor_->step(gen_);
  link_factor_->step(gen_);
}

double site::current_service_rate() const {
  return profile_.service_rate * service_factor_->current();
}

double site::current_link_rate() const {
  return profile_.link_rate * link_factor_->current();
}

std::unique_ptr<const cost::cost_function> site::round_cost(
    double workload) const {
  DOLBIE_REQUIRE(workload > 0.0, "workload must be > 0, got " << workload);
  const double transmit_scale =
      profile_.link_rate > 0.0 ? workload / current_link_rate() : 0.0;
  const double execute_scale = workload / current_service_rate();
  return std::make_unique<offload_cost>(profile_.setup_time, transmit_scale,
                                        execute_scale,
                                        profile_.congestion_exponent);
}

}  // namespace dolbie::edge
