# Empty compiler generated dependencies file for bench_fig4_latency_ci.
# This may be replaced when dependencies are built.
