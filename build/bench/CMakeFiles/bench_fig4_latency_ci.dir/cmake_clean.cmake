file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency_ci.dir/fig4_latency_ci.cpp.o"
  "CMakeFiles/bench_fig4_latency_ci.dir/fig4_latency_ci.cpp.o.d"
  "fig4_latency_ci"
  "fig4_latency_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
