# Empty compiler generated dependencies file for bench_real_training.
# This may be replaced when dependencies are built.
