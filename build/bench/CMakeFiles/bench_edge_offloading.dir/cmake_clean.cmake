file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_offloading.dir/edge_offloading.cpp.o"
  "CMakeFiles/bench_edge_offloading.dir/edge_offloading.cpp.o.d"
  "edge_offloading"
  "edge_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
