file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_per_round_latency.dir/fig3_per_round_latency.cpp.o"
  "CMakeFiles/bench_fig3_per_round_latency.dir/fig3_per_round_latency.cpp.o.d"
  "fig3_per_round_latency"
  "fig3_per_round_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_per_round_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
