# Empty compiler generated dependencies file for bench_comm_complexity.
# This may be replaced when dependencies are built.
