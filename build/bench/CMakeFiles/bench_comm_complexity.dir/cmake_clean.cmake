file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_complexity.dir/comm_complexity.cpp.o"
  "CMakeFiles/bench_comm_complexity.dir/comm_complexity.cpp.o.d"
  "comm_complexity"
  "comm_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
