# Empty dependencies file for bench_protocol_timing.
# This may be replaced when dependencies are built.
