file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_timing.dir/protocol_timing.cpp.o"
  "CMakeFiles/bench_protocol_timing.dir/protocol_timing.cpp.o.d"
  "protocol_timing"
  "protocol_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
