# Empty dependencies file for bench_async_round_breakdown.
# This may be replaced when dependencies are built.
