file(REMOVE_RECURSE
  "CMakeFiles/bench_async_round_breakdown.dir/async_round_breakdown.cpp.o"
  "CMakeFiles/bench_async_round_breakdown.dir/async_round_breakdown.cpp.o.d"
  "async_round_breakdown"
  "async_round_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_round_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
