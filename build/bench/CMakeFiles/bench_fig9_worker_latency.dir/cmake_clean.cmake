file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_worker_latency.dir/fig9_worker_latency.cpp.o"
  "CMakeFiles/bench_fig9_worker_latency.dir/fig9_worker_latency.cpp.o.d"
  "fig9_worker_latency"
  "fig9_worker_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_worker_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
