file(REMOVE_RECURSE
  "CMakeFiles/bench_regret_bound.dir/regret_bound.cpp.o"
  "CMakeFiles/bench_regret_bound.dir/regret_bound.cpp.o.d"
  "regret_bound"
  "regret_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regret_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
