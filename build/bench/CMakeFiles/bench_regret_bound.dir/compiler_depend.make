# Empty compiler generated dependencies file for bench_regret_bound.
# This may be replaced when dependencies are built.
