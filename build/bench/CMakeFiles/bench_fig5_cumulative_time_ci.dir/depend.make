# Empty dependencies file for bench_fig5_cumulative_time_ci.
# This may be replaced when dependencies are built.
