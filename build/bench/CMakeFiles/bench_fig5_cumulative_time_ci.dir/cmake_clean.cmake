file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cumulative_time_ci.dir/fig5_cumulative_time_ci.cpp.o"
  "CMakeFiles/bench_fig5_cumulative_time_ci.dir/fig5_cumulative_time_ci.cpp.o.d"
  "fig5_cumulative_time_ci"
  "fig5_cumulative_time_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cumulative_time_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
