file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_utilization.dir/fig11_utilization.cpp.o"
  "CMakeFiles/bench_fig11_utilization.dir/fig11_utilization.cpp.o.d"
  "fig11_utilization"
  "fig11_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
