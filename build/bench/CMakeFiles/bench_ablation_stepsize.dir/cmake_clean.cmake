file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stepsize.dir/ablation_stepsize.cpp.o"
  "CMakeFiles/bench_ablation_stepsize.dir/ablation_stepsize.cpp.o.d"
  "ablation_stepsize"
  "ablation_stepsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stepsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
