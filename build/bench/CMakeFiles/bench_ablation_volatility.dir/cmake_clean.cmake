file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_volatility.dir/ablation_volatility.cpp.o"
  "CMakeFiles/bench_ablation_volatility.dir/ablation_volatility.cpp.o.d"
  "ablation_volatility"
  "ablation_volatility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_volatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
