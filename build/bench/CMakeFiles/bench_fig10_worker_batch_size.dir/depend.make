# Empty dependencies file for bench_fig10_worker_batch_size.
# This may be replaced when dependencies are built.
