file(REMOVE_RECURSE
  "libdolbie.a"
)
