# Empty compiler generated dependencies file for dolbie.
# This may be replaced when dependencies are built.
