
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/abs.cpp" "src/CMakeFiles/dolbie.dir/baselines/abs.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/abs.cpp.o.d"
  "/root/repo/src/baselines/equal.cpp" "src/CMakeFiles/dolbie.dir/baselines/equal.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/equal.cpp.o.d"
  "/root/repo/src/baselines/lbbsp.cpp" "src/CMakeFiles/dolbie.dir/baselines/lbbsp.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/lbbsp.cpp.o.d"
  "/root/repo/src/baselines/ogd.cpp" "src/CMakeFiles/dolbie.dir/baselines/ogd.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/ogd.cpp.o.d"
  "/root/repo/src/baselines/opt.cpp" "src/CMakeFiles/dolbie.dir/baselines/opt.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/opt.cpp.o.d"
  "/root/repo/src/baselines/simplex_projection.cpp" "src/CMakeFiles/dolbie.dir/baselines/simplex_projection.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/baselines/simplex_projection.cpp.o.d"
  "/root/repo/src/common/bisect.cpp" "src/CMakeFiles/dolbie.dir/common/bisect.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/common/bisect.cpp.o.d"
  "/root/repo/src/common/series.cpp" "src/CMakeFiles/dolbie.dir/common/series.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/common/series.cpp.o.d"
  "/root/repo/src/common/simplex.cpp" "src/CMakeFiles/dolbie.dir/common/simplex.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/common/simplex.cpp.o.d"
  "/root/repo/src/core/dolbie.cpp" "src/CMakeFiles/dolbie.dir/core/dolbie.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/core/dolbie.cpp.o.d"
  "/root/repo/src/core/max_acceptable.cpp" "src/CMakeFiles/dolbie.dir/core/max_acceptable.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/core/max_acceptable.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/dolbie.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/regret.cpp" "src/CMakeFiles/dolbie.dir/core/regret.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/core/regret.cpp.o.d"
  "/root/repo/src/core/step_size.cpp" "src/CMakeFiles/dolbie.dir/core/step_size.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/core/step_size.cpp.o.d"
  "/root/repo/src/cost/affine.cpp" "src/CMakeFiles/dolbie.dir/cost/affine.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/affine.cpp.o.d"
  "/root/repo/src/cost/composite.cpp" "src/CMakeFiles/dolbie.dir/cost/composite.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/composite.cpp.o.d"
  "/root/repo/src/cost/cost_function.cpp" "src/CMakeFiles/dolbie.dir/cost/cost_function.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/cost_function.cpp.o.d"
  "/root/repo/src/cost/exponential.cpp" "src/CMakeFiles/dolbie.dir/cost/exponential.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/exponential.cpp.o.d"
  "/root/repo/src/cost/logistic.cpp" "src/CMakeFiles/dolbie.dir/cost/logistic.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/logistic.cpp.o.d"
  "/root/repo/src/cost/piecewise.cpp" "src/CMakeFiles/dolbie.dir/cost/piecewise.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/piecewise.cpp.o.d"
  "/root/repo/src/cost/power.cpp" "src/CMakeFiles/dolbie.dir/cost/power.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/power.cpp.o.d"
  "/root/repo/src/cost/process.cpp" "src/CMakeFiles/dolbie.dir/cost/process.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/process.cpp.o.d"
  "/root/repo/src/cost/time_varying.cpp" "src/CMakeFiles/dolbie.dir/cost/time_varying.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/cost/time_varying.cpp.o.d"
  "/root/repo/src/dist/async_fully_distributed.cpp" "src/CMakeFiles/dolbie.dir/dist/async_fully_distributed.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/async_fully_distributed.cpp.o.d"
  "/root/repo/src/dist/async_master_worker.cpp" "src/CMakeFiles/dolbie.dir/dist/async_master_worker.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/async_master_worker.cpp.o.d"
  "/root/repo/src/dist/fully_distributed.cpp" "src/CMakeFiles/dolbie.dir/dist/fully_distributed.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/fully_distributed.cpp.o.d"
  "/root/repo/src/dist/master_worker.cpp" "src/CMakeFiles/dolbie.dir/dist/master_worker.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/master_worker.cpp.o.d"
  "/root/repo/src/dist/round_timing.cpp" "src/CMakeFiles/dolbie.dir/dist/round_timing.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/round_timing.cpp.o.d"
  "/root/repo/src/dist/runner.cpp" "src/CMakeFiles/dolbie.dir/dist/runner.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/dist/runner.cpp.o.d"
  "/root/repo/src/edge/scenario.cpp" "src/CMakeFiles/dolbie.dir/edge/scenario.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/edge/scenario.cpp.o.d"
  "/root/repo/src/edge/server.cpp" "src/CMakeFiles/dolbie.dir/edge/server.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/edge/server.cpp.o.d"
  "/root/repo/src/exp/harness.cpp" "src/CMakeFiles/dolbie.dir/exp/harness.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/exp/harness.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/dolbie.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/dolbie.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/dolbie.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/learn/dataset.cpp" "src/CMakeFiles/dolbie.dir/learn/dataset.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/dataset.cpp.o.d"
  "/root/repo/src/learn/distributed_trainer.cpp" "src/CMakeFiles/dolbie.dir/learn/distributed_trainer.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/distributed_trainer.cpp.o.d"
  "/root/repo/src/learn/model.cpp" "src/CMakeFiles/dolbie.dir/learn/model.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/model.cpp.o.d"
  "/root/repo/src/learn/parameter_server.cpp" "src/CMakeFiles/dolbie.dir/learn/parameter_server.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/parameter_server.cpp.o.d"
  "/root/repo/src/learn/sgd.cpp" "src/CMakeFiles/dolbie.dir/learn/sgd.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/sgd.cpp.o.d"
  "/root/repo/src/learn/vec.cpp" "src/CMakeFiles/dolbie.dir/learn/vec.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/learn/vec.cpp.o.d"
  "/root/repo/src/ml/accuracy.cpp" "src/CMakeFiles/dolbie.dir/ml/accuracy.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/accuracy.cpp.o.d"
  "/root/repo/src/ml/cluster.cpp" "src/CMakeFiles/dolbie.dir/ml/cluster.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/cluster.cpp.o.d"
  "/root/repo/src/ml/latency.cpp" "src/CMakeFiles/dolbie.dir/ml/latency.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/latency.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/CMakeFiles/dolbie.dir/ml/model.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/model.cpp.o.d"
  "/root/repo/src/ml/processor.cpp" "src/CMakeFiles/dolbie.dir/ml/processor.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/processor.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/CMakeFiles/dolbie.dir/ml/trainer.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/ml/trainer.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/dolbie.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/dolbie.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/delay_model.cpp" "src/CMakeFiles/dolbie.dir/net/delay_model.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/net/delay_model.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/dolbie.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/net/network.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dolbie.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/stats/aggregate.cpp" "src/CMakeFiles/dolbie.dir/stats/aggregate.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/stats/aggregate.cpp.o.d"
  "/root/repo/src/stats/ci.cpp" "src/CMakeFiles/dolbie.dir/stats/ci.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/stats/ci.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/CMakeFiles/dolbie.dir/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/dolbie.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/dolbie.dir/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
