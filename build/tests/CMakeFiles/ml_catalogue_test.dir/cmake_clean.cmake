file(REMOVE_RECURSE
  "CMakeFiles/ml_catalogue_test.dir/ml_catalogue_test.cpp.o"
  "CMakeFiles/ml_catalogue_test.dir/ml_catalogue_test.cpp.o.d"
  "ml_catalogue_test"
  "ml_catalogue_test.pdb"
  "ml_catalogue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_catalogue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
