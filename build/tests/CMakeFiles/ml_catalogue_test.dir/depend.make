# Empty dependencies file for ml_catalogue_test.
# This may be replaced when dependencies are built.
