file(REMOVE_RECURSE
  "CMakeFiles/dist_trainer_test.dir/dist_trainer_test.cpp.o"
  "CMakeFiles/dist_trainer_test.dir/dist_trainer_test.cpp.o.d"
  "dist_trainer_test"
  "dist_trainer_test.pdb"
  "dist_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
