# Empty dependencies file for dist_trainer_test.
# This may be replaced when dependencies are built.
