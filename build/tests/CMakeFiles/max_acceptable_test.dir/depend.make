# Empty dependencies file for max_acceptable_test.
# This may be replaced when dependencies are built.
