file(REMOVE_RECURSE
  "CMakeFiles/max_acceptable_test.dir/max_acceptable_test.cpp.o"
  "CMakeFiles/max_acceptable_test.dir/max_acceptable_test.cpp.o.d"
  "max_acceptable_test"
  "max_acceptable_test.pdb"
  "max_acceptable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_acceptable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
