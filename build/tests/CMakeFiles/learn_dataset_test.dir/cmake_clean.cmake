file(REMOVE_RECURSE
  "CMakeFiles/learn_dataset_test.dir/learn_dataset_test.cpp.o"
  "CMakeFiles/learn_dataset_test.dir/learn_dataset_test.cpp.o.d"
  "learn_dataset_test"
  "learn_dataset_test.pdb"
  "learn_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
