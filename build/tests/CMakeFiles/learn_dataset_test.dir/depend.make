# Empty dependencies file for learn_dataset_test.
# This may be replaced when dependencies are built.
