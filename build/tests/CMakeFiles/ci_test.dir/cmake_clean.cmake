file(REMOVE_RECURSE
  "CMakeFiles/ci_test.dir/ci_test.cpp.o"
  "CMakeFiles/ci_test.dir/ci_test.cpp.o.d"
  "ci_test"
  "ci_test.pdb"
  "ci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
