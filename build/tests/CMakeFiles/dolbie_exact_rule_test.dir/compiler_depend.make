# Empty compiler generated dependencies file for dolbie_exact_rule_test.
# This may be replaced when dependencies are built.
