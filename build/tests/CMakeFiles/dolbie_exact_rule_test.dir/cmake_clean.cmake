file(REMOVE_RECURSE
  "CMakeFiles/dolbie_exact_rule_test.dir/dolbie_exact_rule_test.cpp.o"
  "CMakeFiles/dolbie_exact_rule_test.dir/dolbie_exact_rule_test.cpp.o.d"
  "dolbie_exact_rule_test"
  "dolbie_exact_rule_test.pdb"
  "dolbie_exact_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolbie_exact_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
