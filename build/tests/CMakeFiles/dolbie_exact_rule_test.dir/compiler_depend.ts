# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dolbie_exact_rule_test.
