file(REMOVE_RECURSE
  "CMakeFiles/regret_test.dir/regret_test.cpp.o"
  "CMakeFiles/regret_test.dir/regret_test.cpp.o.d"
  "regret_test"
  "regret_test.pdb"
  "regret_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
