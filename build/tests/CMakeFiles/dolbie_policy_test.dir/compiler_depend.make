# Empty compiler generated dependencies file for dolbie_policy_test.
# This may be replaced when dependencies are built.
