file(REMOVE_RECURSE
  "CMakeFiles/dolbie_policy_test.dir/dolbie_policy_test.cpp.o"
  "CMakeFiles/dolbie_policy_test.dir/dolbie_policy_test.cpp.o.d"
  "dolbie_policy_test"
  "dolbie_policy_test.pdb"
  "dolbie_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolbie_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
