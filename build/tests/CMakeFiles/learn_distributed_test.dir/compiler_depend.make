# Empty compiler generated dependencies file for learn_distributed_test.
# This may be replaced when dependencies are built.
