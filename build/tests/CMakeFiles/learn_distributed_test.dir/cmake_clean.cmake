file(REMOVE_RECURSE
  "CMakeFiles/learn_distributed_test.dir/learn_distributed_test.cpp.o"
  "CMakeFiles/learn_distributed_test.dir/learn_distributed_test.cpp.o.d"
  "learn_distributed_test"
  "learn_distributed_test.pdb"
  "learn_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
