# Empty compiler generated dependencies file for equal_test.
# This may be replaced when dependencies are built.
