file(REMOVE_RECURSE
  "CMakeFiles/equal_test.dir/equal_test.cpp.o"
  "CMakeFiles/equal_test.dir/equal_test.cpp.o.d"
  "equal_test"
  "equal_test.pdb"
  "equal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
