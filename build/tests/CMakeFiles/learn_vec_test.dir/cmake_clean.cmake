file(REMOVE_RECURSE
  "CMakeFiles/learn_vec_test.dir/learn_vec_test.cpp.o"
  "CMakeFiles/learn_vec_test.dir/learn_vec_test.cpp.o.d"
  "learn_vec_test"
  "learn_vec_test.pdb"
  "learn_vec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
