file(REMOVE_RECURSE
  "CMakeFiles/round_timing_test.dir/round_timing_test.cpp.o"
  "CMakeFiles/round_timing_test.dir/round_timing_test.cpp.o.d"
  "round_timing_test"
  "round_timing_test.pdb"
  "round_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
