# Empty compiler generated dependencies file for round_timing_test.
# This may be replaced when dependencies are built.
