file(REMOVE_RECURSE
  "CMakeFiles/step_size_test.dir/step_size_test.cpp.o"
  "CMakeFiles/step_size_test.dir/step_size_test.cpp.o.d"
  "step_size_test"
  "step_size_test.pdb"
  "step_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
