# Empty compiler generated dependencies file for step_size_test.
# This may be replaced when dependencies are built.
