# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for learn_model_test.
