file(REMOVE_RECURSE
  "CMakeFiles/learn_model_test.dir/learn_model_test.cpp.o"
  "CMakeFiles/learn_model_test.dir/learn_model_test.cpp.o.d"
  "learn_model_test"
  "learn_model_test.pdb"
  "learn_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
