# Empty dependencies file for learn_model_test.
# This may be replaced when dependencies are built.
