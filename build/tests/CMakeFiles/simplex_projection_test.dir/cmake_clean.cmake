file(REMOVE_RECURSE
  "CMakeFiles/simplex_projection_test.dir/simplex_projection_test.cpp.o"
  "CMakeFiles/simplex_projection_test.dir/simplex_projection_test.cpp.o.d"
  "simplex_projection_test"
  "simplex_projection_test.pdb"
  "simplex_projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
