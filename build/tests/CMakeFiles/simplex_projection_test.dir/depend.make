# Empty dependencies file for simplex_projection_test.
# This may be replaced when dependencies are built.
