file(REMOVE_RECURSE
  "CMakeFiles/dist_equivalence_test.dir/dist_equivalence_test.cpp.o"
  "CMakeFiles/dist_equivalence_test.dir/dist_equivalence_test.cpp.o.d"
  "dist_equivalence_test"
  "dist_equivalence_test.pdb"
  "dist_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
