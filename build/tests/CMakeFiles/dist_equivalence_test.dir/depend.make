# Empty dependencies file for dist_equivalence_test.
# This may be replaced when dependencies are built.
