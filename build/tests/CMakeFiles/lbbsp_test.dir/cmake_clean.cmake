file(REMOVE_RECURSE
  "CMakeFiles/lbbsp_test.dir/lbbsp_test.cpp.o"
  "CMakeFiles/lbbsp_test.dir/lbbsp_test.cpp.o.d"
  "lbbsp_test"
  "lbbsp_test.pdb"
  "lbbsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbbsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
