# Empty dependencies file for lbbsp_test.
# This may be replaced when dependencies are built.
