# Empty compiler generated dependencies file for ogd_test.
# This may be replaced when dependencies are built.
