file(REMOVE_RECURSE
  "CMakeFiles/ogd_test.dir/ogd_test.cpp.o"
  "CMakeFiles/ogd_test.dir/ogd_test.cpp.o.d"
  "ogd_test"
  "ogd_test.pdb"
  "ogd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
