file(REMOVE_RECURSE
  "CMakeFiles/async_master_worker_test.dir/async_master_worker_test.cpp.o"
  "CMakeFiles/async_master_worker_test.dir/async_master_worker_test.cpp.o.d"
  "async_master_worker_test"
  "async_master_worker_test.pdb"
  "async_master_worker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_master_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
