# Empty dependencies file for async_master_worker_test.
# This may be replaced when dependencies are built.
