file(REMOVE_RECURSE
  "CMakeFiles/dolbie_property_test.dir/dolbie_property_test.cpp.o"
  "CMakeFiles/dolbie_property_test.dir/dolbie_property_test.cpp.o.d"
  "dolbie_property_test"
  "dolbie_property_test.pdb"
  "dolbie_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolbie_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
