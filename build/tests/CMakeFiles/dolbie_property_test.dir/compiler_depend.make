# Empty compiler generated dependencies file for dolbie_property_test.
# This may be replaced when dependencies are built.
