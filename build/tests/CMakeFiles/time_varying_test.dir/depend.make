# Empty dependencies file for time_varying_test.
# This may be replaced when dependencies are built.
