# Empty compiler generated dependencies file for async_fully_distributed_test.
# This may be replaced when dependencies are built.
