file(REMOVE_RECURSE
  "CMakeFiles/async_fully_distributed_test.dir/async_fully_distributed_test.cpp.o"
  "CMakeFiles/async_fully_distributed_test.dir/async_fully_distributed_test.cpp.o.d"
  "async_fully_distributed_test"
  "async_fully_distributed_test.pdb"
  "async_fully_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_fully_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
