file(REMOVE_RECURSE
  "CMakeFiles/example_batch_size_tuning.dir/batch_size_tuning.cpp.o"
  "CMakeFiles/example_batch_size_tuning.dir/batch_size_tuning.cpp.o.d"
  "batch_size_tuning"
  "batch_size_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_batch_size_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
