file(REMOVE_RECURSE
  "CMakeFiles/example_cli_playground.dir/cli_playground.cpp.o"
  "CMakeFiles/example_cli_playground.dir/cli_playground.cpp.o.d"
  "cli_playground"
  "cli_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cli_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
