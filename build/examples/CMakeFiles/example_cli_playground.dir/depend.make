# Empty dependencies file for example_cli_playground.
# This may be replaced when dependencies are built.
