# Empty compiler generated dependencies file for example_edge_offloading.
# This may be replaced when dependencies are built.
