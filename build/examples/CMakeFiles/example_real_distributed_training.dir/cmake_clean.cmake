file(REMOVE_RECURSE
  "CMakeFiles/example_real_distributed_training.dir/real_distributed_training.cpp.o"
  "CMakeFiles/example_real_distributed_training.dir/real_distributed_training.cpp.o.d"
  "real_distributed_training"
  "real_distributed_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_real_distributed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
