# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_fully_distributed_demo.
