file(REMOVE_RECURSE
  "CMakeFiles/example_fully_distributed_demo.dir/fully_distributed_demo.cpp.o"
  "CMakeFiles/example_fully_distributed_demo.dir/fully_distributed_demo.cpp.o.d"
  "fully_distributed_demo"
  "fully_distributed_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fully_distributed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
