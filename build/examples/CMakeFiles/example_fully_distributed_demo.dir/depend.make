# Empty dependencies file for example_fully_distributed_demo.
# This may be replaced when dependencies are built.
