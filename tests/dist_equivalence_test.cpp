// The two protocol realizations must (a) produce bit-identical iterates to
// the sequential reference and (b) exchange exactly the message counts
// Section IV-C claims: 3N per round (master-worker, O(N)) and N^2 - 1 per
// round (fully-distributed, O(N^2)).
#include "dist/runner.h"

#include <gtest/gtest.h>

#include "common/simplex.h"
#include "cost/affine.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/scenario.h"

namespace dolbie::dist {
namespace {

using param = std::tuple<std::size_t, exp::synthetic_family, std::uint64_t>;

std::string param_name(const ::testing::TestParamInfo<param>& info) {
  const std::size_t n = std::get<0>(info.param);
  const exp::synthetic_family family = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  return "N" + std::to_string(n) + "_" +
         (family == exp::synthetic_family::affine ? "affine" : "mixed") +
         "_seed" + std::to_string(seed);
}

class ProtocolEquivalence : public ::testing::TestWithParam<param> {};

TEST_P(ProtocolEquivalence, BitIdenticalToSequentialReference) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  const equivalence_report report =
      run_equivalence(n, 60, [&] { return env->next_round(); });
  EXPECT_EQ(report.max_divergence_master_worker, 0.0);
  EXPECT_EQ(report.max_divergence_fully_distributed, 0.0);
}

TEST_P(ProtocolEquivalence, MessageCountsMatchSectionIVC) {
  const auto [n, family, seed] = GetParam();
  if (n < 2) GTEST_SKIP() << "single worker exchanges no messages";
  auto env = exp::make_synthetic_environment(n, family, seed);
  const equivalence_report report =
      run_equivalence(n, 10, [&] { return env->next_round(); });
  // Master-worker: N local costs + N infos + (N-1) decisions + 1 assignment.
  EXPECT_EQ(report.master_worker_traffic.messages_sent, 3 * n);
  // Fully-distributed: N(N-1) broadcasts + (N-1) decisions to the straggler.
  EXPECT_EQ(report.fully_distributed_traffic.messages_sent, n * n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 7, 16, 30),
                       ::testing::Values(exp::synthetic_family::affine,
                                         exp::synthetic_family::mixed),
                       ::testing::Values<std::uint64_t>(1, 99)),
    param_name);

TEST(MasterWorkerPolicy, CustomInitialConditionsPropagate) {
  protocol_options o;
  o.initial_partition = {0.6, 0.3, 0.1};
  o.initial_step = 0.01;
  master_worker_policy p(3, o);
  EXPECT_DOUBLE_EQ(p.current()[0], 0.6);
  EXPECT_DOUBLE_EQ(p.master_step_size(), 0.01);
}

TEST(MasterWorkerPolicy, SingleWorkerNoMessages) {
  master_worker_policy p(1);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  core::round_feedback fb;
  fb.costs = &view;
  const std::vector<double> locals{2.0};
  fb.local_costs = locals;
  p.observe(fb);
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
  EXPECT_EQ(p.last_round_traffic().messages_sent, 0u);
}

TEST(FullyDistributedPolicy, LocalStepSizesOnlyTightenAtStragglers) {
  fully_distributed_policy p(3);
  const double alpha1 = p.local_step_sizes()[0];
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(9.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  p.observe(fb);
  // Straggler is worker 2; only its local step size may have changed.
  EXPECT_DOUBLE_EQ(p.local_step_sizes()[0], alpha1);
  EXPECT_DOUBLE_EQ(p.local_step_sizes()[1], alpha1);
  EXPECT_LE(p.local_step_sizes()[2], alpha1);
}

TEST(FullyDistributedPolicy, ResetRestoresState) {
  fully_distributed_policy p(4);
  auto env = exp::make_synthetic_environment(
      4, exp::synthetic_family::affine, 5);
  for (int t = 0; t < 5; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, p.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    p.observe(fb);
  }
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.25);
  for (double a : p.local_step_sizes()) {
    EXPECT_DOUBLE_EQ(a, p.local_step_sizes()[0]);
  }
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(ProtocolTraffic, BytesScaleWithMessages) {
  auto env = exp::make_synthetic_environment(
      8, exp::synthetic_family::affine, 2);
  const equivalence_report report =
      run_equivalence(8, 5, [&] { return env->next_round(); });
  // Every message carries 1-3 scalars: bytes within [20, 36] each.
  const auto& mw = report.master_worker_traffic;
  EXPECT_GE(mw.bytes_sent, mw.messages_sent * 20);
  EXPECT_LE(mw.bytes_sent, mw.messages_sent * 36);
  const auto& fd = report.fully_distributed_traffic;
  EXPECT_GE(fd.bytes_sent, fd.messages_sent * 20);
  EXPECT_LE(fd.bytes_sent, fd.messages_sent * 36);
}

}  // namespace
}  // namespace dolbie::dist
