// The two protocol realizations must (a) produce bit-identical iterates to
// the sequential reference and (b) exchange exactly the message counts
// Section IV-C claims: 3N per round (master-worker, O(N)) and N^2 - 1 per
// round (fully-distributed, O(N^2)).
#include "dist/runner.h"

#include <gtest/gtest.h>

#include "common/simplex.h"
#include "cost/affine.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/scenario.h"

namespace dolbie::dist {
namespace {

using param = std::tuple<std::size_t, exp::synthetic_family, std::uint64_t>;

std::string param_name(const ::testing::TestParamInfo<param>& info) {
  const std::size_t n = std::get<0>(info.param);
  const exp::synthetic_family family = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  return "N" + std::to_string(n) + "_" +
         (family == exp::synthetic_family::affine ? "affine" : "mixed") +
         "_seed" + std::to_string(seed);
}

class ProtocolEquivalence : public ::testing::TestWithParam<param> {};

TEST_P(ProtocolEquivalence, BitIdenticalToSequentialReference) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  const equivalence_report report =
      run_equivalence(n, 60, [&] { return env->next_round(); });
  EXPECT_EQ(report.max_divergence_master_worker, 0.0);
  EXPECT_EQ(report.max_divergence_fully_distributed, 0.0);
}

TEST_P(ProtocolEquivalence, MessageCountsMatchSectionIVC) {
  const auto [n, family, seed] = GetParam();
  if (n < 2) GTEST_SKIP() << "single worker exchanges no messages";
  auto env = exp::make_synthetic_environment(n, family, seed);
  const equivalence_report report =
      run_equivalence(n, 10, [&] { return env->next_round(); });
  // Master-worker: N local costs + N infos + (N-1) decisions + 1 assignment.
  EXPECT_EQ(report.master_worker_traffic.messages_sent, 3 * n);
  // Fully-distributed: N(N-1) broadcasts + (N-1) decisions to the straggler.
  EXPECT_EQ(report.fully_distributed_traffic.messages_sent, n * n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 7, 16, 30),
                       ::testing::Values(exp::synthetic_family::affine,
                                         exp::synthetic_family::mixed),
                       ::testing::Values<std::uint64_t>(1, 99)),
    param_name);

TEST(MasterWorkerPolicy, CustomInitialConditionsPropagate) {
  protocol_options o;
  o.initial_partition = {0.6, 0.3, 0.1};
  o.initial_step = 0.01;
  master_worker_policy p(3, o);
  EXPECT_DOUBLE_EQ(p.current()[0], 0.6);
  EXPECT_DOUBLE_EQ(p.master_step_size(), 0.01);
}

TEST(MasterWorkerPolicy, SingleWorkerNoMessages) {
  master_worker_policy p(1);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  core::round_feedback fb;
  fb.costs = &view;
  const std::vector<double> locals{2.0};
  fb.local_costs = locals;
  p.observe(fb);
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
  EXPECT_EQ(p.last_round_traffic().messages_sent, 0u);
}

TEST(FullyDistributedPolicy, LocalStepSizesOnlyTightenAtStragglers) {
  fully_distributed_policy p(3);
  const double alpha1 = p.local_step_sizes()[0];
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(9.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  p.observe(fb);
  // Straggler is worker 2; only its local step size may have changed.
  EXPECT_DOUBLE_EQ(p.local_step_sizes()[0], alpha1);
  EXPECT_DOUBLE_EQ(p.local_step_sizes()[1], alpha1);
  EXPECT_LE(p.local_step_sizes()[2], alpha1);
}

TEST(FullyDistributedPolicy, ResetRestoresState) {
  fully_distributed_policy p(4);
  auto env = exp::make_synthetic_environment(
      4, exp::synthetic_family::affine, 5);
  for (int t = 0; t < 5; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, p.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    p.observe(fb);
  }
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.25);
  for (double a : p.local_step_sizes()) {
    EXPECT_DOUBLE_EQ(a, p.local_step_sizes()[0]);
  }
  EXPECT_TRUE(on_simplex(p.current()));
}

// --- Sync vs. async bit-identity (the unified-protocol-core contract) ---
//
// The synchronous and event-driven engines instantiate the same round
// state machines (dist/mw_round.h, dist/fd_round.h); under a zero-delay
// link the asynchronous clock collapses and the two execution models must
// produce bit-identical iterates and step sizes — on the clean path *and*
// under a seeded lossy fault plan, where both engines must also consume
// the identical fault-roll stream (same retransmits, same degraded
// rounds, same holds).

async_options zero_delay_options(const protocol_options& protocol) {
  async_options o;
  o.protocol = protocol;
  o.link.base_latency = 0.0;
  o.link.bytes_per_second = 1e18;  // serialization time ~0
  return o;
}

protocol_options lossy_plan() {
  protocol_options o;
  o.faults.seed = 2026;
  o.faults.drop_rate = 0.2;
  return o;
}

void expect_same_fault_report(const fault_report& a, const fault_report& b) {
  EXPECT_EQ(a.degraded_rounds, b.degraded_rounds);
  EXPECT_EQ(a.straggler_failovers, b.straggler_failovers);
  EXPECT_EQ(a.removed_workers, b.removed_workers);
  EXPECT_EQ(a.zero_step_holds, b.zero_step_holds);
  EXPECT_EQ(a.aborted_rounds, b.aborted_rounds);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

class SyncAsyncBitIdentity : public ::testing::TestWithParam<bool> {};

TEST_P(SyncAsyncBitIdentity, MasterWorkerMatchesAcrossExecutionModels) {
  const bool faulty = GetParam();
  constexpr std::size_t kWorkers = 12;
  const protocol_options protocol = faulty ? lossy_plan() : protocol_options{};
  master_worker_policy sync(kWorkers, protocol);
  async_master_worker async(kWorkers, zero_delay_options(protocol));
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < 40; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, sync.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    sync.observe(fb);
    const async_round_result r = async.run_round(view);
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_EQ(r.next_allocation[i], sync.current()[i])
          << "round " << t << " worker " << i;
    }
    ASSERT_EQ(async.step_size(), sync.master_step_size()) << "round " << t;
  }
  if (faulty) {
    EXPECT_GT(async.faults().retransmits, 0u);  // the plan actually bit
  }
  expect_same_fault_report(async.faults(), sync.faults());
}

TEST_P(SyncAsyncBitIdentity, FullyDistributedMatchesAcrossExecutionModels) {
  const bool faulty = GetParam();
  constexpr std::size_t kWorkers = 9;
  const protocol_options protocol = faulty ? lossy_plan() : protocol_options{};
  fully_distributed_policy sync(kWorkers, protocol);
  async_fully_distributed async(kWorkers, zero_delay_options(protocol));
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < 40; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, sync.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    sync.observe(fb);
    const async_round_result r = async.run_round(view);
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_EQ(r.next_allocation[i], sync.current()[i])
          << "round " << t << " worker " << i;
      ASSERT_EQ(async.local_step_sizes()[i], sync.local_step_sizes()[i])
          << "round " << t << " worker " << i;
    }
  }
  if (faulty) {
    EXPECT_GT(async.faults().retransmits, 0u);
  }
  expect_same_fault_report(async.faults(), sync.faults());
}

INSTANTIATE_TEST_SUITE_P(CleanAndLossy, SyncAsyncBitIdentity,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("lossy_drop20")
                                             : std::string("clean");
                         });

TEST(ProtocolTraffic, BytesScaleWithMessages) {
  auto env = exp::make_synthetic_environment(
      8, exp::synthetic_family::affine, 2);
  const equivalence_report report =
      run_equivalence(8, 5, [&] { return env->next_round(); });
  // Every message carries 1-3 scalars: bytes within [20, 36] each.
  const auto& mw = report.master_worker_traffic;
  EXPECT_GE(mw.bytes_sent, mw.messages_sent * 20);
  EXPECT_LE(mw.bytes_sent, mw.messages_sent * 36);
  const auto& fd = report.fully_distributed_traffic;
  EXPECT_GE(fd.bytes_sent, fd.messages_sent * 20);
  EXPECT_LE(fd.bytes_sent, fd.messages_sent * 36);
}

}  // namespace
}  // namespace dolbie::dist
