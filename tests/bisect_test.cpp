#include "common/bisect.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie {
namespace {

TEST(BisectMaxTrue, WholeIntervalTrueReturnsHi) {
  EXPECT_DOUBLE_EQ(bisect_max_true(0.0, 1.0, [](double) { return true; }),
                   1.0);
}

TEST(BisectMaxTrue, FindsBoundaryOfStepPredicate) {
  const double boundary = 0.37;
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
  EXPECT_LE(found, boundary);  // returned point satisfies the predicate
}

TEST(BisectMaxTrue, BoundaryAtLowerEndpoint) {
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.0; });
  EXPECT_NEAR(found, 0.0, 1e-10);
}

TEST(BisectMaxTrue, RespectsCustomTolerance) {
  bisect_options opts;
  opts.tolerance = 1e-3;
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.5; }, opts);
  EXPECT_NEAR(found, 0.5, 1e-3);
}

TEST(BisectMaxTrue, WideIntervals) {
  const double found =
      bisect_max_true(0.0, 1e9, [](double x) { return x * x <= 2.0; });
  EXPECT_NEAR(found, std::sqrt(2.0), 1e-6);
}

TEST(BisectMaxTrue, ThrowsOnInvertedInterval) {
  EXPECT_THROW(bisect_max_true(1.0, 0.0, [](double) { return true; }),
               invariant_error);
}

TEST(BisectMaxTrue, ThrowsWhenPredFailsAtLo) {
  EXPECT_THROW(bisect_max_true(0.0, 1.0, [](double) { return false; }),
               invariant_error);
}

TEST(BisectRootIncreasing, FindsLinearRoot) {
  const double root =
      bisect_root_increasing(-10.0, 10.0, [](double x) { return 2.0 * x - 3.0; });
  EXPECT_NEAR(root, 1.5, 1e-9);
}

TEST(BisectRootIncreasing, FindsCubeRoot) {
  const double root = bisect_root_increasing(
      0.0, 10.0, [](double x) { return x * x * x - 27.0; });
  EXPECT_NEAR(root, 3.0, 1e-9);
}

TEST(BisectRootIncreasing, RootAtEndpointLo) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(2.0, 5.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, RootAtEndpointHi) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(0.0, 2.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, ThrowsWhenNotBracketed) {
  EXPECT_THROW(
      bisect_root_increasing(0.0, 1.0, [](double x) { return x + 1.0; }),
      invariant_error);
}

TEST(BisectRootIncreasing, HandlesFlatRegions) {
  // g is 0 on [0.4, 0.6]; any point in the flat region is a valid root.
  const auto g = [](double x) {
    if (x < 0.4) return x - 0.4;
    if (x > 0.6) return x - 0.6;
    return 0.0;
  };
  const double root = bisect_root_increasing(0.0, 1.0, g);
  EXPECT_NEAR(g(root), 0.0, 1e-9);
}

// Regression: bisect_root_increasing used to return the bracket *midpoint*,
// where g may already be positive. Callers like the Eq. 4 search treat the
// returned point as feasible (g <= 0), so the root must be approached from
// below: g(returned) <= 0 always, up to g's own evaluation error at a point
// we actually bisected on.
TEST(BisectRootIncreasing, ReturnedPointIsConservative) {
  // Steep slope amplifies any overshoot: at slope 1e6 a midpoint return
  // sits ~tolerance/2 * 1e6 above zero, which this assert catches.
  const auto steep = [](double x) { return 1e6 * (x - 0.123456789); };
  EXPECT_LE(steep(bisect_root_increasing(0.0, 1.0, steep)), 0.0);

  const auto cubic = [](double x) { return x * x * x - 27.0; };
  EXPECT_LE(cubic(bisect_root_increasing(0.0, 10.0, cubic)), 0.0);

  // Sweep root positions; the conservative side must hold at every one.
  for (double root = 0.05; root < 1.0; root += 0.06) {
    const auto g = [root](double x) { return 1e4 * (x - root); };
    const double found = bisect_root_increasing(0.0, 1.0, g);
    EXPECT_LE(g(found), 0.0) << "root " << root;
    EXPECT_NEAR(found, root, 1e-9) << "root " << root;
  }
}

// Property sweep: the boundary is recovered for many positions.
class BisectBoundarySweep : public ::testing::TestWithParam<double> {};

TEST_P(BisectBoundarySweep, RecoversBoundary) {
  const double boundary = GetParam();
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, BisectBoundarySweep,
                         ::testing::Values(0.0, 1e-6, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0 - 1e-6));

}  // namespace
}  // namespace dolbie
