#include "common/bisect.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie {
namespace {

TEST(BisectMaxTrue, WholeIntervalTrueReturnsHi) {
  EXPECT_DOUBLE_EQ(bisect_max_true(0.0, 1.0, [](double) { return true; }),
                   1.0);
}

TEST(BisectMaxTrue, FindsBoundaryOfStepPredicate) {
  const double boundary = 0.37;
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
  EXPECT_LE(found, boundary);  // returned point satisfies the predicate
}

TEST(BisectMaxTrue, BoundaryAtLowerEndpoint) {
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.0; });
  EXPECT_NEAR(found, 0.0, 1e-10);
}

TEST(BisectMaxTrue, RespectsCustomTolerance) {
  bisect_options opts;
  opts.tolerance = 1e-3;
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.5; }, opts);
  EXPECT_NEAR(found, 0.5, 1e-3);
}

TEST(BisectMaxTrue, WideIntervals) {
  const double found =
      bisect_max_true(0.0, 1e9, [](double x) { return x * x <= 2.0; });
  EXPECT_NEAR(found, std::sqrt(2.0), 1e-6);
}

TEST(BisectMaxTrue, ThrowsOnInvertedInterval) {
  EXPECT_THROW(bisect_max_true(1.0, 0.0, [](double) { return true; }),
               invariant_error);
}

TEST(BisectMaxTrue, ThrowsWhenPredFailsAtLo) {
  EXPECT_THROW(bisect_max_true(0.0, 1.0, [](double) { return false; }),
               invariant_error);
}

TEST(BisectRootIncreasing, FindsLinearRoot) {
  const double root =
      bisect_root_increasing(-10.0, 10.0, [](double x) { return 2.0 * x - 3.0; });
  EXPECT_NEAR(root, 1.5, 1e-9);
}

TEST(BisectRootIncreasing, FindsCubeRoot) {
  const double root = bisect_root_increasing(
      0.0, 10.0, [](double x) { return x * x * x - 27.0; });
  EXPECT_NEAR(root, 3.0, 1e-9);
}

TEST(BisectRootIncreasing, RootAtEndpointLo) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(2.0, 5.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, RootAtEndpointHi) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(0.0, 2.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, ThrowsWhenNotBracketed) {
  EXPECT_THROW(
      bisect_root_increasing(0.0, 1.0, [](double x) { return x + 1.0; }),
      invariant_error);
}

TEST(BisectRootIncreasing, HandlesFlatRegions) {
  // g is 0 on [0.4, 0.6]; any point in the flat region is a valid root.
  const auto g = [](double x) {
    if (x < 0.4) return x - 0.4;
    if (x > 0.6) return x - 0.6;
    return 0.0;
  };
  const double root = bisect_root_increasing(0.0, 1.0, g);
  EXPECT_NEAR(g(root), 0.0, 1e-9);
}

// Property sweep: the boundary is recovered for many positions.
class BisectBoundarySweep : public ::testing::TestWithParam<double> {};

TEST_P(BisectBoundarySweep, RecoversBoundary) {
  const double boundary = GetParam();
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, BisectBoundarySweep,
                         ::testing::Values(0.0, 1e-6, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0 - 1e-6));

}  // namespace
}  // namespace dolbie
