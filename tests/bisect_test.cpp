#include "common/bisect.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie {
namespace {

TEST(BisectMaxTrue, WholeIntervalTrueReturnsHi) {
  EXPECT_DOUBLE_EQ(bisect_max_true(0.0, 1.0, [](double) { return true; }),
                   1.0);
}

TEST(BisectMaxTrue, FindsBoundaryOfStepPredicate) {
  const double boundary = 0.37;
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
  EXPECT_LE(found, boundary);  // returned point satisfies the predicate
}

TEST(BisectMaxTrue, BoundaryAtLowerEndpoint) {
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.0; });
  EXPECT_NEAR(found, 0.0, 1e-10);
}

TEST(BisectMaxTrue, RespectsCustomTolerance) {
  bisect_options opts;
  opts.tolerance = 1e-3;
  const double found =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.5; }, opts);
  EXPECT_NEAR(found, 0.5, 1e-3);
}

TEST(BisectMaxTrue, WideIntervals) {
  const double found =
      bisect_max_true(0.0, 1e9, [](double x) { return x * x <= 2.0; });
  EXPECT_NEAR(found, std::sqrt(2.0), 1e-6);
}

TEST(BisectMaxTrue, ThrowsOnInvertedInterval) {
  EXPECT_THROW(bisect_max_true(1.0, 0.0, [](double) { return true; }),
               invariant_error);
}

TEST(BisectMaxTrue, ThrowsWhenPredFailsAtLo) {
  EXPECT_THROW(bisect_max_true(0.0, 1.0, [](double) { return false; }),
               invariant_error);
}

TEST(BisectRootIncreasing, FindsLinearRoot) {
  const double root =
      bisect_root_increasing(-10.0, 10.0, [](double x) { return 2.0 * x - 3.0; });
  EXPECT_NEAR(root, 1.5, 1e-9);
}

TEST(BisectRootIncreasing, FindsCubeRoot) {
  const double root = bisect_root_increasing(
      0.0, 10.0, [](double x) { return x * x * x - 27.0; });
  EXPECT_NEAR(root, 3.0, 1e-9);
}

TEST(BisectRootIncreasing, RootAtEndpointLo) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(2.0, 5.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, RootAtEndpointHi) {
  EXPECT_DOUBLE_EQ(
      bisect_root_increasing(0.0, 2.0, [](double x) { return x - 2.0; }), 2.0);
}

TEST(BisectRootIncreasing, ThrowsWhenNotBracketed) {
  EXPECT_THROW(
      bisect_root_increasing(0.0, 1.0, [](double x) { return x + 1.0; }),
      invariant_error);
}

TEST(BisectRootIncreasing, HandlesFlatRegions) {
  // g is 0 on [0.4, 0.6]; any point in the flat region is a valid root.
  const auto g = [](double x) {
    if (x < 0.4) return x - 0.4;
    if (x > 0.6) return x - 0.6;
    return 0.0;
  };
  const double root = bisect_root_increasing(0.0, 1.0, g);
  EXPECT_NEAR(g(root), 0.0, 1e-9);
}

// Regression: bisect_root_increasing used to return the bracket *midpoint*,
// where g may already be positive. Callers like the Eq. 4 search treat the
// returned point as feasible (g <= 0), so the root must be approached from
// below: g(returned) <= 0 always, up to g's own evaluation error at a point
// we actually bisected on.
TEST(BisectRootIncreasing, ReturnedPointIsConservative) {
  // Steep slope amplifies any overshoot: at slope 1e6 a midpoint return
  // sits ~tolerance/2 * 1e6 above zero, which this assert catches.
  const auto steep = [](double x) { return 1e6 * (x - 0.123456789); };
  EXPECT_LE(steep(bisect_root_increasing(0.0, 1.0, steep)), 0.0);

  const auto cubic = [](double x) { return x * x * x - 27.0; };
  EXPECT_LE(cubic(bisect_root_increasing(0.0, 10.0, cubic)), 0.0);

  // Sweep root positions; the conservative side must hold at every one.
  for (double root = 0.05; root < 1.0; root += 0.06) {
    const auto g = [root](double x) { return 1e4 * (x - root); };
    const double found = bisect_root_increasing(0.0, 1.0, g);
    EXPECT_LE(g(found), 0.0) << "root " << root;
    EXPECT_NEAR(found, root, 1e-9) << "root " << root;
  }
}

// Regression: with only an absolute tolerance, a bracket of magnitude 1e12
// can never close — the stop width 1e-12 sits far below ulp(1e12) ≈ 2e-4,
// the midpoint eventually rounds onto an endpoint, and the loop spins
// through all 200 iterations without converging further. The relative term
// restores convergence at every magnitude.
TEST(BisectRelativeTolerance, ConvergesAcrossBracketMagnitudes) {
  bisect_options opts;
  opts.tolerance = 1e-12;
  opts.relative_tolerance = 1e-12;
  for (double scale : {1e-6, 1e-3, 1.0, 1e3, 1e6, 1e9, 1e12}) {
    const double root = 0.3 * scale;
    const double found = bisect_root_increasing(
        0.0, scale, [&](double x) { return x - root; }, opts);
    // Accuracy proportional to the bracket: the relative stop width is
    // rel_tol * scale, plus a couple of ulps of slack for the arithmetic.
    EXPECT_NEAR(found, root, 1e-11 * scale + 1e-12) << "scale " << scale;
    EXPECT_LE(found, root) << "scale " << scale;
  }
}

TEST(BisectRelativeTolerance, UlpStallOnHugeBracketIsFixed) {
  // Pure absolute tolerance on [0, 1e12]: the loop stalls once the width
  // reaches the bracket's ulp and the answer is stuck ~2e-4 off. With the
  // relative term the same search lands within 1e-11 * 1e12 = 10 ulp-ish.
  const double root = 1e11;
  const auto g = [&](double x) { return x - root; };
  bisect_options rel;
  rel.tolerance = 1e-12;
  rel.relative_tolerance = 1e-12;
  const double with_rel = bisect_root_increasing(0.0, 1e12, g, rel);
  EXPECT_NEAR(with_rel, root, 1e-11 * 1e12);

  bisect_options abs_only;
  abs_only.tolerance = 1e-12;  // below ulp(1e12): cannot be met exactly
  const double without = bisect_root_increasing(0.0, 1e12, g, abs_only);
  // Still lands as close as the bracket's representable grid allows (the
  // width stops shrinking at the ulp, it does not diverge).
  EXPECT_NEAR(without, root, 1e-2);
}

TEST(BisectRelativeTolerance, DefaultZeroKeepsLegacyBehavior) {
  // relative_tolerance defaults to 0.0 so existing callers see the exact
  // same probe sequence as before the option existed.
  const double a =
      bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.37; });
  bisect_options explicit_zero;
  explicit_zero.relative_tolerance = 0.0;
  const double b = bisect_max_true(
      0.0, 1.0, [](double x) { return x <= 0.37; }, explicit_zero);
  EXPECT_EQ(a, b);
}

// The lock-step lane driver must reproduce the scalar probe sequence
// bit-for-bit: same midpoints, same interval updates, so the converged
// lower endpoint is exactly equal lane by lane.
TEST(BisectLanes, BitIdenticalToScalarPerLane) {
  constexpr std::size_t kLanes = 23;  // odd count exercises SIMD tails
  std::vector<double> boundary(kLanes);
  for (std::size_t k = 0; k < kLanes; ++k) {
    boundary[k] = 0.01 + 0.98 * static_cast<double>(k) / (kLanes - 1);
  }
  std::vector<double> good(kLanes, 0.0);
  std::vector<double> bad(kLanes, 1.0);
  bisect_lane_scratch scratch;
  bisect_max_true_lanes(kLanes, good.data(), bad.data(), scratch,
                        [&](const double* mid, unsigned char* out) {
                          for (std::size_t k = 0; k < kLanes; ++k) {
                            out[k] = mid[k] <= boundary[k] ? 1 : 0;
                          }
                        });
  for (std::size_t k = 0; k < kLanes; ++k) {
    const double scalar = bisect_max_true(
        0.0, 1.0, [&](double x) { return x <= boundary[k]; });
    EXPECT_EQ(good[k], scalar) << "lane " << k;
  }
}

TEST(BisectLanes, SingleLaneAndEmptyAreSafe) {
  bisect_lane_scratch scratch;
  bisect_max_true_lanes(0, nullptr, nullptr, scratch,
                        [](const double*, unsigned char*) { FAIL(); });

  double good = 0.0;
  double bad = 1.0;
  bisect_max_true_lanes(1, &good, &bad, scratch,
                        [](const double* mid, unsigned char* out) {
                          out[0] = mid[0] <= 0.37 ? 1 : 0;
                        });
  EXPECT_EQ(good,
            bisect_max_true(0.0, 1.0, [](double x) { return x <= 0.37; }));
}

TEST(BisectLanes, ConvergedLanesStopMovingWhileOthersContinue) {
  // Lane 0 starts already converged (width below tolerance); lane 1 needs
  // the full search. The driver must leave lane 0's interval untouched.
  std::vector<double> good{0.5, 0.0};
  std::vector<double> bad{0.5 + 1e-15, 1.0};
  bisect_lane_scratch scratch;
  bisect_max_true_lanes(2, good.data(), bad.data(), scratch,
                        [](const double* mid, unsigned char* out) {
                          out[0] = 1;
                          out[1] = mid[1] <= 0.8 ? 1 : 0;
                        });
  EXPECT_EQ(good[0], 0.5);
  EXPECT_EQ(bad[0], 0.5 + 1e-15);
  EXPECT_NEAR(good[1], 0.8, 1e-10);
}

TEST(BisectLanes, RespectsRelativeTolerance) {
  // Same ulp-stall setup as the scalar test, but driven through the lane
  // API with a wide bracket rescaled into lane storage.
  bisect_options opts;
  opts.tolerance = 1e-12;
  opts.relative_tolerance = 1e-12;
  double good = 0.0;
  double bad = 1e12;
  bisect_lane_scratch scratch;
  bisect_max_true_lanes(1, &good, &bad, scratch,
                        [](const double* mid, unsigned char* out) {
                          out[0] = mid[0] <= 1e11 ? 1 : 0;
                        },
                        opts);
  EXPECT_NEAR(good, 1e11, 1e-11 * 1e12);
}

// Property sweep: the boundary is recovered for many positions.
class BisectBoundarySweep : public ::testing::TestWithParam<double> {};

TEST_P(BisectBoundarySweep, RecoversBoundary) {
  const double boundary = GetParam();
  const double found =
      bisect_max_true(0.0, 1.0, [&](double x) { return x <= boundary; });
  EXPECT_NEAR(found, boundary, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, BisectBoundarySweep,
                         ::testing::Values(0.0, 1e-6, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0 - 1e-6));

}  // namespace
}  // namespace dolbie
