#include "common/series.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie {
namespace {

TEST(Series, StartsEmpty) {
  series s("trace");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.name(), "trace");
}

TEST(Series, PushAndIndex) {
  series s;
  s.push(1.0);
  s.push(2.5);
  s.push(-0.5);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.5);
  EXPECT_DOUBLE_EQ(s[2], -0.5);
  EXPECT_DOUBLE_EQ(s.front(), 1.0);
  EXPECT_DOUBLE_EQ(s.back(), -0.5);
}

TEST(Series, TotalAndCumulative) {
  series s;
  s.push(1.0);
  s.push(2.0);
  s.push(3.0);
  EXPECT_DOUBLE_EQ(s.total(), 6.0);
  const auto cum = s.cumulative();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 1.0);
  EXPECT_DOUBLE_EQ(cum[1], 3.0);
  EXPECT_DOUBLE_EQ(cum[2], 6.0);
}

TEST(Series, EmptyTotalIsZero) {
  series s;
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_TRUE(s.cumulative().empty());
}

TEST(Series, MinMax) {
  series s;
  s.push(4.0);
  s.push(-1.0);
  s.push(2.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Series, AccessorsThrowOnEmpty) {
  series s("empty");
  EXPECT_THROW(s.front(), invariant_error);
  EXPECT_THROW(s.back(), invariant_error);
  EXPECT_THROW(s.min(), invariant_error);
  EXPECT_THROW(s.max(), invariant_error);
}

TEST(Series, RenameWorks) {
  series s("before");
  s.set_name("after");
  EXPECT_EQ(s.name(), "after");
}

TEST(Series, ValuesSpanViewsAllData) {
  series s;
  for (int i = 0; i < 10; ++i) s.push(i);
  const auto view = s.values();
  ASSERT_EQ(view.size(), 10u);
  EXPECT_DOUBLE_EQ(view[7], 7.0);
}

}  // namespace
}  // namespace dolbie
