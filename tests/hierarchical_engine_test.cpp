// Equivalence and degradation tests of the hierarchical shard engine.
//
// The load-bearing guarantee is bit-identity at K = 1: configured as a
// single shard, the hierarchy must reproduce the flat engines' allocations
// exactly — clean and faulty — because the shard's mass is exactly 1.0,
// slot ids equal global ids, the fault seed is the base seed, and the tree
// degenerates to a wireless single node. One deliberate exception: the
// flat FD *clean* path sums the straggler's remainder as 1 - sum(claimed)
// while the unified machine absorbs the delta-sum (algebraically equal,
// not FP-equal), so the clean-FD comparison pins the machine path on both
// sides via a sentinel never-firing crash window and checks the clean path
// to near-equality only.
//
// Multi-shard runs are checked for the structural invariants the design
// argues (DESIGN.md §10): simplex every round, per-shard mass
// conservation, step sizes in (0, 1], aggregator outages holding exactly
// the shards below the dead node, and full-transcript determinism.
#include "shard/hierarchical_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/simplex.h"
#include "cost/affine.h"
#include "cost/cost_function.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/chaos.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace dolbie {
namespace {

// A worker crash window that never fires: it flips a flat engine onto the
// fault-tolerant machine path (reliable link, unified round machine)
// without perturbing a single message.
const std::vector<net::crash_window> kSentinelCrash = {
    {0, 1000000, net::crash_window::kNever}};

shard::hierarchical_options hier_options(dist::protocol_options protocol,
                                         shard::shard_protocol mode,
                                         std::size_t shard_size = 0) {
  shard::hierarchical_options options;
  options.protocol = std::move(protocol);
  options.plan.shard_size = shard_size;
  options.mode = mode;
  return options;
}

dist::protocol_options faulty_protocol() {
  dist::protocol_options options;
  options.faults.seed = 1002;
  options.faults.drop_rate = 0.2;
  options.faults.crashes = {{1, 90, net::crash_window::kNever}};
  options.retry_budget = 3;
  return options;
}

// Drive two policies in lockstep against identically-seeded environments
// and require bit-identical allocations after every round.
template <class PolicyA, class PolicyB>
void expect_lockstep_identical(PolicyA& a, PolicyB& b, std::size_t n,
                               std::size_t rounds, std::uint64_t env_seed,
                               exp::synthetic_family family) {
  auto env_a = exp::make_synthetic_environment(n, family, env_seed);
  auto env_b = exp::make_synthetic_environment(n, family, env_seed);
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs_a = env_a->next_round();
    const cost::cost_vector costs_b = env_b->next_round();
    const cost::cost_view view_a = cost::view_of(costs_a);
    const cost::cost_view view_b = cost::view_of(costs_b);
    const auto locals_a = cost::evaluate(view_a, a.current());
    const auto locals_b = cost::evaluate(view_b, b.current());
    ASSERT_EQ(locals_a, locals_b) << "diverged before round " << t;
    core::round_feedback fa;
    fa.costs = &view_a;
    fa.local_costs = locals_a;
    core::round_feedback fb;
    fb.costs = &view_b;
    fb.local_costs = locals_b;
    a.observe(fa);
    b.observe(fb);
    ASSERT_EQ(a.current(), b.current()) << "round " << t;
  }
}

TEST(HierarchicalEngine, SingleShardMwCleanIsBitIdenticalToFlat) {
  constexpr std::size_t kN = 8;
  shard::hierarchical_options hopts = hier_options(
      {}, shard::shard_protocol::master_worker, kN);
  shard::hierarchical_engine hier(kN, std::move(hopts));
  dist::master_worker_policy flat(kN, {});
  ASSERT_EQ(hier.plan().shards(), 1u);
  expect_lockstep_identical(hier, flat, kN, 120, 42,
                            exp::synthetic_family::mixed);
  EXPECT_EQ(hier.step_size(), flat.master_step_size());
  EXPECT_EQ(hier.report().degraded_rounds, 0u);
}

TEST(HierarchicalEngine, SingleShardMwFaultyIsBitIdenticalToFlat) {
  constexpr std::size_t kN = 8;
  const dist::protocol_options protocol = faulty_protocol();
  shard::hierarchical_engine hier(
      kN, hier_options(protocol, shard::shard_protocol::master_worker, kN));
  dist::master_worker_policy flat(kN, protocol);
  expect_lockstep_identical(hier, flat, kN, 150, 42,
                            exp::synthetic_family::mixed);
  EXPECT_EQ(hier.step_size(), flat.master_step_size());
  // The same degradation transcript, not just the same iterates.
  EXPECT_EQ(hier.report().degraded_rounds, flat.faults().degraded_rounds);
  EXPECT_EQ(hier.report().zero_step_holds, flat.faults().zero_step_holds);
  EXPECT_EQ(hier.report().removed_workers, flat.faults().removed_workers);
  EXPECT_EQ(hier.report().retransmits, flat.faults().retransmits);
  EXPECT_EQ(flat.faults().removed_workers, 1u);  // the crash actually hit
}

TEST(HierarchicalEngine, SingleShardFdFaultyIsBitIdenticalToFlat) {
  constexpr std::size_t kN = 8;
  const dist::protocol_options protocol = faulty_protocol();
  shard::hierarchical_engine hier(
      kN,
      hier_options(protocol, shard::shard_protocol::fully_distributed, kN));
  dist::fully_distributed_policy flat(kN, protocol);
  expect_lockstep_identical(hier, flat, kN, 150, 42,
                            exp::synthetic_family::mixed);
  EXPECT_EQ(hier.report().degraded_rounds, flat.faults().degraded_rounds);
  EXPECT_EQ(hier.report().removed_workers, flat.faults().removed_workers);
}

TEST(HierarchicalEngine, SingleShardFdMachinePathIsBitIdenticalToFlat) {
  // The sentinel crash never fires but pins both engines to the unified
  // machine path — the apples-to-apples clean comparison for FD.
  constexpr std::size_t kN = 8;
  dist::protocol_options protocol;
  protocol.faults.crashes = kSentinelCrash;
  shard::hierarchical_engine hier(
      kN,
      hier_options(protocol, shard::shard_protocol::fully_distributed, kN));
  dist::fully_distributed_policy flat(kN, protocol);
  expect_lockstep_identical(hier, flat, kN, 120, 42,
                            exp::synthetic_family::mixed);
  EXPECT_EQ(hier.report().degraded_rounds, 0u);
  EXPECT_EQ(flat.faults().degraded_rounds, 0u);
}

TEST(HierarchicalEngine, SingleShardFdCleanTracksFlatClean) {
  // Clean flat FD computes the straggler remainder as 1 - sum(claimed);
  // the machine absorbs the delta-sum. Algebraically identical, FP-wise
  // only near-identical — so this one is a tolerance check by design.
  constexpr std::size_t kN = 8;
  shard::hierarchical_engine hier(
      kN, hier_options({}, shard::shard_protocol::fully_distributed, kN));
  dist::fully_distributed_policy flat(kN, {});
  auto env_a = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  auto env_b = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  for (std::size_t t = 0; t < 120; ++t) {
    const cost::cost_vector costs_a = env_a->next_round();
    const cost::cost_vector costs_b = env_b->next_round();
    const cost::cost_view view_a = cost::view_of(costs_a);
    const cost::cost_view view_b = cost::view_of(costs_b);
    const std::vector<double> locals_a = cost::evaluate(view_a, hier.current());
    const std::vector<double> locals_b = cost::evaluate(view_b, flat.current());
    core::round_feedback fa;
    fa.costs = &view_a;
    fa.local_costs = locals_a;
    core::round_feedback fb;
    fb.costs = &view_b;
    fb.local_costs = locals_b;
    hier.observe(fa);
    flat.observe(fb);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_NEAR(hier.current()[i], flat.current()[i], 1e-9)
          << "round " << t << " worker " << i;
    }
  }
}

// Regression: environments free each round's cost functions after the
// round, so the allocator can hand the *same addresses* back for the next
// round's different functions. The per-shard batch evaluator must be
// rebound every round — a pointer-identity cache silently evaluated stale
// coefficients whenever addresses were recycled (history-dependent
// results in the chaos grid). Engine A sees fresh allocations every
// round; engine B sees identical parameters placement-reconstructed in
// fixed slots (same addresses, new contents — the worst case). They must
// stay bit-identical.
TEST(HierarchicalEngine, RecycledCostAddressesDoNotStaleTheBatch) {
  constexpr std::size_t kN = 8;
  for (const shard::shard_protocol mode :
       {shard::shard_protocol::master_worker,
        shard::shard_protocol::fully_distributed}) {
    shard::hierarchical_engine fresh(kN, hier_options({}, mode, 4));
    shard::hierarchical_engine recycled(kN, hier_options({}, mode, 4));
    std::vector<std::optional<cost::affine_cost>> slots(kN);
    for (std::size_t t = 0; t < 60; ++t) {
      cost::cost_vector costs_a;
      cost::cost_view view_b(kN);
      for (std::size_t i = 0; i < kN; ++i) {
        const double slope =
            0.5 + 0.1 * static_cast<double>((t * 7 + i * 3) % 11);
        const double intercept = 0.1 * static_cast<double>((t * 5 + i) % 7);
        costs_a.push_back(
            std::make_unique<cost::affine_cost>(slope, intercept));
        slots[i].emplace(slope, intercept);  // same address, new function
        view_b[i] = &*slots[i];
      }
      const cost::cost_view view_a = cost::view_of(costs_a);
      const std::vector<double> locals_a =
          cost::evaluate(view_a, fresh.current());
      const std::vector<double> locals_b =
          cost::evaluate(view_b, recycled.current());
      ASSERT_EQ(locals_a, locals_b) << "round " << t;
      core::round_feedback fa;
      fa.costs = &view_a;
      fa.local_costs = locals_a;
      core::round_feedback fb;
      fb.costs = &view_b;
      fb.local_costs = locals_b;
      fresh.observe(fa);
      recycled.observe(fb);
      ASSERT_EQ(fresh.current(), recycled.current()) << "round " << t;
      ASSERT_EQ(fresh.step_size(), recycled.step_size()) << "round " << t;
    }
  }
}

// Per-shard mass conservation: the round machines renormalize each shard
// against its own mass (the `target` seam), so the slice sums never drift.
void check_shard_masses(const shard::hierarchical_engine& hier,
                        const std::vector<double>& masses) {
  const shard::shard_plan& plan = hier.plan();
  for (std::size_t k = 0; k < plan.shards(); ++k) {
    double sum = 0.0;
    for (const core::worker_id i : plan.members[k]) sum += hier.current()[i];
    EXPECT_NEAR(sum, masses[k], 1e-9) << "shard " << k;
  }
}

std::vector<double> initial_masses(const shard::hierarchical_engine& hier) {
  std::vector<double> masses(hier.plan().shards(), 0.0);
  for (std::size_t k = 0; k < hier.plan().shards(); ++k) {
    for (const core::worker_id i : hier.plan().members[k]) {
      masses[k] += hier.current()[i];
    }
  }
  return masses;
}

void drive_with_invariants(shard::hierarchical_engine& hier, std::size_t n,
                           std::size_t rounds, std::uint64_t env_seed) {
  const std::vector<double> masses = initial_masses(hier);
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::mixed, env_seed);
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    hier.observe(fb);
    ASSERT_TRUE(on_simplex(hier.current())) << "round " << t;
    ASSERT_GT(hier.step_size(), 0.0);
    ASSERT_LE(hier.step_size(), 1.0);
    check_shard_masses(hier, masses);
  }
}

TEST(HierarchicalEngine, MultiShardKeepsInvariantsCleanAndFaulty) {
  constexpr std::size_t kN = 12;
  for (const shard::shard_protocol mode :
       {shard::shard_protocol::master_worker,
        shard::shard_protocol::fully_distributed}) {
    {
      shard::hierarchical_engine hier(kN, hier_options({}, mode, 4));
      ASSERT_EQ(hier.plan().shards(), 3u);
      drive_with_invariants(hier, kN, 150, 42);
      EXPECT_EQ(hier.report().degraded_rounds, 0u);
    }
    {
      shard::hierarchical_engine hier(
          kN, hier_options(faulty_protocol(), mode, 4));
      drive_with_invariants(hier, kN, 150, 42);
      EXPECT_EQ(hier.report().removed_workers, 1u);
      EXPECT_GT(hier.report().retransmits, 0u);
    }
  }
}

TEST(HierarchicalEngine, ShuffledMembershipKeepsInvariants) {
  constexpr std::size_t kN = 20;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::master_worker, 5);
  options.plan.shuffle = true;
  options.plan.seed = 11;
  shard::hierarchical_engine hier(kN, std::move(options));
  ASSERT_EQ(hier.plan().shards(), 4u);
  drive_with_invariants(hier, kN, 100, 7);
}

TEST(HierarchicalEngine, LeafAggregatorOutageHoldsExactlyItsShard) {
  constexpr std::size_t kN = 12;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::master_worker, 4);
  // Aggregators: leaves 0,1,2 front shards 0,1,2; node 3 is the root.
  options.aggregator_crashes = {{1, 10, 20}};
  shard::hierarchical_engine hier(kN, std::move(options));
  ASSERT_EQ(hier.plan().aggregators(), 4u);
  const std::vector<double> masses = initial_masses(hier);

  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  core::allocation before_outage;
  double moved_elsewhere = 0.0;
  for (std::size_t t = 0; t < 40; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    if (t == 10) before_outage = hier.current();
    hier.observe(fb);
    ASSERT_TRUE(on_simplex(hier.current())) << "round " << t;
    check_shard_masses(hier, masses);
    if (t >= 10 && t < 20) {
      // Shard 1 (workers 4..7) is headless: its slice must hold exactly.
      for (const core::worker_id i : hier.plan().members[1]) {
        ASSERT_EQ(hier.current()[i], before_outage[i])
            << "round " << t << " worker " << i;
      }
      for (const core::worker_id i : hier.plan().members[0]) {
        moved_elsewhere +=
            std::abs(hier.current()[i] - before_outage[i]);
      }
    }
  }
  // The healthy shards kept iterating through the outage...
  EXPECT_GT(moved_elsewhere, 0.0);
  // ...and every outage round was accounted as degraded (4 holds each).
  EXPECT_GE(hier.report().degraded_rounds, 10u);
  EXPECT_GE(hier.report().zero_step_holds, 40u);
  EXPECT_EQ(hier.report().aborted_rounds, 0u);
}

TEST(HierarchicalEngine, RootOutageFreezesEveryoneWithoutSelfHeal) {
  constexpr std::size_t kN = 12;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::fully_distributed, 4);
  options.aggregator_crashes = {{3, 30, net::crash_window::kNever}};
  options.self_heal = false;
  shard::hierarchical_engine hier(kN, std::move(options));
  ASSERT_EQ(hier.plan().root, 3u);

  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  core::allocation frozen;
  double alpha_frozen = 0.0;
  for (std::size_t t = 0; t < 60; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    if (t == 30) {
      frozen = hier.current();
      alpha_frozen = hier.step_size();
    }
    hier.observe(fb);
    if (t >= 30) {
      ASSERT_EQ(hier.current(), frozen) << "round " << t;
      ASSERT_EQ(hier.step_size(), alpha_frozen) << "round " << t;
    }
  }
  // Rounds 30..59: no consensus exists, so every round aborts globally.
  EXPECT_EQ(hier.report().aborted_rounds, 30u);
  EXPECT_GE(hier.report().degraded_rounds, 30u);
  EXPECT_TRUE(hier.repairs().empty());
}

TEST(HierarchicalEngine, RootOutagePromotesAndResumes) {
  constexpr std::size_t kN = 12;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::fully_distributed, 4);
  options.aggregator_crashes = {{3, 30, net::crash_window::kNever}};
  shard::hierarchical_engine hier(kN, std::move(options));
  ASSERT_EQ(hier.plan().root, 3u);

  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  core::allocation at_crash;
  for (std::size_t t = 0; t < 60; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    if (t == 30) at_crash = hier.current();
    hier.observe(fb);
    ASSERT_TRUE(on_simplex(hier.current())) << "round " << t;
  }
  // Round 30 crashes mid-round (aborts); the heal fires at round 31 —
  // worker 0, the lowest live id in the whole tree, takes over the root —
  // and every later round completes.
  EXPECT_EQ(hier.report().aborted_rounds, 1u);
  ASSERT_EQ(hier.repairs().size(), 1u);
  EXPECT_EQ(hier.repairs()[0].round, 31u);
  EXPECT_EQ(hier.repairs()[0].node, 3u);
  EXPECT_EQ(hier.repairs()[0].act, shard::tree_repair::action::promoted);
  EXPECT_EQ(hier.repairs()[0].replacement, 0u);
  EXPECT_FALSE(hier.tree().retired(3));
  EXPECT_NE(hier.current(), at_crash);
}

TEST(HierarchicalEngine, AggregatorCrashReparentsSubtreeWithinFanin) {
  // N = 10 at shard_size 2, fan-in 4: leaves 0..4, node 5 fronts leaves
  // {0..3}, node 6 fronts leaf {4}, root 7 holds {5, 6}. Killing 6 lets
  // the heal excise it — the root absorbs leaf 4 directly (2 children,
  // inside the fan-in bound) instead of promoting a replacement host.
  constexpr std::size_t kN = 10;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::fully_distributed, 2);
  options.aggregator_crashes = {{6, 10, net::crash_window::kNever}};
  shard::hierarchical_engine hier(kN, std::move(options));
  ASSERT_EQ(hier.plan().root, 7u);
  ASSERT_EQ(hier.plan().children[6], (std::vector<std::size_t>{4}));

  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  core::allocation at_repair;
  for (std::size_t t = 0; t < 60; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    hier.observe(fb);
    if (t == 11) at_repair = hier.current();
    ASSERT_TRUE(on_simplex(hier.current())) << "round " << t;
  }
  ASSERT_EQ(hier.repairs().size(), 1u);
  EXPECT_EQ(hier.repairs()[0].round, 11u);
  EXPECT_EQ(hier.repairs()[0].node, 6u);
  EXPECT_EQ(hier.repairs()[0].act, shard::tree_repair::action::reparented);
  EXPECT_EQ(hier.repairs()[0].replacement, 7u);
  EXPECT_TRUE(hier.tree().retired(6));
  EXPECT_EQ(hier.tree().current_parent(4), 7u);
  // An interior death never aborts the whole round, and after the repair
  // the detached shard (workers 8, 9) keeps adapting instead of holding.
  EXPECT_EQ(hier.report().aborted_rounds, 0u);
  EXPECT_FALSE(hier.current()[8] == at_repair[8] &&
               hier.current()[9] == at_repair[9]);
}

TEST(HierarchicalEngine, OutageStreakThresholdTriggersRepair) {
  // The same topology, but the window recovers: with an outage threshold
  // the engine gives up on the flapping node once it has been dark for
  // `outage_threshold` consecutive rounds and repairs anyway.
  constexpr std::size_t kN = 10;
  shard::hierarchical_options options =
      hier_options({}, shard::shard_protocol::fully_distributed, 2);
  options.aggregator_crashes = {{6, 10, 50}};
  options.outage_threshold = 5;
  shard::hierarchical_engine hier(kN, std::move(options));

  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::mixed, 42);
  for (std::size_t t = 0; t < 30; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    hier.observe(fb);
  }
  ASSERT_EQ(hier.repairs().size(), 1u);
  EXPECT_EQ(hier.repairs()[0].node, 6u);
  // The mid-round crash at round 10 starts the streak; rounds 11..14 grow
  // it to 5, so the heal fires entering round 15.
  EXPECT_EQ(hier.repairs()[0].round, 15u);
  EXPECT_TRUE(hier.tree().retired(6));
}

TEST(HierarchicalEngine, FaultyMultiShardRunsAreDeterministic) {
  constexpr std::size_t kN = 12;
  const auto run_once = [] {
    shard::hierarchical_options options = hier_options(
        faulty_protocol(), shard::shard_protocol::master_worker, 4);
    options.aggregator_crashes = {{1, 40, 70}};
    shard::hierarchical_engine hier(kN, std::move(options));
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::mixed, 5);
    std::vector<double> iterates;
    for (std::size_t t = 0; t < 120; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const std::vector<double> locals = cost::evaluate(view, hier.current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      hier.observe(fb);
      for (const double x : hier.current()) iterates.push_back(x);
    }
    return std::make_pair(iterates, hier.report());
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.degraded_rounds, b.second.degraded_rounds);
  EXPECT_EQ(a.second.zero_step_holds, b.second.zero_step_holds);
  EXPECT_EQ(a.second.retransmits, b.second.retransmits);
  EXPECT_GT(a.second.retransmits, 0u);
}

TEST(HierarchicalEngine, ResetReplaysTheExactTranscript) {
  constexpr std::size_t kN = 12;
  shard::hierarchical_engine hier(kN, hier_options(
      faulty_protocol(), shard::shard_protocol::fully_distributed, 4));
  const auto run_pass = [&hier] {
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::mixed, 5);
    std::vector<double> iterates;
    for (std::size_t t = 0; t < 80; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const std::vector<double> locals = cost::evaluate(view, hier.current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      hier.observe(fb);
      for (const double x : hier.current()) iterates.push_back(x);
    }
    return iterates;
  };
  const auto first = run_pass();
  hier.reset();
  const auto second = run_pass();
  EXPECT_EQ(first, second);
}

// The same replay contract through the self-healing path: a permanent
// aggregator crash (tree repair at round 11) plus a permanent worker crash
// (churn retirement at round 90) must leave reset() able to rewind the
// repaired topology, the revive bookkeeping and the membership back to
// round zero — the second pass replays the first byte for byte, repairs
// included.
TEST(HierarchicalEngine, ResetReplaysTheRepairedTranscript) {
  constexpr std::size_t kN = 10;
  shard::hierarchical_options options =
      hier_options(faulty_protocol(), shard::shard_protocol::fully_distributed,
                   2);
  options.aggregator_crashes = {{6, 10, net::crash_window::kNever}};
  shard::hierarchical_engine hier(kN, std::move(options));
  const auto run_pass = [&hier] {
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::mixed, 5);
    std::vector<double> iterates;
    for (std::size_t t = 0; t < 120; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const std::vector<double> locals = cost::evaluate(view, hier.current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      hier.observe(fb);
      for (const double x : hier.current()) iterates.push_back(x);
    }
    return std::make_pair(iterates, hier.report());
  };
  const auto first = run_pass();
  ASSERT_EQ(hier.repairs().size(), 1u);
  ASSERT_EQ(first.second.removed_workers, 1u);  // churn actually fired
  const auto first_repairs = hier.repairs();
  hier.reset();
  EXPECT_TRUE(hier.repairs().empty());
  EXPECT_FALSE(hier.tree().retired(6));
  const auto second = run_pass();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second.removed_workers, second.second.removed_workers);
  EXPECT_EQ(first.second.degraded_rounds, second.second.degraded_rounds);
  EXPECT_EQ(first.second.aborted_rounds, second.second.aborted_rounds);
  ASSERT_EQ(hier.repairs().size(), first_repairs.size());
  EXPECT_EQ(hier.repairs()[0].round, first_repairs[0].round);
  EXPECT_EQ(hier.repairs()[0].node, first_repairs[0].node);
  EXPECT_EQ(hier.repairs()[0].replacement, first_repairs[0].replacement);
}

// The tentpole contract of intra-round parallelism (DESIGN.md §11): a
// multi-shard faulty run — message drops, a worker churn retirement, and
// an aggregator crash window — is bit-identical at every pool width.
// `threads = 1` forces the serial path (no pool is even constructed);
// wider pools fan Stage A/B over the shards and the tree levels over
// their parents. Iterates, step sizes, the full fault report, traffic,
// and the merged trace bytes must all match the serial run exactly.
struct parallel_run {
  std::vector<double> iterates;
  std::vector<double> alphas;
  dist::fault_report report;
  std::uint64_t messages = 0;
  std::uint64_t max_node_messages = 0;
  std::string trace;
};

parallel_run run_parallel_case(shard::shard_protocol mode,
                               std::size_t threads) {
  constexpr std::size_t kN = 24;
  obs::tracer tracer({.clock = obs::clock_kind::logical});
  shard::hierarchical_options options =
      hier_options(faulty_protocol(), mode, 6);
  options.protocol.tracer = &tracer;
  options.aggregator_crashes = {{1, 30, 60}};
  options.threads = threads;
  shard::hierarchical_engine hier(kN, std::move(options));
  auto env =
      exp::make_synthetic_environment(kN, exp::synthetic_family::mixed, 7);
  parallel_run out;
  for (std::size_t t = 0; t < 120; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const std::vector<double> locals = cost::evaluate(view, hier.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    hier.observe(fb);
    for (const double x : hier.current()) out.iterates.push_back(x);
    out.alphas.push_back(hier.step_size());
  }
  out.report = hier.report();
  out.messages = hier.total_traffic().messages_sent;
  out.max_node_messages = hier.max_node_messages_sent();
  std::ostringstream os;
  obs::export_jsonl(os, tracer.merged());
  out.trace = os.str();
  return out;
}

void expect_parallel_matches_serial(shard::shard_protocol mode) {
  const parallel_run serial = run_parallel_case(mode, 1);
  // The schedule must actually degrade the run, or the test proves less
  // than it claims.
  EXPECT_GT(serial.report.degraded_rounds, 0u);
  EXPECT_GT(serial.report.zero_step_holds, 0u);
  EXPECT_EQ(serial.report.removed_workers, 1u);
  EXPECT_GT(serial.report.retransmits, 0u);
  EXPECT_NE(serial.trace.find("tree.reduce.level1"), std::string::npos);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const parallel_run wide = run_parallel_case(mode, threads);
    ASSERT_EQ(wide.iterates, serial.iterates) << "threads=" << threads;
    EXPECT_EQ(wide.alphas, serial.alphas) << "threads=" << threads;
    EXPECT_EQ(wide.report.degraded_rounds, serial.report.degraded_rounds);
    EXPECT_EQ(wide.report.straggler_failovers,
              serial.report.straggler_failovers);
    EXPECT_EQ(wide.report.removed_workers, serial.report.removed_workers);
    EXPECT_EQ(wide.report.zero_step_holds, serial.report.zero_step_holds);
    EXPECT_EQ(wide.report.aborted_rounds, serial.report.aborted_rounds);
    EXPECT_EQ(wide.report.retransmits, serial.report.retransmits);
    EXPECT_EQ(wide.report.timeouts, serial.report.timeouts);
    EXPECT_EQ(wide.report.duplicates_discarded,
              serial.report.duplicates_discarded);
    EXPECT_EQ(wide.messages, serial.messages) << "threads=" << threads;
    EXPECT_EQ(wide.max_node_messages, serial.max_node_messages);
    EXPECT_EQ(wide.trace, serial.trace) << "threads=" << threads;
  }
}

TEST(HierarchicalEngine, ParallelMwIsBitIdenticalToSerial) {
  expect_parallel_matches_serial(shard::shard_protocol::master_worker);
}

TEST(HierarchicalEngine, ParallelFdIsBitIdenticalToSerial) {
  expect_parallel_matches_serial(shard::shard_protocol::fully_distributed);
}

// The chaos grid gains the hierarchical rows on request (appended last,
// historical row positions untouched). This test is re-registered under
// DOLBIE_THREADS 1/2/8: the grid runs through parallel_map, so it also
// witnesses thread-count determinism of the shard layer.
TEST(HierarchicalEngine, ChaosGridIncludesHierarchicalRowsOnRequest) {
  exp::chaos_options options;
  options.workers = 12;
  options.rounds = 40;
  options.drop_rates = {0.2};
  options.retry_budget = 3;
  options.include_hierarchical = true;
  options.shard_size = 4;
  options.aggregator_crashes = {{1, 10, 20}};
  const std::vector<exp::chaos_row> rows = exp::run_chaos_grid(options);
  ASSERT_EQ(rows.size(), 8u);  // {MW, FD, MW-hier, FD-hier} x {0.0, 0.2}
  bool saw_hier_mw = false;
  bool saw_hier_fd = false;
  for (const exp::chaos_row& row : rows) {
    EXPECT_TRUE(row.simplex_ok) << row.engine << " " << row.drop_rate;
    EXPECT_TRUE(std::isfinite(row.cumulative_cost)) << row.engine;
    saw_hier_mw = saw_hier_mw || row.engine == "MW-hier";
    saw_hier_fd = saw_hier_fd || row.engine == "FD-hier";
    if (row.engine == "MW-hier" || row.engine == "FD-hier") {
      // The aggregator outage degrades even the zero-drop baseline.
      EXPECT_GT(row.report.degraded_rounds, 0u) << row.engine;
    }
  }
  EXPECT_TRUE(saw_hier_mw);
  EXPECT_TRUE(saw_hier_fd);
}

}  // namespace
}  // namespace dolbie
