#include "core/max_acceptable.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "cost/affine.h"
#include "cost/power.h"
#include "cost/time_varying.h"

namespace dolbie::core {
namespace {

TEST(MaxAcceptableWorkload, AffineAnalytic) {
  // f(x) = 2x + 0.5; at global cost 1.5 the largest affordable x is 0.5.
  const cost::affine_cost f(2.0, 0.5);
  EXPECT_DOUBLE_EQ(max_acceptable_workload(f, 0.1, 1.5), 0.5);
}

TEST(MaxAcceptableWorkload, TruncatedAtTotalWorkload) {
  // Eq. (4): x' = min{x-tilde, 1}.
  const cost::affine_cost f(0.1, 0.0);
  EXPECT_DOUBLE_EQ(max_acceptable_workload(f, 0.2, 5.0), 1.0);
}

TEST(MaxAcceptableWorkload, NeverBelowCurrentWorkload) {
  // f(x_i) <= l_t guarantees x' >= x_i; the clamp also covers numeric dust.
  const cost::power_cost f(3.0, 2.0, 0.0);
  const double x_i = 0.4;
  const double l_t = f.value(x_i);  // exactly this worker's cost
  EXPECT_GE(max_acceptable_workload(f, x_i, l_t), x_i);
}

TEST(MaxAcceptableVector, StragglerPinnedAtOwnDecision) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(4.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const allocation x{0.5, 0.5};
  // Worker 1 is the straggler (cost 2.0 > 0.5).
  const auto xp = max_acceptable_vector(view, x, 2.0, 1);
  EXPECT_DOUBLE_EQ(xp[1], 0.5);           // pinned
  EXPECT_DOUBLE_EQ(xp[0], 1.0);           // could afford 2.0/1.0 = 2 -> cap 1
}

TEST(MaxAcceptableVector, NonStragglersAtMostOne) {
  cost::cost_vector costs;
  for (int i = 0; i < 4; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(0.5 + i, 0.1));
  }
  const cost::cost_view view = cost::view_of(costs);
  const allocation x{0.25, 0.25, 0.25, 0.25};
  const auto xp = max_acceptable_vector(view, x, 10.0, 3);
  for (double v : xp) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MaxAcceptableVector, Throws) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  EXPECT_THROW(max_acceptable_vector(view, {0.5, 0.5}, 1.0, 0),
               invariant_error);  // size mismatch
  EXPECT_THROW(max_acceptable_vector(view, {1.0}, 1.0, 5),
               invariant_error);  // straggler out of range
}

// A cost with no analytic inverse, forcing inverse_max through the default
// monotone-bisection fallback (the paper's Sec. IV-A suggestion).
class exponential_cost final : public cost::cost_function {
 public:
  explicit exponential_cost(double rate) : rate_(rate) {}
  double value(double x) const override { return std::exp(rate_ * x) - 1.0; }
  std::string describe() const override { return "exp"; }

 private:
  double rate_;
};

// Regression (bisection-backed Eq. 4): the search must approach the
// boundary from below, so the returned workload never costs more than the
// global cost l_t. A midpoint-returning bisection violates this — with a
// steep cost the overshoot is far larger than evaluation noise.
TEST(MaxAcceptableWorkload, BisectionBackedCostNeverExceedsGlobalCost) {
  for (double rate : {1.0, 5.0, 20.0}) {
    const exponential_cost f(rate);
    for (double l_t : {0.5, 1.0, 3.0, 10.0}) {
      const double xp = max_acceptable_workload(f, 0.0, l_t);
      ASSERT_LE(xp, 1.0);
      if (xp < 1.0) {
        EXPECT_LE(f.value(xp), l_t) << "rate " << rate << " l_t " << l_t;
        // And it is the *maximum* such workload up to the search tolerance.
        EXPECT_GT(f.value(std::min(1.0, xp + 1e-9)), l_t)
            << "rate " << rate << " l_t " << l_t;
      }
    }
  }
}

// Property: across random cost families and random feasible allocations,
// the x' vector satisfies Lemma 1 (ii): x' >= x for every worker, and
// f_i(x'_i) <= l_t whenever x'_i < 1.
TEST(MaxAcceptableVector, Lemma1PropertyOnRandomInstances) {
  rng g(314);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(g.uniform_int(2, 8));
    cost::cost_vector costs;
    for (std::size_t i = 0; i < n; ++i) {
      if (g.bernoulli(0.5)) {
        costs.push_back(std::make_unique<cost::affine_cost>(
            g.uniform(0.1, 5.0), g.uniform(0.0, 1.0)));
      } else {
        costs.push_back(std::make_unique<cost::power_cost>(
            g.uniform(0.1, 5.0), g.uniform(0.5, 2.5), g.uniform(0.0, 1.0)));
      }
    }
    const cost::cost_view view = cost::view_of(costs);
    // Random simplex point via normalized exponentials.
    allocation x(n);
    double total = 0.0;
    for (double& v : x) {
      v = -std::log(g.uniform(1e-9, 1.0));
      total += v;
    }
    for (double& v : x) v /= total;
    const auto locals = cost::evaluate(view, x);
    double l_t = locals[0];
    std::size_t s = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (locals[i] > l_t) {
        l_t = locals[i];
        s = i;
      }
    }
    const auto xp = max_acceptable_vector(view, x, l_t, s);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(xp[i], x[i] - 1e-12) << "worker " << i;
      EXPECT_LE(xp[i], 1.0);
      if (i != s && xp[i] < 1.0 - 1e-9) {
        EXPECT_LE(view[i]->value(xp[i]), l_t + 1e-7) << "worker " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dolbie::core
